//! Property-based tests on QLEC's cluster-head selection and Q-routing.

use proptest::prelude::*;
use qlec_core::deec_improved::{redundancy_withdrawals, select_heads, SelectionFeatures};
use qlec_core::kopt::coverage_radius;
use qlec_core::params::QlecParams;
use qlec_core::qrouting::QRouter;
use qlec_geom::UniformGrid;
use qlec_net::{NetworkBuilder, NodeId, Target};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Selection invariants across random deployments, rounds, and k:
    /// heads are alive, unique, at most N, exactly k when enough alive
    /// candidates exist, and pairwise separated when redundancy
    /// reduction + top-up are on.
    #[test]
    fn selection_invariants(
        seed in 0u64..1000,
        n in 10usize..120,
        k in 1usize..8,
        round in 0u32..20,
        drained in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        // Drain a few nodes completely.
        for i in 0..drained.min(n) {
            net.node_mut(NodeId(i as u32)).battery.consume(10.0);
        }
        let grid = UniformGrid::build(net.positions(), 8);
        let params = QlecParams::paper();
        let out = select_heads(
            &mut net,
            &grid,
            round,
            k,
            &params,
            SelectionFeatures::default(),
            &mut rng,
        );

        let alive = net.alive_count();
        // Exactly k heads whenever enough alive nodes exist; never more.
        prop_assert!(out.heads.len() <= k);
        if alive >= k {
            prop_assert_eq!(out.heads.len(), k);
        } else {
            prop_assert!(out.heads.len() <= alive);
        }
        // Unique and alive.
        let mut sorted = out.heads.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.heads.len());
        for &h in &out.heads {
            prop_assert!(net.node(h).is_alive(), "dead head {h}");
            prop_assert_eq!(net.node(h).last_head_round, Some(round));
        }
        // Diagnostics are consistent.
        prop_assert!(out.withdrawn <= out.elected);
    }

    /// With redundancy reduction and no top-up, surviving elected heads
    /// are pairwise separated by more than d_c.
    #[test]
    fn redundancy_reduction_separation(
        seed in 0u64..500,
        n in 30usize..150,
        k in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        let grid = UniformGrid::build(net.positions(), 8);
        let features = SelectionFeatures { top_up: false, ..Default::default() };
        let out = select_heads(
            &mut net,
            &grid,
            0,
            k,
            &QlecParams::paper(),
            features,
            &mut rng,
        );
        let dc = coverage_radius(200.0, k);
        // With simultaneous-HELLO semantics, two surviving heads within
        // d_c would each have had to out-rank the other — impossible.
        // (The top-up's trim can break this only via its own separation
        // rule, hence top_up: false here; the singleton fallback head is
        // trivially separated.)
        for (i, &a) in out.heads.iter().enumerate() {
            for &b in &out.heads[i + 1..] {
                prop_assert!(
                    net.distance(a, b) > dc,
                    "heads {a} and {b} within d_c = {dc}"
                );
            }
        }
    }

    /// The grid-backed Algorithm 3 partition returns exactly the same
    /// survivor and withdrawn sets (same order) as the seed-era
    /// brute-force O(elected²) scan, across random deployments, elected
    /// subsets, coverage radii, and energy profiles (equal residuals
    /// exercise the lower-id tie-break).
    #[test]
    fn grid_survives_matches_brute_force(
        seed in 0u64..1000,
        n in 2usize..200,
        k in 1usize..10,
        elect_mod in 1usize..5,
        drained in 0usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        for i in 0..drained.min(n) {
            net.node_mut(NodeId(i as u32)).battery.consume(0.1 * (i + 1) as f64);
        }
        let grid = UniformGrid::build(net.positions(), 8);
        let dc = coverage_radius(200.0, k);
        // Pseudo-random elected subset, in id order as Algorithm 2 yields.
        let elected: Vec<NodeId> = (0..n as u32)
            .filter(|i| (*i as usize + seed as usize).is_multiple_of(elect_mod))
            .map(NodeId)
            .collect();

        let (kept, withdrawn) = redundancy_withdrawals(&net, &grid, &elected, dc);

        // Reference: the brute-force all-pairs scan this PR replaced.
        let survives = |i: &NodeId| -> bool {
            !elected.iter().any(|j| {
                j != i && net.distance(*i, *j) <= dc && {
                    let (other, me) = (net.node(*j).residual(), net.node(*i).residual());
                    other > me || (other == me && j < i)
                }
            })
        };
        let kept_ref: Vec<NodeId> = elected.iter().copied().filter(survives).collect();
        let withdrawn_ref: Vec<NodeId> = elected
            .iter()
            .copied()
            .filter(|i| !kept_ref.contains(i))
            .collect();
        prop_assert_eq!(kept, kept_ref);
        prop_assert_eq!(withdrawn, withdrawn_ref);
    }

    /// Q-router outputs are always valid actions, and V values stay
    /// bounded by r_max/(1−γ) under arbitrary interleavings of routing
    /// decisions and ACK feedback.
    #[test]
    fn qrouter_bounded_and_valid(
        seed in 0u64..500,
        n in 5usize..40,
        k in 1usize..6,
        steps in 1usize..80,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        let params = QlecParams::paper();
        let mut router = QRouter::new(&net, params);
        let heads: Vec<NodeId> = (0..k.min(n) as u32).map(NodeId).collect();
        use rand::Rng;
        for step in 0..steps {
            let src = NodeId((step % n) as u32);
            let t = router.send_data(&net, src, &heads);
            match t {
                Target::Bs => {}
                Target::Head(h) => prop_assert!(heads.contains(&h), "invalid head {h}"),
            }
            router.on_hop_result(src, t, rng.gen::<bool>());
            if step % 5 == 0 {
                for &h in &heads {
                    router.head_update(&net, h, 0.5);
                }
            }
        }
        // Generous reward bound: |r| ≤ g + 2α₁ + α₂·y_max + l with
        // y normalized so y ≤ diag³·…; use a loose constant.
        let r_max = params.g + 2.0 * params.alpha1 + params.alpha2 * 16.0 + params.l;
        let bound = r_max / (1.0 - params.gamma);
        for i in 0..n as u32 {
            let v = router.v_of(NodeId(i));
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() <= bound, "V({i}) = {v} exceeds {bound}");
        }
    }

    /// The link estimator stays a probability under any feedback
    /// sequence and converges toward all-success / all-failure extremes.
    #[test]
    fn link_estimator_stays_probability(
        outcomes in prop::collection::vec(any::<bool>(), 1..300),
        weight in 0.01f64..1.0,
        prior in 0.0f64..1.0,
    ) {
        use qlec_core::qrouting::LinkEstimator;
        let mut est = LinkEstimator::new(weight, prior);
        let src = NodeId(0);
        let t = Target::Head(NodeId(1));
        for &ok in &outcomes {
            est.record(src, t, ok);
            let p = est.probability(src, t);
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }
}
