//! The Data Transmission Phase — Algorithm 4 (`Send-Data`) and the reward
//! functions of Eq. 16–20.
//!
//! Per §4.2, each non-head node `b_i` maintains a state space
//! `S(b_i) = {b_i, h_BS} ∪ H` and, on every packet, *computes* the Q-value
//! of forwarding to each current head (and the BS) from its model —
//! ACK-estimated link probabilities and the reward functions — instead of
//! sampling real transitions:
//!
//! ```text
//! Q*(b_i, a_j) = R_t + γ·(P^{a_j}_{b_i h_j}·V*(h_j) + P^{a_j}_{b_i b_i}·V*(b_i))
//! R_t          = P·R^{a_j}_{b_i h_j} + (1−P)·R^{a_j}_{b_i b_i}                (Eq. 16)
//! R^{a_j}_{b_i h_j} = −g + α₁[x(b_i)+x(h_j)] − α₂·y(b_i,h_j)                  (Eq. 17)
//! R^{a_BS}_{b_i h_BS} = … − l                                                  (Eq. 19)
//! R^{a_j}_{b_i b_i} = −g + β₁·x(b_i) − β₂·y(b_i,h_j)                          (Eq. 20)
//! ```
//!
//! then updates `V*(b_i) = max_j Q*(b_i, a_j)` and forwards to the argmax
//! head. Cluster heads run the same update for their own BS hop at the
//! round end (Algorithm 1 line 15) — without the `l` penalty, since
//! relaying to the BS is a head's job, not the behaviour Eq. 19 punishes.
//!
//! Scaling conventions (see [`crate::params::QlecParams`]): `x(·)` is the
//! residual *fraction* and `y(·,·)` is the Eq. 18 transmission energy
//! normalized by the cost at a reference distance, so the Table 2 weights
//! are meaningful on any deployment.

use crate::params::{QRowsMode, QlecParams};
use qlec_mdp::{ConvergenceTracker, QTable, SparseQRow, UpdateCounter};
use qlec_net::{Network, NodeId, Target};
use std::collections::HashMap;

/// Key for the link-probability table: `(source, destination)` with
/// `u32::MAX` standing in for the base station.
type LinkKey = (u32, u32);

const BS_KEY: u32 = u32::MAX;

fn key_of(src: NodeId, target: Target) -> LinkKey {
    match target {
        Target::Bs => (src.0, BS_KEY),
        Target::Head(h) => (src.0, h.0),
    }
}

/// ACK-ratio link-probability estimator (§4.2, following \[2\]): an EWMA
/// of transmission outcomes per directed link, with an optimistic prior.
#[derive(Debug, Clone)]
pub struct LinkEstimator {
    weight: f64,
    prior: f64,
    table: HashMap<LinkKey, f64>,
}

impl LinkEstimator {
    /// Create with the given EWMA weight and prior.
    pub fn new(weight: f64, prior: f64) -> Self {
        assert!((0.0..=1.0).contains(&weight) && weight > 0.0);
        assert!((0.0..=1.0).contains(&prior));
        LinkEstimator {
            weight,
            prior,
            table: HashMap::new(),
        }
    }

    /// Current estimate `P̂` for a link.
    pub fn probability(&self, src: NodeId, target: Target) -> f64 {
        *self.table.get(&key_of(src, target)).unwrap_or(&self.prior)
    }

    /// Fold in one ACK (or its absence).
    pub fn record(&mut self, src: NodeId, target: Target, success: bool) {
        let entry = self.table.entry(key_of(src, target)).or_insert(self.prior);
        let obs = if success { 1.0 } else { 0.0 };
        *entry += self.weight * (obs - *entry);
    }

    /// The estimate that [`LinkEstimator::record`] would leave behind,
    /// given the current estimate — the pure EWMA step, exposed so
    /// plan-time code can maintain a private overlay of pending updates
    /// without mutating the shared table.
    pub fn updated(&self, current: f64, success: bool) -> f64 {
        let obs = if success { 1.0 } else { 0.0 };
        current + self.weight * (obs - current)
    }

    /// Number of links with recorded evidence.
    pub fn links_tracked(&self) -> usize {
        self.table.len()
    }

    /// Drop every link with a dead endpoint. Dead nodes never transmit
    /// again and never come back, so their entries are pure leak: over a
    /// lifespan run the table would otherwise keep one entry per directed
    /// link ever exercised, long after both ends stopped existing. BS
    /// links survive as long as their source does (the BS is
    /// mains-powered).
    pub fn prune_dead(&mut self, net: &Network) {
        self.table.retain(|&(src, dst), _| {
            net.node(NodeId(src)).is_alive() && (dst == BS_KEY || net.node(NodeId(dst)).is_alive())
        });
    }
}

/// Sweep-invariant constants of one `Send-Data` action, hoisted by
/// [`QRouter::send_data_core_cached`]: the (NACK-halved) link belief, the
/// Eq. 16 expected reward, and the target's `V*` — everything in the
/// Q-value except the failure self-loop term that the fixed point
/// iterates on.
#[derive(Debug, Clone, Copy)]
pub struct ActionConst {
    target: Target,
    p_ok: f64,
    r_t: f64,
    v_target: f64,
}

/// The per-network Q-routing state: one V value per node plus the BS.
#[derive(Debug, Clone)]
pub struct QRouter {
    params: QlecParams,
    /// `V*(b_i)` for every node; the BS is pinned at 0 (terminal — its
    /// value never updates, matching the terminal-state convention of
    /// `qlec-mdp`).
    v: Vec<f64>,
    links: LinkEstimator,
    /// Reference transmission cost used to normalize Eq. 18 (cost at the
    /// deployment side length).
    y_ref: f64,
    /// Counts elementary Q computations — the paper's `X` (Lemma 3).
    pub updates: UpdateCounter,
    /// Tracks V-value deltas for convergence measurement.
    pub convergence: ConvergenceTracker,
    /// Signed V change of the most recent update (observability).
    last_delta: f64,
}

impl QRouter {
    /// Initialize for a network: "all the V values and Q values are
    /// initialized to 0" (§4.2).
    pub fn new(net: &Network, params: QlecParams) -> Self {
        params.validate().expect("invalid QlecParams");
        let m = net.side_length().max(1e-9);
        // Eq. 18 cost at the reference distance; per-bit (bit count
        // cancels in the normalized ratio, so use 1 bit). Eq. 18 is the
        // *amplifier* energy only (`L·ε_fs·d²` / `L·ε_mp·d⁴` — no
        // electronics term).
        let y_ref = net.radio.amp_energy(1, m);
        QRouter {
            params,
            v: vec![0.0; net.len()],
            links: LinkEstimator::new(params.link_ewma_weight, params.link_prior),
            y_ref,
            updates: UpdateCounter::new(),
            convergence: ConvergenceTracker::new(1e-4),
            last_delta: 0.0,
        }
    }

    /// Signed `V` change of the most recent [`QRouter::send_data`] or
    /// [`QRouter::head_update`] call (0 before any update).
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Current `V*` of a node.
    pub fn v_of(&self, id: NodeId) -> f64 {
        self.v[id.index()]
    }

    /// Link estimator (read access for diagnostics).
    pub fn links(&self) -> &LinkEstimator {
        &self.links
    }

    /// Normalized residual fraction `x(b_i)`.
    fn x(&self, net: &Network, id: NodeId) -> f64 {
        let b = &net.node(id).battery;
        if b.initial() > 0.0 {
            b.residual() / b.initial()
        } else {
            0.0
        }
    }

    /// Normalized Eq. 18 transmission cost `y(b_i, target)` (amplifier
    /// energy, Eq. 18 verbatim).
    fn y(&self, net: &Network, src: NodeId, target: Target) -> f64 {
        let d = match target {
            Target::Bs => net.dist_to_bs(src),
            Target::Head(h) => net.distance(src, h),
        };
        net.radio.amp_energy(1, d) / self.y_ref
    }

    /// Eq. 17 / Eq. 19: reward for a *successful* hop from `src` to
    /// `target`. `penalize_bs` applies the `l` penalty of Eq. 19 (true
    /// for members, false for heads doing their aggregate duty).
    fn reward_success(&self, net: &Network, src: NodeId, target: Target, penalize_bs: bool) -> f64 {
        let p = &self.params;
        let x_target = match target {
            Target::Bs => p.x_bs,
            Target::Head(h) => self.x(net, h),
        };
        let mut r =
            -p.g + p.alpha1 * (self.x(net, src) + x_target) - p.alpha2 * self.y(net, src, target);
        if penalize_bs && target == Target::Bs {
            r -= p.l;
        }
        r
    }

    /// Eq. 20: reward for a failed hop (stay in state `b_i`).
    fn reward_failure(&self, net: &Network, src: NodeId, target: Target) -> f64 {
        let p = &self.params;
        -p.g + p.beta1 * self.x(net, src) - p.beta2 * self.y(net, src, target)
    }

    /// One Algorithm 4 Q-value: Eq. 16 expected reward plus the discounted
    /// two-outcome continuation (Eq. 15 specialised to
    /// `{delivered → target, lost → self}`).
    pub fn q_value(&self, net: &Network, src: NodeId, target: Target, penalize_bs: bool) -> f64 {
        self.q_value_with_p(
            net,
            src,
            target,
            penalize_bs,
            self.links.probability(src, target),
        )
    }

    /// [`QRouter::q_value`] with an explicit link probability (used by the
    /// per-packet NACK override in [`QRouter::send_data_excluding`]).
    fn q_value_with_p(
        &self,
        net: &Network,
        src: NodeId,
        target: Target,
        penalize_bs: bool,
        p_ok: f64,
    ) -> f64 {
        self.q_value_with_p_v(net, src, target, penalize_bs, p_ok, self.v[src.index()])
    }

    /// [`QRouter::q_value_with_p`] with an explicit `V*(src)` as well, so
    /// plan-time code can iterate a node's fixed point on a local copy
    /// without writing through to the shared table.
    fn q_value_with_p_v(
        &self,
        net: &Network,
        src: NodeId,
        target: Target,
        penalize_bs: bool,
        p_ok: f64,
        v_src: f64,
    ) -> f64 {
        let r_t = p_ok * self.reward_success(net, src, target, penalize_bs)
            + (1.0 - p_ok) * self.reward_failure(net, src, target);
        let v_target = match target {
            Target::Bs => 0.0, // terminal
            Target::Head(h) => self.v[h.index()],
        };
        r_t + self.params.gamma * (p_ok * v_target + (1.0 - p_ok) * v_src)
    }

    /// Algorithm 4 (`Send-Data`): compute Q for every current head and the
    /// BS, update `V*(src)` to the max, and return the argmax action.
    ///
    /// Each `Q(src, a)` is affine in `V*(src)` through the failure
    /// self-loop term `γ·(1−P)·V*(src)`, so `V*(src) = max_a Q_a(V*(src))`
    /// is solved by iterating the backup to its fixed point — this is
    /// §3.3's "nodes are capable of computing the Q values of all the
    /// actions based on their own knowledge to update V values rather
    /// than take real actions". The iteration is a γ-contraction and
    /// typically settles in a handful of sweeps; every elementary Q
    /// computation counts toward the paper's `X`.
    ///
    /// Returns [`Target::Bs`] when `heads` is empty (the only action
    /// left). Dead heads are skipped.
    pub fn send_data(&mut self, net: &Network, src: NodeId, heads: &[NodeId]) -> Target {
        self.send_data_excluding(net, src, heads, &[])
    }

    /// [`QRouter::send_data`] with a per-packet NACK list: each NACK a
    /// target already gave *this* packet halves the link belief used for
    /// the remaining attempts. A single radio fluke on a good link barely
    /// moves the argmax (the packet is retried in place, where success is
    /// still likely), while a persistently-full queue collects NACKs and
    /// is priced out — without ever *removing* the action, so the router
    /// never trades a cheap nearby head for a ruinously distant one
    /// unless the Q comparison genuinely favours it.
    pub fn send_data_excluding(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        nacked: &[Target],
    ) -> Target {
        let v_before = self.v[src.index()];
        let mut v_src = v_before;
        let mut updates = 0u64;
        let p_base = |t: Target| self.links.probability(src, t);
        let action =
            self.send_data_core(net, src, heads, nacked, &mut v_src, &p_base, &mut updates);
        self.v[src.index()] = v_src;
        self.updates.add(updates);
        self.last_delta = v_src - v_before;
        self.convergence.observe(self.last_delta.abs());
        action
    }

    /// The Algorithm 4 fixed-point iteration, side-effect-free: `V*(src)`
    /// lives in the caller-owned `v_src`, link beliefs come from the
    /// caller-supplied `p_base` (so a planning pass can layer pending
    /// per-packet EWMA updates over the shared table), and elementary
    /// Q-computation counts accumulate in `updates`. Operation order is
    /// identical to the former in-place loop, so committing `v_src` back
    /// afterwards reproduces [`QRouter::send_data_excluding`] bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_data_core(
        &self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        nacked: &[Target],
        v_src: &mut f64,
        p_base: &dyn Fn(Target) -> f64,
        updates: &mut u64,
    ) -> Target {
        const MAX_SWEEPS: usize = 60;
        const TOL: f64 = 1e-6;
        let p_of = |t: Target| -> f64 {
            let n = nacked.iter().filter(|&&x| x == t).count() as i32;
            p_base(t) * 0.5f64.powi(n)
        };

        let mut action = Target::Bs;
        for _ in 0..MAX_SWEEPS {
            let mut best: Option<(Target, f64)> = None;
            for &h in heads {
                if !net.node(h).is_alive() {
                    continue;
                }
                let t = Target::Head(h);
                let q = self.q_value_with_p_v(net, src, t, true, p_of(t), *v_src);
                *updates += 1;
                if best.is_none_or(|(_, bq)| q > bq) {
                    best = Some((t, q));
                }
            }
            let q_bs = self.q_value_with_p_v(net, src, Target::Bs, true, p_of(Target::Bs), *v_src);
            *updates += 1;
            if best.is_none_or(|(_, bq)| q_bs > bq) {
                best = Some((Target::Bs, q_bs));
            }
            let (a, v_new) = best.expect("BS action always exists");
            action = a;
            let delta = (v_new - *v_src).abs();
            *v_src = v_new;
            if delta < TOL {
                break;
            }
        }
        action
    }

    /// [`QRouter::send_data_excluding`] on the cached-constant kernel
    /// ([`QRouter::send_data_core_cached`]): same decision, same
    /// bookkeeping, bit-identical numbers. The parallel engine
    /// (`threads > 1`) routes its merge-time retargets through this
    /// entry point; the single-threaded path keeps the straightforward
    /// reference kernel it is differentially tested against.
    pub fn send_data_excluding_cached(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        nacked: &[Target],
        scratch: &mut Vec<ActionConst>,
    ) -> Target {
        let v_before = self.v[src.index()];
        let mut v_src = v_before;
        let mut updates = 0u64;
        let p_base = |t: Target| self.links.probability(src, t);
        let action = self.send_data_core_cached(
            net,
            src,
            heads,
            nacked,
            &mut v_src,
            &p_base,
            &mut updates,
            scratch,
        );
        self.v[src.index()] = v_src;
        self.updates.add(updates);
        self.last_delta = v_src - v_before;
        self.convergence.observe(self.last_delta.abs());
        action
    }

    /// [`QRouter::send_data_core`] with the per-action constants hoisted
    /// out of the sweep loop. Within one call the network is frozen
    /// (`&Network`) and the NACK list fixed, so each action's link belief
    /// `P`, Eq. 16 expected reward `R_t`, and target `V*` are sweep
    /// invariants — only the failure self-loop term `γ·(1−P)·V*(src)`
    /// changes as the fixed point iterates. The reference kernel
    /// recomputes all of them every sweep (each reward carries a distance
    /// square root and two battery reads); hoisting preserves the exact
    /// expression tree `R_t + γ·(P·V*(target) + (1−P)·V*(src))`, so every
    /// intermediate f64 — and the elementary-update count, the paper's
    /// `X` — is bit-identical to [`QRouter::send_data_core`]. Locked by
    /// the `cached_kernel_is_bit_identical` test below and, end to end,
    /// by the thread-equivalence byte diffs.
    ///
    /// `scratch` is the caller-owned action buffer (cleared here), so
    /// per-packet calls allocate nothing in steady state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_data_core_cached(
        &self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        nacked: &[Target],
        v_src: &mut f64,
        p_base: &dyn Fn(Target) -> f64,
        updates: &mut u64,
        scratch: &mut Vec<ActionConst>,
    ) -> Target {
        const MAX_SWEEPS: usize = 60;
        const TOL: f64 = 1e-6;
        let p_of = |t: Target| -> f64 {
            let n = nacked.iter().filter(|&&x| x == t).count() as i32;
            p_base(t) * 0.5f64.powi(n)
        };

        // Dead heads are skipped here exactly as the reference skips them
        // per sweep — before the elementary-update counter — and the BS
        // action comes last, preserving the argmax comparison order.
        scratch.clear();
        for &h in heads {
            if !net.node(h).is_alive() {
                continue;
            }
            let t = Target::Head(h);
            let p_ok = p_of(t);
            let r_t = p_ok * self.reward_success(net, src, t, true)
                + (1.0 - p_ok) * self.reward_failure(net, src, t);
            scratch.push(ActionConst {
                target: t,
                p_ok,
                r_t,
                v_target: self.v[h.index()],
            });
        }
        {
            let p_ok = p_of(Target::Bs);
            let r_t = p_ok * self.reward_success(net, src, Target::Bs, true)
                + (1.0 - p_ok) * self.reward_failure(net, src, Target::Bs);
            scratch.push(ActionConst {
                target: Target::Bs,
                p_ok,
                r_t,
                v_target: 0.0, // terminal
            });
        }

        let mut action = Target::Bs;
        for _ in 0..MAX_SWEEPS {
            let mut best: Option<(Target, f64)> = None;
            for a in scratch.iter() {
                let q = a.r_t + self.params.gamma * (a.p_ok * a.v_target + (1.0 - a.p_ok) * *v_src);
                *updates += 1;
                if best.is_none_or(|(_, bq)| q > bq) {
                    best = Some((a.target, q));
                }
            }
            let (a, v_new) = best.expect("BS action always exists");
            action = a;
            let delta = (v_new - *v_src).abs();
            *v_src = v_new;
            if delta < TOL {
                break;
            }
        }
        action
    }

    /// Commit the outcome of a planning pass that ran
    /// `QRouter::send_data_core` (possibly several times, one per
    /// packet) on a local `V*` copy: write the final value back, fold in
    /// the elementary-update count, and replay the per-packet signed
    /// deltas through the convergence tracker in packet order — exactly
    /// the bookkeeping the in-place path does per call.
    pub fn absorb_plan(&mut self, src: NodeId, v_src: f64, updates: u64, deltas: &[f64]) {
        self.v[src.index()] = v_src;
        self.updates.add(updates);
        for &d in deltas {
            self.last_delta = d;
            self.convergence.observe(d.abs());
        }
    }

    /// Algorithm 1 line 15: a cluster head refreshes its own V from its
    /// BS-hop Q-value after forwarding the aggregate (no Eq. 19 penalty —
    /// see the module docs).
    ///
    /// `aggregate_share` is the fraction of a member packet's bits that
    /// actually travel on the head's fused BS transmission — the data
    /// fusion compression ratio (Table 2: 0.5). The head's transmission
    /// cost `y(h, BS)` is scaled by it so the value a member inherits
    /// through `V*(h_j)` reflects the *marginal* cost its packet adds to
    /// the aggregate, not a full uncompressed retransmission.
    pub fn head_update(&mut self, net: &Network, head: NodeId, aggregate_share: f64) {
        assert!(
            (0.0..=1.0).contains(&aggregate_share),
            "aggregate_share must be in [0,1], got {aggregate_share}"
        );
        let q = self.head_q(net, head, aggregate_share);
        self.updates.bump();
        self.last_delta = q - self.v[head.index()];
        self.convergence.observe(self.last_delta.abs());
        self.v[head.index()] = q;
    }

    /// The pure Q-value behind [`QRouter::head_update`]. Reads only the
    /// head's own `V` (plus the shared link table and frozen network), so
    /// distinct heads' values can be computed in any order — or in
    /// parallel — without changing a single bit.
    fn head_q(&self, net: &Network, head: NodeId, aggregate_share: f64) -> f64 {
        let p = self.params;
        let p_ok = self.links.probability(head, Target::Bs);
        let r_success = -p.g + p.alpha1 * (self.x(net, head) + p.x_bs)
            - p.alpha2 * aggregate_share * self.y(net, head, Target::Bs);
        let r_failure = -p.g + p.beta1 * self.x(net, head)
            - p.beta2 * aggregate_share * self.y(net, head, Target::Bs);
        let r_t = p_ok * r_success + (1.0 - p_ok) * r_failure;
        r_t + p.gamma * (1.0 - p_ok) * self.v[head.index()]
    }

    /// [`QRouter::head_update`] over a whole head roster: Q-values are
    /// computed (in parallel when `threads > 1` — each depends only on
    /// its own head's state) and then applied sequentially in roster
    /// order, which reproduces the one-at-a-time loop exactly. Returns
    /// the per-head signed deltas in roster order for event emission.
    pub fn head_update_batch(
        &mut self,
        net: &Network,
        heads: &[NodeId],
        aggregate_share: f64,
        threads: usize,
    ) -> Vec<f64> {
        assert!(
            (0.0..=1.0).contains(&aggregate_share),
            "aggregate_share must be in [0,1], got {aggregate_share}"
        );
        let qs: Vec<f64> = if threads > 1 && heads.len() > 1 {
            use rayon::prelude::*;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            pool.install(|| {
                heads
                    .par_iter()
                    .map(|&h| self.head_q(net, h, aggregate_share))
                    .collect()
            })
        } else {
            heads
                .iter()
                .map(|&h| self.head_q(net, h, aggregate_share))
                .collect()
        };
        let mut deltas = Vec::with_capacity(heads.len());
        for (&h, &q) in heads.iter().zip(&qs) {
            self.updates.bump();
            self.last_delta = q - self.v[h.index()];
            self.convergence.observe(self.last_delta.abs());
            self.v[h.index()] = q;
            deltas.push(self.last_delta);
        }
        deltas
    }

    /// ACK feedback from the simulator.
    pub fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        self.links.record(src, target, success);
    }

    /// Round-end housekeeping: drop link estimates whose endpoint died
    /// (see [`LinkEstimator::prune_dead`]). Behaviour-invariant — dead
    /// links are never consulted again — but keeps `links_tracked()`
    /// bounded by the live topology instead of the run's history.
    pub fn prune_dead_links(&mut self, net: &Network) {
        self.links.prune_dead(net);
    }
}

/// Hard cap on the dense row store: `N · (N + 1)` Q-values may not
/// exceed this (2²⁶ entries ≈ 512 MiB of `f64`), so a dense store is a
/// small-deployment diagnostic by construction — at the 100k/1M-node
/// scales only [`QRowsMode::Sparse`] is accepted.
pub const MAX_DENSE_Q_ENTRIES: usize = 1 << 26;

/// Per-round record of every node's decision Q-values — the paper's
/// Q-rows, materialized for inspection without touching the hot path.
///
/// The router itself stores only `V*` per node (`Q*(b_i, a_j)` is
/// *computed* per packet, §4.2); this store records the value behind
/// each committed decision: `V*(src)` after a `Send-Data` argmax keyed
/// by the chosen target, and a head's line-15 `Q(h, a_BS)` keyed by the
/// BS. It is strictly write-only with respect to routing — nothing on
/// the decision path ever reads it — so dense and sparse layouts (and
/// any thread count) produce byte-identical event streams by
/// construction.
///
/// Rows are cleared lazily per round via a round stamp: a row's first
/// write in round `r` resets it, and reads of rows not written in the
/// current round see an empty row. Keys are node ids with `u32::MAX`
/// for the BS (the link-table convention).
#[derive(Debug, Clone)]
pub struct QRowStore {
    mode: QRowsMode,
    /// `Dense` layout: row = source node, column = target node id with
    /// column `n` as the BS.
    dense: Option<QTable>,
    /// `Sparse` layout: one budgeted row per source node.
    sparse: Vec<SparseQRow>,
    /// Round each row was last written in (`u32::MAX` = never).
    stamp: Vec<u32>,
    round: u32,
    n: usize,
}

impl QRowStore {
    /// Create a store for `n` nodes. `budget` caps the entries a sparse
    /// row retains (the Theorem-1 candidate window plus the BS; the
    /// weakest entry is evicted beyond it — acceptable for a diagnostic,
    /// and unreachable while per-round distinct targets fit the budget).
    ///
    /// Dense creation fails with a descriptive error when `n · (n + 1)`
    /// overflows or exceeds [`MAX_DENSE_Q_ENTRIES`].
    pub fn new(n: usize, budget: usize, mode: QRowsMode) -> Result<Self, String> {
        let budget = budget.max(1);
        let (dense, sparse) = match mode {
            QRowsMode::Dense => {
                let cols = n
                    .checked_add(1)
                    .ok_or_else(|| format!("dense Q-row store overflows usize: {n} nodes"))?;
                let entries = n
                    .checked_mul(cols)
                    .ok_or_else(|| format!("dense Q-row store overflows usize: {n} x {cols}"))?;
                if entries > MAX_DENSE_Q_ENTRIES {
                    return Err(format!(
                        "dense Q-row store needs {entries} entries for {n} nodes, \
                         above the {MAX_DENSE_Q_ENTRIES}-entry cap; use --q-rows sparse"
                    ));
                }
                let table = QTable::try_zeros(n, cols).map_err(|e| e.to_string())?;
                (Some(table), Vec::new())
            }
            QRowsMode::Sparse => (None, vec![SparseQRow::new(budget); n]),
        };
        Ok(QRowStore {
            mode,
            dense,
            sparse,
            stamp: vec![u32::MAX; n],
            round: 0,
            n,
        })
    }

    /// The layout in use.
    pub fn mode(&self) -> QRowsMode {
        self.mode
    }

    /// Number of source rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store tracks zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The round rows currently belong to.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Enter a round: later writes reset each row they touch first.
    pub fn begin_round(&mut self, round: u32) {
        self.round = round;
    }

    fn col_of(&self, key: u32) -> usize {
        if key == BS_KEY {
            self.n
        } else {
            key as usize
        }
    }

    /// Record the Q-value behind a decision of `src` toward `key` (a
    /// node id, or `u32::MAX` for the BS). Last write per key wins
    /// within a round.
    pub fn record(&mut self, src: u32, key: u32, q: f64) {
        let i = src as usize;
        debug_assert!(i < self.n, "source {src} out of range");
        if self.stamp[i] != self.round {
            match self.mode {
                QRowsMode::Dense => {
                    let table = self.dense.as_mut().expect("dense store has a table");
                    for a in 0..=self.n {
                        table.set(i, a, 0.0);
                    }
                }
                QRowsMode::Sparse => self.sparse[i].clear(),
            }
            self.stamp[i] = self.round;
        }
        let col = self.col_of(key);
        match self.mode {
            QRowsMode::Dense => {
                self.dense
                    .as_mut()
                    .expect("dense store has a table")
                    .set(i, col, q);
            }
            QRowsMode::Sparse => {
                self.sparse[i].set(key, q);
            }
        }
    }

    /// The recorded Q-value of `src` toward `key` this round (0.0 when
    /// the row was not written this round or the key is absent).
    pub fn q(&self, src: u32, key: u32) -> f64 {
        let i = src as usize;
        if i >= self.n || self.stamp[i] != self.round {
            return 0.0;
        }
        match self.mode {
            QRowsMode::Dense => self
                .dense
                .as_ref()
                .expect("dense store has a table")
                .get(i, self.col_of(key)),
            QRowsMode::Sparse => self.sparse[i].get(key),
        }
    }

    /// This round's non-zero entries of `src`'s row, key-ascending with
    /// the BS (`u32::MAX`) last — the layout-independent view both modes
    /// must agree on (dense cannot distinguish a recorded 0.0 from an
    /// untouched cell, so exact zeros are filtered from both).
    pub fn row(&self, src: u32) -> Vec<(u32, f64)> {
        let i = src as usize;
        if i >= self.n || self.stamp[i] != self.round {
            return Vec::new();
        }
        match self.mode {
            QRowsMode::Dense => {
                let table = self.dense.as_ref().expect("dense store has a table");
                (0..=self.n)
                    .filter_map(|a| {
                        let q = table.get(i, a);
                        if q != 0.0 {
                            let key = if a == self.n { BS_KEY } else { a as u32 };
                            Some((key, q))
                        } else {
                            None
                        }
                    })
                    .collect()
            }
            QRowsMode::Sparse => self.sparse[i].iter().filter(|&(_, q)| q != 0.0).collect(),
        }
    }

    /// Count of rows written in the current round.
    pub fn rows_touched(&self) -> usize {
        self.stamp.iter().filter(|&&s| s == self.round).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::Vec3;
    use qlec_net::NetworkBuilder;

    /// Line deployment: src at origin, near head at 30 m, far head at
    /// 150 m, BS at 60 m (the enclosing-box centre is irrelevant — we pin
    /// the BS).
    fn line_net() -> Network {
        NetworkBuilder::new()
            .bs_at(Vec3::new(60.0, 0.0, 0.0))
            .from_nodes(&[
                (Vec3::new(0.0, 0.0, 0.0), 5.0),   // 0: src
                (Vec3::new(30.0, 0.0, 0.0), 5.0),  // 1: near head
                (Vec3::new(150.0, 0.0, 0.0), 5.0), // 2: far head
            ])
    }

    fn router(net: &Network) -> QRouter {
        QRouter::new(net, QlecParams::paper())
    }

    #[test]
    fn link_estimator_converges_to_frequency() {
        let mut est = LinkEstimator::new(0.2, 1.0);
        let src = NodeId(0);
        let t = Target::Head(NodeId(1));
        assert_eq!(est.probability(src, t), 1.0, "prior before evidence");
        for _ in 0..200 {
            est.record(src, t, false);
        }
        assert!(
            est.probability(src, t) < 0.01,
            "all-failure link must go to ≈ 0"
        );
        for _ in 0..200 {
            est.record(src, t, true);
        }
        assert!(est.probability(src, t) > 0.99);
        assert_eq!(est.links_tracked(), 1);
    }

    #[test]
    fn link_estimator_is_per_link() {
        let mut est = LinkEstimator::new(0.5, 1.0);
        est.record(NodeId(0), Target::Head(NodeId(1)), false);
        assert!(est.probability(NodeId(0), Target::Head(NodeId(1))) < 1.0);
        assert_eq!(est.probability(NodeId(0), Target::Head(NodeId(2))), 1.0);
        assert_eq!(est.probability(NodeId(0), Target::Bs), 1.0);
        est.record(NodeId(0), Target::Bs, false);
        assert!(est.probability(NodeId(0), Target::Bs) < 1.0);
    }

    #[test]
    fn prune_dead_drops_only_dead_endpoint_links() {
        let mut net = line_net();
        let mut est = LinkEstimator::new(0.5, 1.0);
        est.record(NodeId(0), Target::Head(NodeId(1)), true);
        est.record(NodeId(0), Target::Head(NodeId(2)), false);
        est.record(NodeId(0), Target::Bs, true);
        est.record(NodeId(1), Target::Bs, true);
        assert_eq!(est.links_tracked(), 4);
        net.node_mut(NodeId(1)).battery.consume(10.0);
        est.prune_dead(&net);
        // Gone: 0→1 (dead dst) and 1→BS (dead src). Kept: 0→2, 0→BS.
        assert_eq!(est.links_tracked(), 2);
        assert!(est.probability(NodeId(0), Target::Head(NodeId(2))) < 1.0);
        assert_eq!(
            est.probability(NodeId(0), Target::Head(NodeId(1))),
            1.0,
            "pruned link reverts to the prior"
        );
    }

    #[test]
    fn member_prefers_near_head_over_far() {
        // Same energies and priors: the Eq. 18 cost (30 m free-space vs
        // 150 m multi-path) must dominate.
        let net = line_net();
        let mut r = router(&net);
        let heads = [NodeId(1), NodeId(2)];
        assert_eq!(
            r.send_data(&net, NodeId(0), &heads),
            Target::Head(NodeId(1))
        );
    }

    #[test]
    fn member_avoids_bs_due_to_penalty() {
        // The BS at 60 m is geometrically closer than the far head, but
        // Eq. 19's penalty l must keep members off it while any head
        // lives.
        let net = line_net();
        let mut r = router(&net);
        for &heads in &[&[NodeId(1)][..], &[NodeId(2)][..]] {
            let t = r.send_data(&net, NodeId(0), heads);
            assert_ne!(t, Target::Bs, "heads {heads:?}");
        }
    }

    #[test]
    fn no_heads_forces_bs() {
        let net = line_net();
        let mut r = router(&net);
        assert_eq!(r.send_data(&net, NodeId(0), &[]), Target::Bs);
    }

    #[test]
    fn dead_head_is_skipped() {
        let mut net = line_net();
        net.node_mut(NodeId(1)).battery.consume(10.0);
        let mut r = router(&net);
        let t = r.send_data(&net, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(t, Target::Head(NodeId(2)));
    }

    #[test]
    fn failed_acks_steer_away_from_lossy_head() {
        // Start preferring the near head, then fail its ACKs repeatedly:
        // the estimator drives P̂ down and the fixed-point backup makes
        // hammering a dead link worth R_fail/(1−γ) — far below the far
        // head's value — so the router must switch.
        let net = line_net();
        let mut r = router(&net);
        let heads = [NodeId(1), NodeId(2)];
        assert_eq!(
            r.send_data(&net, NodeId(0), &heads),
            Target::Head(NodeId(1))
        );
        let mut switched = false;
        for _ in 0..60 {
            let t = r.send_data(&net, NodeId(0), &heads);
            if t == Target::Head(NodeId(2)) {
                switched = true;
                break;
            }
            // The simulator would report the failed hop.
            r.on_hop_result(NodeId(0), t, false);
        }
        assert!(switched, "router never abandoned the all-failure link");
        // And it stays switched while the bad link's estimate is ≈ 0.
        assert_eq!(
            r.send_data(&net, NodeId(0), &heads),
            Target::Head(NodeId(2))
        );
    }

    #[test]
    fn lower_energy_head_is_less_attractive() {
        // Two heads at symmetric distances; drain one. The α₁·x(h_j) term
        // and its V must tip the choice to the full head.
        let net = NetworkBuilder::new()
            .bs_at(Vec3::new(0.0, 100.0, 0.0))
            .from_nodes(&[
                (Vec3::new(0.0, 0.0, 0.0), 5.0),   // 0: src
                (Vec3::new(40.0, 0.0, 0.0), 5.0),  // 1: full head
                (Vec3::new(-40.0, 0.0, 0.0), 5.0), // 2: to be drained
            ]);
        let mut net = net;
        net.node_mut(NodeId(2)).battery.consume(4.5);
        let mut r = router(&net);
        let t = r.send_data(&net, NodeId(0), &[NodeId(1), NodeId(2)]);
        assert_eq!(t, Target::Head(NodeId(1)));
    }

    #[test]
    fn head_update_reflects_bs_cost_and_energy() {
        let net = line_net();
        let mut r = router(&net);
        assert_eq!(r.v_of(NodeId(1)), 0.0);
        r.head_update(&net, NodeId(1), 0.5);
        let v_near = r.v_of(NodeId(1)); // head at 30 m from BS
        r.head_update(&net, NodeId(2), 0.5);
        let v_far = r.v_of(NodeId(2)); // head at 90 m from BS
        assert!(
            v_near > v_far,
            "near-BS head V {v_near} must exceed far head V {v_far}"
        );
        // No Eq. 19 penalty in the head update: values stay on the reward
        // scale, far above -l.
        assert!(v_far > -r.params.l / 2.0);
    }

    #[test]
    fn v_values_are_bounded() {
        // Repeated updates must stay within r_max/(1-γ).
        let net = line_net();
        let mut r = router(&net);
        let heads = [NodeId(1), NodeId(2)];
        for i in 0..500 {
            r.send_data(&net, NodeId(0), &heads);
            r.head_update(&net, NodeId(1), 0.5);
            r.head_update(&net, NodeId(2), 0.5);
            let _ = i;
        }
        let p = QlecParams::paper();
        let r_max = p.g + 2.0 * p.alpha1 + p.alpha2 * 10.0 + p.l; // generous
        let bound = r_max / (1.0 - p.gamma);
        for id in [NodeId(0), NodeId(1), NodeId(2)] {
            assert!(
                r.v_of(id).abs() <= bound,
                "V({id}) = {} exceeds bound {bound}",
                r.v_of(id)
            );
        }
    }

    #[test]
    fn repeated_updates_converge() {
        // With a static network, V deltas shrink to (numerical) zero —
        // the fixed point exists and X is finite.
        let net = line_net();
        let mut r = router(&net);
        let heads = [NodeId(1), NodeId(2)];
        let mut converged_at = None;
        for sweep in 0..10_000 {
            r.send_data(&net, NodeId(0), &heads);
            r.head_update(&net, NodeId(1), 0.5);
            r.head_update(&net, NodeId(2), 0.5);
            if r.convergence.end_sweep() {
                converged_at = Some(sweep);
                break;
            }
        }
        assert!(converged_at.is_some(), "V never converged");
        assert!(r.updates.total() > 0);
    }

    #[test]
    fn cached_kernel_is_bit_identical() {
        // The cached-constant kernel must reproduce the reference kernel
        // bit for bit: same action, same V*(src) bits, same elementary
        // update count, same signed delta — across evolving link
        // evidence, NACK lists, dead heads, and an empty head set.
        let mut net = NetworkBuilder::new()
            .bs_at(Vec3::new(60.0, 40.0, 0.0))
            .from_nodes(&[
                (Vec3::new(0.0, 0.0, 0.0), 5.0),
                (Vec3::new(30.0, 10.0, 0.0), 5.0),
                (Vec3::new(150.0, 0.0, 20.0), 5.0),
                (Vec3::new(80.0, 80.0, 80.0), 5.0),
                (Vec3::new(10.0, 90.0, 40.0), 2.5),
            ]);
        net.node_mut(NodeId(3)).battery.consume(4.0);
        let src = NodeId(0);
        let all_heads = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let mut reference = router(&net);
        let mut cached = reference.clone();
        let mut scratch = Vec::new();
        // Deterministic pseudo-random hop results / NACK churn.
        let mut x: u64 = 0x9E37_79B9;
        let mut nacked: Vec<Target> = Vec::new();
        for step in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let heads: &[NodeId] = match step % 4 {
                0 => &all_heads,
                1 => &all_heads[..2],
                2 => &all_heads[2..],
                _ => &[],
            };
            if step % 7 == 0 {
                nacked.clear();
            }
            let a = reference.send_data_excluding(&net, src, heads, &nacked);
            let b = cached.send_data_excluding_cached(&net, src, heads, &nacked, &mut scratch);
            assert_eq!(a, b, "action diverged at step {step}");
            assert_eq!(
                reference.v_of(src).to_bits(),
                cached.v_of(src).to_bits(),
                "V*(src) bits diverged at step {step}"
            );
            assert_eq!(
                reference.updates.total(),
                cached.updates.total(),
                "update counts diverged at step {step}"
            );
            assert_eq!(
                reference.last_delta().to_bits(),
                cached.last_delta().to_bits(),
                "last_delta bits diverged at step {step}"
            );
            let success = x & 1 == 0;
            reference.on_hop_result(src, a, success);
            cached.on_hop_result(src, b, success);
            if !success {
                nacked.push(a);
            }
        }
    }

    #[test]
    fn update_counter_counts_k_plus_one_per_sweep() {
        let net = line_net();
        let mut r = router(&net);
        let heads = [NodeId(1), NodeId(2)];
        r.send_data(&net, NodeId(0), &heads);
        // Each fixed-point sweep performs k + 1 = 3 elementary updates;
        // with optimistic priors (P = 1, no self-loop term) the fixed
        // point lands in the first sweep and the second confirms it.
        let total = r.updates.total();
        assert!(total >= 3 && total.is_multiple_of(3), "updates = {total}");
        assert!(total <= 3 * 200, "sweep cap respected");
    }

    #[test]
    fn q_row_store_records_and_reads_back() {
        for mode in [QRowsMode::Dense, QRowsMode::Sparse] {
            let mut store = QRowStore::new(10, 4, mode).unwrap();
            store.begin_round(0);
            store.record(3, 7, -1.5);
            store.record(3, super::BS_KEY, -9.0);
            store.record(3, 7, -1.25); // last write wins
            assert_eq!(store.q(3, 7), -1.25, "{mode:?}");
            assert_eq!(store.q(3, super::BS_KEY), -9.0, "{mode:?}");
            assert_eq!(store.q(3, 5), 0.0, "{mode:?}: unrecorded key");
            assert_eq!(store.q(4, 7), 0.0, "{mode:?}: untouched row");
            // BS sorts last in the layout-independent view.
            assert_eq!(
                store.row(3),
                vec![(7, -1.25), (super::BS_KEY, -9.0)],
                "{mode:?}"
            );
            assert_eq!(store.rows_touched(), 1, "{mode:?}");
        }
    }

    #[test]
    fn q_row_store_clears_rows_lazily_per_round() {
        for mode in [QRowsMode::Dense, QRowsMode::Sparse] {
            let mut store = QRowStore::new(4, 3, mode).unwrap();
            store.begin_round(0);
            store.record(1, 2, -0.5);
            store.begin_round(1);
            // Stale rows read empty before any write...
            assert_eq!(store.q(1, 2), 0.0, "{mode:?}");
            assert!(store.row(1).is_empty(), "{mode:?}");
            // ...and the first write of the new round resets the row.
            store.record(1, 0, -2.0);
            assert_eq!(store.row(1), vec![(0, -2.0)], "{mode:?}");
        }
    }

    #[test]
    fn q_row_store_layouts_agree_on_a_replayed_sequence() {
        let mut dense = QRowStore::new(6, 4, QRowsMode::Dense).unwrap();
        let mut sparse = QRowStore::new(6, 4, QRowsMode::Sparse).unwrap();
        let writes: &[(u32, u32, u32, f64)] = &[
            (0, 0, 2, -1.0),
            (0, 0, super::BS_KEY, -8.0),
            (0, 5, 2, -0.25),
            (1, 0, 3, -4.0), // round bump clears rows lazily
            (1, 0, 2, -0.5),
            (1, 5, 1, -0.125),
        ];
        let mut round = u32::MAX;
        for &(r, src, key, q) in writes {
            if r != round {
                dense.begin_round(r);
                sparse.begin_round(r);
                round = r;
            }
            dense.record(src, key, q);
            sparse.record(src, key, q);
        }
        for src in 0..6 {
            assert_eq!(dense.row(src), sparse.row(src), "src {src}");
        }
        assert_eq!(dense.rows_touched(), sparse.rows_touched());
    }

    #[test]
    fn dense_store_is_refused_past_the_entry_cap() {
        // 8192 · 8193 just exceeds the 2²⁶ cap; the error names the fix.
        let err = QRowStore::new(8192, 4, QRowsMode::Dense).unwrap_err();
        assert!(err.contains("--q-rows sparse"), "unhelpful error: {err}");
        // Sparse at the same size is fine (and tiny).
        assert!(QRowStore::new(8192, 4, QRowsMode::Sparse).is_ok());
        // A 100k-node dense store is refused without allocating.
        assert!(QRowStore::new(100_000, 4, QRowsMode::Dense).is_err());
    }
}
