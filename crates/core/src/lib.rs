//! QLEC — the paper's primary contribution.
//!
//! The algorithm (Algorithm 1) runs in two phases per round:
//!
//! 1. **Cluster Head Selection** ([`deec_improved`]) — DEEC's
//!    residual-energy-weighted randomized rotation, improved with the
//!    round-decaying energy threshold of Eq. 4 and the HELLO-based
//!    redundancy reduction of Algorithm 3, with the target head count set
//!    to the 3-D optimal cluster number of Theorem 1 ([`kopt`]).
//! 2. **Data Transmission** ([`qrouting`]) — each non-head node picks the
//!    cluster head to forward to by the model-based Q-update of
//!    Algorithm 4, with the reward functions of Eq. 16–20 built from
//!    residual energies, the first-order-radio transmission cost, and
//!    ACK-estimated link probabilities.
//!
//! [`multihop`] adds an explicitly-marked *extension*: energy-optimal
//! multi-hop aggregate routing over the head graph (the direction the
//! paper's QELAR/HyDRO citations point at), decisive when the base
//! station is remote.
//!
//! [`qlec::QlecProtocol`] packages both phases as a
//! [`qlec_net::Protocol`], directly comparable against the baselines in
//! `qlec-clustering` under the same simulator. [`ablation`] exposes
//! feature-toggled variants for the design-choice benches.

pub mod ablation;
pub mod deec_improved;
pub mod kopt;
pub mod multihop;
pub mod params;
pub mod qlec;
pub mod qrouting;

pub use params::{QRowsMode, QlecParams};
pub use qlec::{QlecBuilder, QlecProtocol};
pub use qrouting::QRowStore;
