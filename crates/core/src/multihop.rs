//! Extension: energy-optimal multi-hop aggregate routing.
//!
//! The paper's QLEC sends every head's fused aggregate *directly* to the
//! BS (Algorithm 1 line 14). Its own related work (QELAR \[6\],
//! HyDRO \[2\]) routes multi-hop, and with a *remote* base station the
//! first-order radio model makes direct transmission ruinous: the d⁴
//! multi-path term dominates, while two half-length hops cost
//! `2·(d/2)⁴ = d⁴/8` in amplifier energy (plus one extra
//! reception/forwarding overhead). This module adds that capability as an
//! explicitly-marked extension:
//!
//! * [`cheapest_route`] — exact minimum-energy path from a head to the BS
//!   through the current head set (Dijkstra on the complete head graph;
//!   edge weight = per-bit transmit energy + reception cost at the relay,
//!   BS reception free),
//! * [`MultiHopQlec`] — QLEC with `aggregate_route` overridden to the
//!   Dijkstra path; everything else (selection, Q-routing) identical.
//!
//! The `multihop` experiment binary quantifies when this wins: never with
//! the paper's centre BS (hops are short already), decisively with a
//! surface/remote BS.

use crate::params::QlecParams;
use crate::qlec::QlecProtocol;
use qlec_net::{Network, NodeId, Protocol, Target};
use rand::RngCore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-bit cost of one hop of the aggregate path: transmit energy over
/// distance `d` plus the relay's reception electronics (`to_bs` skips the
/// reception — the BS is mains-powered).
fn hop_cost(net: &Network, d: f64, to_bs: bool) -> f64 {
    let tx = net.radio.tx_energy(1, d);
    if to_bs {
        tx
    } else {
        tx + net.radio.rx_energy(1)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties by node index for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact minimum-energy route from `from` to the BS through alive members
/// of `heads` (Dijkstra over the complete graph of heads + BS).
///
/// Returns the hop sequence in simulator form (relays as
/// [`Target::Head`], final [`Target::Bs`]) and its per-bit energy cost.
/// A head with no alive relays simply gets the direct route.
pub fn cheapest_route(net: &Network, from: NodeId, heads: &[NodeId]) -> (Vec<Target>, f64) {
    // Node indexing: 0..h = alive heads (including `from` if present),
    // h = the source (if not a listed head), last = BS.
    let mut nodes: Vec<NodeId> = heads
        .iter()
        .copied()
        .filter(|&h| h != from && net.node(h).is_alive())
        .collect();
    nodes.push(from);
    let src = nodes.len() - 1;
    let bs = nodes.len(); // virtual index

    let n = nodes.len() + 1;
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        if node == bs {
            break;
        }
        let pos = net.node(nodes[node]).pos;
        // Edge to the BS.
        let c_bs = cost + hop_cost(net, pos.dist(net.bs_pos()), true);
        if c_bs < dist[bs] {
            dist[bs] = c_bs;
            prev[bs] = node;
            heap.push(HeapEntry {
                cost: c_bs,
                node: bs,
            });
        }
        // Edges to the other heads.
        for (j, &other) in nodes.iter().enumerate() {
            if j == node || j == src {
                continue;
            }
            let c = cost + hop_cost(net, pos.dist(net.node(other).pos), false);
            if c < dist[j] {
                dist[j] = c;
                prev[j] = node;
                heap.push(HeapEntry { cost: c, node: j });
            }
        }
    }

    // Reconstruct src → … → BS.
    let mut route = Vec::new();
    let mut cur = bs;
    while cur != src {
        route.push(cur);
        cur = prev[cur];
        debug_assert!(
            cur != usize::MAX,
            "BS must be reachable (direct edge exists)"
        );
    }
    route.reverse();
    let targets = route
        .into_iter()
        .map(|i| {
            if i == bs {
                Target::Bs
            } else {
                Target::Head(nodes[i])
            }
        })
        .collect();
    (targets, dist[bs])
}

/// QLEC with multi-hop aggregate routing (everything else verbatim).
pub struct MultiHopQlec {
    inner: QlecProtocol,
}

impl MultiHopQlec {
    /// Multi-hop QLEC with the given parameters.
    pub fn new(params: QlecParams) -> Self {
        let mut inner = QlecProtocol::new(params);
        inner.set_name("qlec-multihop");
        MultiHopQlec { inner }
    }

    /// Paper parameters with a fixed cluster count.
    pub fn paper_with_k(k: usize) -> Self {
        Self::new(QlecParams::paper_with_k(k))
    }

    /// Attach an observer set (forwarded to the wrapped protocol — see
    /// [`crate::qlec::QlecBuilder::observer`]).
    pub fn with_observer(mut self, obs: qlec_obs::ObserverSet) -> Self {
        self.inner.set_observer(obs);
        self
    }

    /// Feature override, forwarded to the wrapped protocol (ablations;
    /// e.g. nearest-head member routing isolates the aggregate-routing
    /// comparison) — see [`crate::qlec::QlecBuilder::features`].
    pub fn with_features(
        mut self,
        features: crate::deec_improved::SelectionFeatures,
        q_routing: bool,
    ) -> Self {
        self.inner.set_features(features, q_routing);
        self
    }

    /// Access the wrapped protocol (diagnostics).
    pub fn inner(&self) -> &QlecProtocol {
        &self.inner
    }
}

impl Protocol for MultiHopQlec {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.inner.on_round_start(net, round, rng)
    }

    fn on_packet_start(&mut self, src: NodeId) {
        self.inner.on_packet_start(src);
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target {
        self.inner.choose_target(net, src, heads, rng)
    }

    fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        self.inner.on_hop_result(src, target, success);
    }

    fn aggregate_route(&mut self, net: &Network, head: NodeId, heads: &[NodeId]) -> Vec<Target> {
        cheapest_route(net, head, heads).0
    }

    fn on_round_end(&mut self, net: &mut Network, round: u32, heads: &[NodeId]) {
        self.inner.on_round_end(net, round, heads);
    }

    fn planner(&self) -> Option<&dyn qlec_net::protocol::RoutePlanner> {
        self.inner.planner()
    }

    fn absorb_plan(&mut self, src: NodeId, scratch: qlec_net::protocol::PlanScratch) {
        self.inner.absorb_plan(src, scratch);
    }

    fn configure_threads(&mut self, threads: usize) {
        self.inner.configure_threads(threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::Vec3;
    use qlec_net::{NetworkBuilder, SimConfig, Simulator};
    use qlec_radio::link::{AnyLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Heads on a line toward a remote BS: 0 at x=0, 1 at x=200, 2 at
    /// x=400; BS at x=600. Direct from 0 costs ~600⁴·ε_mp; the relay
    /// chain costs 3·(200⁴·ε_mp) + overheads — far cheaper.
    fn line_net() -> Network {
        NetworkBuilder::new()
            .bs_at(Vec3::new(600.0, 0.0, 0.0))
            .from_nodes(&[
                (Vec3::new(0.0, 0.0, 0.0), 5.0),
                (Vec3::new(200.0, 0.0, 0.0), 5.0),
                (Vec3::new(400.0, 0.0, 0.0), 5.0),
            ])
    }

    #[test]
    fn relays_along_the_line() {
        let net = line_net();
        let heads = [NodeId(0), NodeId(1), NodeId(2)];
        let (route, cost) = cheapest_route(&net, NodeId(0), &heads);
        assert_eq!(
            route,
            vec![Target::Head(NodeId(1)), Target::Head(NodeId(2)), Target::Bs]
        );
        // Cost must beat the direct shot.
        let direct = net.radio.tx_energy(1, 600.0);
        assert!(cost < direct, "relayed {cost} vs direct {direct}");
    }

    #[test]
    fn near_bs_head_goes_direct() {
        let net = line_net();
        let heads = [NodeId(0), NodeId(1), NodeId(2)];
        // Head 2 is 200 m from the BS; any relay would be a detour.
        let (route, _) = cheapest_route(&net, NodeId(2), &heads);
        assert_eq!(route, vec![Target::Bs]);
    }

    #[test]
    fn no_heads_means_direct() {
        let net = line_net();
        let (route, cost) = cheapest_route(&net, NodeId(0), &[]);
        assert_eq!(route, vec![Target::Bs]);
        assert!((cost - net.radio.tx_energy(1, 600.0)).abs() < 1e-18);
    }

    #[test]
    fn dead_relays_are_skipped() {
        let mut net = line_net();
        net.node_mut(NodeId(1)).battery.consume(10.0);
        let heads = [NodeId(0), NodeId(1), NodeId(2)];
        let (route, _) = cheapest_route(&net, NodeId(0), &heads);
        // Only head 2 can relay now.
        assert_eq!(route, vec![Target::Head(NodeId(2)), Target::Bs]);
    }

    #[test]
    fn matches_brute_force_on_small_head_sets() {
        // Enumerate all simple paths over ≤ 4 heads and compare.
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..30 {
            let net = {
                let mut r2 = StdRng::seed_from_u64(100 + trial);
                NetworkBuilder::new()
                    .bs_at(Vec3::new(500.0, 250.0, 0.0))
                    .uniform_cube(&mut r2, 5, 400.0, 5.0)
            };
            let heads: Vec<NodeId> = (1..5).map(NodeId).collect();
            let (_, got) = cheapest_route(&net, NodeId(0), &heads);

            // Brute force over permutations of head subsets.
            let mut best = f64::INFINITY;
            let ids: Vec<NodeId> = heads.clone();
            let subsets = 1usize << ids.len();
            for mask in 0..subsets {
                let subset: Vec<NodeId> = ids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &id)| id)
                    .collect();
                // All orderings of the subset.
                let mut perm = subset.clone();
                permutohedron_heap(&mut perm, &mut |order: &[NodeId]| {
                    let mut cost = 0.0;
                    let mut cur = NodeId(0);
                    for &h in order {
                        cost += hop_cost(&net, net.distance(cur, h), false);
                        cur = h;
                    }
                    cost += hop_cost(&net, net.dist_to_bs(cur), true);
                    if cost < best {
                        best = cost;
                    }
                });
            }
            assert!(
                (got - best).abs() < 1e-15 + best * 1e-12,
                "trial {trial}: dijkstra {got} vs brute force {best}"
            );
            let _ = &mut rng;
        }
    }

    /// Tiny Heap's-algorithm permutation visitor (test-only helper).
    fn permutohedron_heap<T: Clone, F: FnMut(&[T])>(items: &mut [T], visit: &mut F) {
        fn rec<T: Clone, F: FnMut(&[T])>(k: usize, items: &mut [T], visit: &mut F) {
            if k <= 1 {
                visit(items);
                return;
            }
            for i in 0..k {
                rec(k - 1, items, visit);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        rec(items.len(), items, visit);
    }

    #[test]
    fn multihop_beats_direct_with_remote_bs() {
        use crate::deec_improved::SelectionFeatures;
        let mk_net = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Batteries sized for the scenario: a 600 m multi-path shot
            // costs ~20 J per fused aggregate, so 50 J nodes would die
            // mid-duty and both variants would collapse to aggregate
            // losses instead of measuring routing.
            NetworkBuilder::new()
                .link(AnyLink::Ideal(IdealLink))
                .bs_at(Vec3::new(100.0, 100.0, 700.0)) // far above the cube
                .uniform_cube(&mut rng, 60, 200.0, 500.0)
        };
        // Pin member routing to nearest-head in BOTH variants: under
        // Q-routing every member chases the BS-nearest head (its V
        // dominates with a remote BS), which concentrates nearly all
        // traffic into the head whose BS shot is already the cheapest —
        // exactly the one aggregate Dijkstra cannot improve. Nearest-head
        // members spread the load geographically, so every head carries a
        // real aggregate and the test measures aggregate routing, not
        // queue herding.
        let mut cfg = SimConfig::paper(20.0);
        cfg.rounds = 8;
        let mut rng = StdRng::seed_from_u64(1 ^ 0xAA);
        let direct = Simulator::builder(mk_net(1)).config(cfg).build().run(
            &mut QlecProtocol::builder().k(5).q_routing(false).build(),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(1 ^ 0xAA);
        let multi = Simulator::builder(mk_net(1)).config(cfg).build().run(
            &mut MultiHopQlec::paper_with_k(5).with_features(SelectionFeatures::default(), false),
            &mut rng,
        );
        assert!(multi.totals.is_conserved());
        // The last ~500 m to the BS is unavoidable for any route, so the
        // saving comes only from replacing each head's own long shot with
        // a relay chain to the best-placed head — a reliable double-digit
        // percentage, not an order of magnitude.
        assert!(
            multi.total_energy() < 0.9 * direct.total_energy(),
            "multi-hop {} J should clearly beat direct {} J with a remote BS",
            multi.total_energy(),
            direct.total_energy()
        );
        assert!(multi.pdr() > 0.9, "multi-hop PDR {}", multi.pdr());
    }

    #[test]
    fn multihop_is_harmless_with_centre_bs() {
        // With the paper's centre BS every head is close; Dijkstra should
        // (almost always) return the direct route and match plain QLEC.
        // One deployment can still swing ±15 % on randomized-election
        // noise, so compare means over a few seeds.
        let mk_net = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            NetworkBuilder::new()
                .link(AnyLink::Ideal(IdealLink))
                .uniform_cube(&mut rng, 60, 200.0, 5.0)
        };
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 6;
        let seeds = [1u64, 2, 3, 4];
        let mean = |run: &dyn Fn(u64) -> f64| {
            seeds.iter().map(|&s| run(s)).sum::<f64>() / seeds.len() as f64
        };
        let direct = mean(&|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x55);
            Simulator::builder(mk_net(s))
                .config(cfg)
                .build()
                .run(&mut QlecProtocol::builder().k(5).build(), &mut rng)
                .total_energy()
        });
        let multi = mean(&|s| {
            let mut rng = StdRng::seed_from_u64(s ^ 0x55);
            Simulator::builder(mk_net(s))
                .config(cfg)
                .build()
                .run(&mut MultiHopQlec::paper_with_k(5), &mut rng)
                .total_energy()
        });
        let ratio = multi / direct;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "centre-BS energy ratio {ratio} should be ≈ 1"
        );
    }
}
