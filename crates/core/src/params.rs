//! QLEC parameters (Table 2 of the paper, plus the operational knobs the
//! paper leaves implicit).

use serde::{Deserialize, Serialize};

/// How many cluster heads each `Send-Data` decision evaluates.
///
/// QLEC's per-packet Q comparison (Eq. 19/20) scans the round's head
/// set; at 10k-node scale with Theorem 1's `k_opt` in the dozens that
/// scan dominates the round. The policy resolves, per round, to a
/// candidate budget `c`: when the head set is larger than `c`, each
/// packet only evaluates its `c` nearest *alive* heads (k-d tree
/// query); otherwise the full paper-exact scan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CandidatePolicy {
    /// Derive the budget from Theorem 1:
    /// [`crate::kopt::auto_candidate_budget`] counts the heads expected
    /// within twice the Eq. 5 coverage radius `d_c` (eight, by the
    /// volume-tiling argument — independent of the deployment side) plus
    /// a Poisson tail margin that grows as `√ln k`. For `k ≤ 8` the
    /// budget is `k`, i.e. the full scan — bit-identical to the paper
    /// path. The default.
    #[default]
    Auto,
    /// The pre-Theorem-1 heuristic budget,
    /// [`auto_candidate_heads`]`(k) = min(k, 8)`. Kept under the CLI
    /// spelling `legacy-auto` so existing experiment configurations
    /// reproduce byte-for-byte.
    LegacyAuto,
    /// Always scan every head — byte-for-byte the paper's behaviour at
    /// any scale.
    Full,
    /// A fixed budget, regardless of `k` (must be positive). `Fixed(c)`
    /// with `c ≥ k` is again the full scan.
    Fixed(usize),
}

/// The [`CandidatePolicy::LegacyAuto`] budget for a cluster count `k`.
///
/// `min(k, 8)`: within a cluster-head coverage radius `d_c` (Eq. 5 ties
/// it to the deployment side and `k`), the Q comparison is dominated by
/// the nearest few heads — the transmission-cost term `y(·,·)` of
/// Eq. 18 grows with `d²`/`d⁴`, so far heads lose the argmax except
/// under extreme energy skew. The flat cap ignores how densely heads
/// pack as `k` grows, which is why [`CandidatePolicy::Auto`] now derives
/// the budget from Theorem 1 instead; this heuristic survives for
/// reproducibility of older runs.
pub fn auto_candidate_heads(k: usize) -> usize {
    k.min(8)
}

impl CandidatePolicy {
    /// Resolve to a per-packet candidate budget for a round planned with
    /// `k` clusters; `None` means scan every head.
    pub fn budget(&self, k: usize) -> Option<usize> {
        match self {
            CandidatePolicy::Auto => Some(crate::kopt::auto_candidate_budget(k)),
            CandidatePolicy::LegacyAuto => Some(auto_candidate_heads(k)),
            CandidatePolicy::Full => None,
            CandidatePolicy::Fixed(c) => Some(*c),
        }
    }

    /// Parse the CLI spelling: `auto`, `legacy-auto`, `full`, or a
    /// positive integer.
    pub fn parse(text: &str) -> Result<CandidatePolicy, String> {
        match text {
            "auto" => Ok(CandidatePolicy::Auto),
            "legacy-auto" => Ok(CandidatePolicy::LegacyAuto),
            "full" => Ok(CandidatePolicy::Full),
            _ => match text.parse::<usize>() {
                Ok(c) if c > 0 => Ok(CandidatePolicy::Fixed(c)),
                _ => Err(format!(
                    "expected auto, legacy-auto, full or a positive integer, got `{text}`"
                )),
            },
        }
    }
}

/// How the protocol maintains its per-round spatial indexes (the node
/// grid backing Algorithm 3 and the Send-Data candidate kd-index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeadIndexMode {
    /// Rebuild both structures from scratch every round — `O(N + k log k)`
    /// of index work per round regardless of how little changed. The
    /// baseline the scale bench compares against.
    Rebuild,
    /// Maintain them incrementally: the grid absorbs the round's death
    /// diff, the head kd-index syncs against the new roster, and both
    /// fall back to a full rebuild past their churn thresholds. Produces
    /// byte-identical event streams and reports (queries are ordered by
    /// `(distance, id)`, independent of tree shape). The default.
    #[default]
    Incremental,
}

impl HeadIndexMode {
    /// Parse the CLI spelling: `rebuild` or `incremental`.
    pub fn parse(text: &str) -> Result<HeadIndexMode, String> {
        match text {
            "rebuild" => Ok(HeadIndexMode::Rebuild),
            "incremental" => Ok(HeadIndexMode::Incremental),
            _ => Err(format!("expected rebuild or incremental, got `{text}`")),
        }
    }

    /// Stable lowercase label (used in bench artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            HeadIndexMode::Rebuild => "rebuild",
            HeadIndexMode::Incremental => "incremental",
        }
    }
}

impl Serialize for HeadIndexMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for HeadIndexMode {
    /// Accepts the [`label`](HeadIndexMode::label) spellings; `Null`
    /// (i.e. the field absent from a pre-existing serialized config)
    /// deserializes to the default, [`HeadIndexMode::Incremental`].
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(HeadIndexMode::default()),
            serde::Value::Str(s) => HeadIndexMode::parse(s).map_err(serde::Error::custom),
            other => Err(serde::Error::expected("head index mode string", other)),
        }
    }
}

/// How the per-round decision-Q diagnostic store lays out its rows (see
/// `crate::qrouting::QRowStore`).
///
/// The hot routing path keeps only the per-node `V` vector; the row store
/// is a write-only record of each round's decision Q-values, so the two
/// layouts produce byte-identical event streams by construction. `Dense`
/// allocates one `QTable` row per node with one column per possible
/// target (`N + 1` with the BS) — quadratic, so it is refused above a
/// hard entry cap and survives as the small-`k` golden oracle the sparse
/// layout is differentially tested against. `Sparse` holds only the
/// ≤ C candidate heads each node actually routed through (Theorem 1
/// budget), keeping the store linear in `N` at any scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QRowsMode {
    /// One dense row per node (`N × (N + 1)` values). Small deployments
    /// only; creation fails past the entry cap.
    Dense,
    /// Per-node [`qlec_mdp::SparseQRow`] sized by the Theorem-1 candidate
    /// budget. The default.
    #[default]
    Sparse,
}

impl QRowsMode {
    /// Parse the CLI spelling: `dense` or `sparse`.
    pub fn parse(text: &str) -> Result<QRowsMode, String> {
        match text {
            "dense" => Ok(QRowsMode::Dense),
            "sparse" => Ok(QRowsMode::Sparse),
            _ => Err(format!("expected dense or sparse, got `{text}`")),
        }
    }

    /// Stable lowercase label (used in bench artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            QRowsMode::Dense => "dense",
            QRowsMode::Sparse => "sparse",
        }
    }
}

impl Serialize for QRowsMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for QRowsMode {
    /// Accepts the [`label`](QRowsMode::label) spellings; `Null` (i.e.
    /// the field absent from a pre-existing serialized config)
    /// deserializes to the default, [`QRowsMode::Sparse`].
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(QRowsMode::default()),
            serde::Value::Str(s) => QRowsMode::parse(s).map_err(serde::Error::custom),
            other => Err(serde::Error::expected("q-rows mode string", other)),
        }
    }
}

/// All tunables of the QLEC protocol.
///
/// The reward weights and discount follow Table 2. Two scaling decisions
/// the paper does not spell out are made explicit here (and exercised by
/// the ablation benches):
///
/// * residual energies `x(·)` enter the reward *normalized by the node's
///   initial energy* (`x ∈ [0, 1]`) so the reward scale is invariant to
///   the deployment's battery sizes (the power-plant dataset spans four
///   orders of magnitude of capacity);
/// * the transmission cost `y(·,·)` of Eq. 18 enters *normalized by the
///   transmission cost at a reference distance* (default: the deployment
///   side length `M`), again making the α/β weights scale-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QlecParams {
    /// Discount rate γ (Table 2: 0.95).
    pub gamma: f64,
    /// Weight α₁ on the residual-energy sum in Eq. 17/19 (Table 2: 0.05).
    pub alpha1: f64,
    /// Weight α₂ on the transmission cost in Eq. 17/19 (Table 2: 1.05).
    pub alpha2: f64,
    /// Weight β₁ on the sender's residual energy in Eq. 20 (Table 2: 0.05).
    pub beta1: f64,
    /// Weight β₂ on the transmission cost in Eq. 20 (Table 2: 1.05).
    pub beta2: f64,
    /// The constant transmission punishment `g` of Eq. 17–20 ("a constant
    /// punishment when a node tries to send a packet").
    pub g: f64,
    /// The direct-to-BS penalty `l` of Eq. 19 ("set to be an arbitrarily
    /// large number") — must dominate the rest of the reward scale.
    pub l: f64,
    /// Normalized residual energy attributed to the base station in
    /// Eq. 19's `x(h_BS)` (mains-powered: 1.0).
    pub x_bs: f64,
    /// EWMA weight for the ACK-ratio link-probability estimator (§4.2 /
    /// \[2\]: "the ratio between the successfully transmitted packets and
    /// all the packets sent … recently" — the EWMA is the standard
    /// "recently" operator).
    pub link_ewma_weight: f64,
    /// Prior link probability before any ACK evidence (optimistic start
    /// so unexplored heads are tried).
    pub link_prior: f64,
    /// Total planned rounds `R` (drives the Eq. 2 average-energy estimate
    /// and the Eq. 4 energy-threshold decay).
    pub total_rounds: u32,
    /// Control-message size for the Algorithm 3 HELLO broadcast, bits.
    pub hello_bits: u64,
    /// Whether HELLO broadcasts draw real energy (head transmit at range
    /// `d_c`, receivers pay reception).
    pub charge_control_traffic: bool,
    /// Explicit cluster count; `None` computes Theorem 1's `k_opt` from
    /// the deployment at the first round.
    pub k_override: Option<usize>,
    /// `Send-Data` candidate pruning policy (see [`CandidatePolicy`]).
    /// The default [`CandidatePolicy::Auto`] derives the per-round budget
    /// from Theorem 1 (full scan for `k ≤ 8`, `8 + O(√ln k)` beyond),
    /// which keeps runs with `k ≤ 8` byte-identical to the paper-exact
    /// full scan while making 100k-node deployments practical;
    /// [`CandidatePolicy::Full`] forces the full scan at any scale.
    pub candidates: CandidatePolicy,
    /// Spatial-index maintenance strategy (see [`HeadIndexMode`]). Both
    /// modes produce identical results; `Rebuild` exists as the
    /// benchmark baseline. Deserialization of pre-existing configs
    /// (field absent) defaults to [`HeadIndexMode::Incremental`].
    pub head_index: HeadIndexMode,
    /// Layout of the per-round decision-Q diagnostic store (see
    /// [`QRowsMode`]). Both layouts record the same values and leave the
    /// event stream untouched; `Dense` is refused above its entry cap.
    /// Deserialization of pre-existing configs (field absent) defaults to
    /// [`QRowsMode::Sparse`].
    pub q_rows: QRowsMode,
}

impl QlecParams {
    /// Table 2 / §5.1 values with `R = 20`.
    pub fn paper() -> Self {
        QlecParams {
            gamma: 0.95,
            alpha1: 0.05,
            alpha2: 1.05,
            beta1: 0.05,
            beta2: 1.05,
            g: 0.1,
            l: 10.0,
            x_bs: 1.0,
            link_ewma_weight: 0.15,
            link_prior: 1.0,
            total_rounds: 20,
            hello_bits: 200,
            charge_control_traffic: true,
            k_override: None,
            candidates: CandidatePolicy::Auto,
            head_index: HeadIndexMode::Incremental,
            q_rows: QRowsMode::Sparse,
        }
    }

    /// Paper parameters with a fixed cluster count (the Fig. 3 runs use
    /// the §5.1 value `k_opt ≈ 5` explicitly).
    pub fn paper_with_k(k: usize) -> Self {
        QlecParams {
            k_override: Some(k),
            ..Self::paper()
        }
    }

    /// Validate ranges; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0,1), got {}", self.gamma));
        }
        for (name, v) in [
            ("alpha1", self.alpha1),
            ("alpha2", self.alpha2),
            ("beta1", self.beta1),
            ("beta2", self.beta2),
            ("g", self.g),
            ("l", self.l),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative and finite, got {v}"));
            }
        }
        if !(0.0..=1.0).contains(&self.x_bs) {
            return Err(format!("x_bs must be in [0,1], got {}", self.x_bs));
        }
        if !(0.0 < self.link_ewma_weight && self.link_ewma_weight <= 1.0) {
            return Err(format!(
                "link_ewma_weight must be in (0,1], got {}",
                self.link_ewma_weight
            ));
        }
        if !(0.0..=1.0).contains(&self.link_prior) {
            return Err(format!(
                "link_prior must be in [0,1], got {}",
                self.link_prior
            ));
        }
        if self.total_rounds == 0 {
            return Err("total_rounds must be positive".into());
        }
        if let Some(k) = self.k_override {
            if k == 0 {
                return Err("k_override must be positive".into());
            }
        }
        if self.candidates == CandidatePolicy::Fixed(0) {
            return Err("candidate budget must be positive".into());
        }
        Ok(())
    }
}

impl Default for QlecParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table2() {
        let p = QlecParams::paper();
        assert_eq!(p.gamma, 0.95);
        assert_eq!(p.alpha1, 0.05);
        assert_eq!(p.alpha2, 1.05);
        assert_eq!(p.beta1, 0.05);
        assert_eq!(p.beta2, 1.05);
        assert_eq!(p.total_rounds, 20);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn with_k_sets_override() {
        let p = QlecParams::paper_with_k(5);
        assert_eq!(p.k_override, Some(5));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn candidate_policy_resolves_and_parses() {
        // Both auto flavours are inert (budget ≥ any possible head
        // count) up to k = 8 — the bit-identical lock.
        for k in 1..=8 {
            assert_eq!(CandidatePolicy::Auto.budget(k), Some(k));
            assert_eq!(CandidatePolicy::LegacyAuto.budget(k), Some(k));
        }
        // Past that they diverge: legacy pins 8, Theorem 1 adds the
        // Poisson tail margin.
        assert_eq!(CandidatePolicy::LegacyAuto.budget(40), Some(8));
        assert_eq!(
            CandidatePolicy::Auto.budget(40),
            Some(crate::kopt::auto_candidate_budget(40))
        );
        assert_eq!(CandidatePolicy::Auto.budget(40), Some(16));
        assert_eq!(CandidatePolicy::Full.budget(40), None);
        assert_eq!(CandidatePolicy::Fixed(3).budget(40), Some(3));
        assert_eq!(QlecParams::paper().candidates, CandidatePolicy::Auto);

        assert_eq!(
            CandidatePolicy::parse("auto").unwrap(),
            CandidatePolicy::Auto
        );
        assert_eq!(
            CandidatePolicy::parse("legacy-auto").unwrap(),
            CandidatePolicy::LegacyAuto
        );
        assert_eq!(
            CandidatePolicy::parse("full").unwrap(),
            CandidatePolicy::Full
        );
        assert_eq!(
            CandidatePolicy::parse("12").unwrap(),
            CandidatePolicy::Fixed(12)
        );
        for bad in ["", "0", "-3", "Auto", "8.5", "legacyauto"] {
            assert!(
                CandidatePolicy::parse(bad).is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn head_index_mode_parses_and_defaults() {
        assert_eq!(
            HeadIndexMode::parse("rebuild").unwrap(),
            HeadIndexMode::Rebuild
        );
        assert_eq!(
            HeadIndexMode::parse("incremental").unwrap(),
            HeadIndexMode::Incremental
        );
        assert!(HeadIndexMode::parse("Rebuild").is_err());
        assert!(HeadIndexMode::parse("").is_err());
        assert_eq!(HeadIndexMode::default(), HeadIndexMode::Incremental);
        assert_eq!(HeadIndexMode::Rebuild.label(), "rebuild");
        assert_eq!(QlecParams::paper().head_index, HeadIndexMode::Incremental);
        // Pre-existing serialized configs (no head_index field) still load.
        let mut v = serde_json::to_value(&QlecParams::paper()).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "head_index");
        } else {
            panic!("params must serialize to an object");
        }
        let p: QlecParams = serde_json::from_value(v).unwrap();
        assert_eq!(p.head_index, HeadIndexMode::Incremental);
        // And the explicit spellings round-trip.
        for mode in [HeadIndexMode::Rebuild, HeadIndexMode::Incremental] {
            let v = serde_json::to_value(&mode).unwrap();
            assert_eq!(serde_json::from_value::<HeadIndexMode>(v).unwrap(), mode);
        }
    }

    #[test]
    fn q_rows_mode_parses_and_defaults() {
        assert_eq!(QRowsMode::parse("dense").unwrap(), QRowsMode::Dense);
        assert_eq!(QRowsMode::parse("sparse").unwrap(), QRowsMode::Sparse);
        assert!(QRowsMode::parse("Dense").is_err());
        assert!(QRowsMode::parse("").is_err());
        assert_eq!(QRowsMode::default(), QRowsMode::Sparse);
        assert_eq!(QRowsMode::Dense.label(), "dense");
        assert_eq!(QlecParams::paper().q_rows, QRowsMode::Sparse);
        // Pre-existing serialized configs (no q_rows field) still load.
        let mut v = serde_json::to_value(&QlecParams::paper()).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "q_rows");
        } else {
            panic!("params must serialize to an object");
        }
        let p: QlecParams = serde_json::from_value(v).unwrap();
        assert_eq!(p.q_rows, QRowsMode::Sparse);
        // And the explicit spellings round-trip.
        for mode in [QRowsMode::Dense, QRowsMode::Sparse] {
            let v = serde_json::to_value(&mode).unwrap();
            assert_eq!(serde_json::from_value::<QRowsMode>(v).unwrap(), mode);
        }
    }

    #[test]
    fn validation_catches_bad_values() {
        for bad in [
            QlecParams {
                gamma: 1.0,
                ..QlecParams::paper()
            },
            QlecParams {
                alpha2: -1.0,
                ..QlecParams::paper()
            },
            QlecParams {
                link_ewma_weight: 0.0,
                ..QlecParams::paper()
            },
            QlecParams {
                link_prior: 1.5,
                ..QlecParams::paper()
            },
            QlecParams {
                total_rounds: 0,
                ..QlecParams::paper()
            },
            QlecParams {
                k_override: Some(0),
                ..QlecParams::paper()
            },
            QlecParams {
                x_bs: 2.0,
                ..QlecParams::paper()
            },
            QlecParams {
                candidates: CandidatePolicy::Fixed(0),
                ..QlecParams::paper()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should fail validation");
        }
    }
}
