//! The optimal cluster number in a 3-D network (Lemma 1 + Theorem 1) and
//! the cluster coverage radius (Eq. 5).
//!
//! Lemma 1: assuming members are uniform in a ball of radius `d_c` around
//! their head, `E[d²_toCH] = (4π/5)·(3/4π)^{5/3}·M²/k^{2/3}`.
//!
//! Theorem 1: substituting Lemma 1 into the per-round dissipation Eq. 6
//! and zeroing the derivative in `k`:
//!
//! ```text
//! k_opt = (3/4π)·(8πN·ε_fs / (15·ε_mp))^{3/5} · M^{6/5} / d_toBS^{12/5}
//! ```
//!
//! Eq. 5: choosing `k` heads, each cluster covers a ball of radius
//! `d_c = (3/(4πk))^{1/3}·M` (so the `k` balls tile the cube's volume).
//!
//! **Reproduction note.** With the paper's constants (`N = 100`,
//! `M = 200`, BS at the cube centre so `d_toBS ≈ 0.4803·M ≈ 96`), the
//! closed form yields `k_opt ≈ 11`, whereas §5.1 reports "approximately
//! 5". The paper does not state which `d_toBS` it plugged in; a corner
//! base station (`d_toBS ≈ 0.48·√3·M·… ≈ 153`) gives `k_opt ≈ 3.6`, and
//! `d_toBS ≈ 133` reproduces 5 exactly. The `kopt_table` experiment
//! binary prints the whole curve plus the Monte-Carlo minimum of Eq. 6 so
//! the discrepancy is auditable; the Fig. 3 experiments use the paper's
//! stated `k = 5`.

use qlec_radio::RadioModel;

/// Lemma 1: expected squared member→head distance for `k` clusters in an
/// `m`-cube.
pub fn expected_d2_to_ch(m: f64, k: f64) -> f64 {
    assert!(m >= 0.0 && k > 0.0, "need m >= 0 and k > 0");
    let c =
        (4.0 * std::f64::consts::PI / 5.0) * (3.0 / (4.0 * std::f64::consts::PI)).powf(5.0 / 3.0);
    c * m * m / k.powf(2.0 / 3.0)
}

/// Eq. 5: cluster coverage radius `d_c = (3/(4πk))^{1/3}·M`.
pub fn coverage_radius(m: f64, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    (3.0 / (4.0 * std::f64::consts::PI * k as f64)).cbrt() * m
}

/// Theorem-1-derived Send-Data candidate budget: how many nearest heads a
/// member must consider so the true Q-routing argmax is almost surely
/// among them.
///
/// Under Eq. 5 the `k` coverage balls of radius `d_c` tile the cube, so a
/// ball of radius `2·d_c` around any member holds `(2d_c/d_c)³ = 8`
/// expected heads — independent of `M` and `k` (the deployment side
/// cancels out of the ratio). Heads are close to a Poisson scatter, so we
/// pad the mean `λ = 8` with a `√(2λ·ln k)` tail margin: the probability
/// that more than `8 + √(16·ln k)` heads fall inside the ball is `o(1/k)`
/// by the Poisson Chernoff bound, i.e. the budget covers the `2·d_c` ball
/// even in the unluckiest of the `k` clusters. For `k ≤ 8` the budget is
/// `k` (a full scan), which is what locks bit-identical behavior against
/// the no-pruning path at small head counts.
///
/// ```
/// use qlec_core::kopt::auto_candidate_budget;
/// assert_eq!(auto_candidate_budget(5), 5);   // k ≤ 8: full scan
/// assert_eq!(auto_candidate_budget(50), 16);
/// assert_eq!(auto_candidate_budget(5000), 20);
/// ```
pub fn auto_candidate_budget(k: usize) -> usize {
    const LAMBDA: f64 = 8.0; // expected heads within 2·d_c (Eq. 5 tiling)
    if k <= LAMBDA as usize {
        return k;
    }
    let margin = (2.0 * LAMBDA * (k as f64).ln()).sqrt();
    ((LAMBDA + margin).ceil() as usize).min(k)
}

/// Theorem 1: the real-valued optimal cluster number.
///
/// ```
/// use qlec_core::kopt::kopt_real;
/// use qlec_radio::RadioModel;
/// // The §5.1 deployment with the centre-BS mean distance.
/// let k = kopt_real(100, 200.0, 96.06, &RadioModel::paper());
/// assert!((k - 11.15).abs() < 0.05);
/// ```
pub fn kopt_real(n: usize, m: f64, d_to_bs: f64, radio: &RadioModel) -> f64 {
    assert!(n > 0, "network must have nodes");
    assert!(m > 0.0 && d_to_bs > 0.0, "need positive m and d_toBS");
    let ratio = 8.0 * std::f64::consts::PI * n as f64 * radio.eps_fs / (15.0 * radio.eps_mp);
    (3.0 / (4.0 * std::f64::consts::PI)) * ratio.powf(3.0 / 5.0) * m.powf(6.0 / 5.0)
        / d_to_bs.powf(12.0 / 5.0)
}

/// Theorem 1 rounded to a usable head count (at least 1, at most `n`).
pub fn kopt(n: usize, m: f64, d_to_bs: f64, radio: &RadioModel) -> usize {
    (kopt_real(n, m, d_to_bs, radio).round() as usize).clamp(1, n)
}

/// Eq. 6 with Lemma 1 substituted: expected per-round network dissipation
/// as a function of the (real-valued) cluster count. Theorem 1's `k_opt`
/// minimizes this.
pub fn round_energy_of_k(
    bits: u64,
    n: usize,
    k: f64,
    m: f64,
    d_to_bs: f64,
    radio: &RadioModel,
) -> f64 {
    radio.round_energy_eq6(bits, n, 0, d_to_bs, expected_d2_to_ch(m, k))
        + bits as f64 * k * radio.eps_mp * d_to_bs.powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::sample::MEAN_DIST_TO_CENTER_UNIT_CUBE;

    fn radio() -> RadioModel {
        RadioModel::paper()
    }

    #[test]
    fn lemma1_is_consistent_with_ball_moment() {
        // E[d²] in a ball of radius d_c is 3·d_c²/5; Lemma 1 must agree
        // when d_c comes from Eq. 5.
        for &k in &[1usize, 5, 17, 272] {
            let m = 200.0;
            let dc = coverage_radius(m, k);
            let direct = 3.0 * dc * dc / 5.0;
            let lemma = expected_d2_to_ch(m, k as f64);
            assert!(
                (direct - lemma).abs() / direct < 1e-12,
                "k={k}: ball moment {direct} vs lemma {lemma}"
            );
        }
    }

    #[test]
    fn eq5_balls_tile_the_cube() {
        // k balls of radius d_c have total volume k·(4/3)π·d_c³ = M³.
        let m = 200.0;
        for &k in &[1usize, 5, 100] {
            let dc = coverage_radius(m, k);
            let total = k as f64 * (4.0 / 3.0) * std::f64::consts::PI * dc.powi(3);
            assert!((total - m.powi(3)).abs() / m.powi(3) < 1e-12);
        }
    }

    #[test]
    fn coverage_radius_shrinks_with_k() {
        let m = 200.0;
        let mut prev = f64::INFINITY;
        for k in 1..50 {
            let dc = coverage_radius(m, k);
            assert!(dc < prev);
            prev = dc;
        }
    }

    #[test]
    fn theorem1_minimizes_eq6() {
        // The analytic k_opt must be the minimum of the Eq.6+Lemma1 curve:
        // energy at k_opt is below energy at 0.8·k_opt and 1.25·k_opt.
        let (n, m) = (100, 200.0);
        let d = MEAN_DIST_TO_CENTER_UNIT_CUBE * m;
        let k = kopt_real(n, m, d, &radio());
        let e_opt = round_energy_of_k(2000, n, k, m, d, &radio());
        let e_lo = round_energy_of_k(2000, n, 0.8 * k, m, d, &radio());
        let e_hi = round_energy_of_k(2000, n, 1.25 * k, m, d, &radio());
        assert!(e_opt < e_lo, "E(k_opt) {e_opt} !< E(0.8k) {e_lo}");
        assert!(e_opt < e_hi, "E(k_opt) {e_opt} !< E(1.25k) {e_hi}");
        // And a fine scan around k_opt finds no lower value.
        let scan_min = (1..=400)
            .map(|i| i as f64 * 0.1)
            .map(|kk| round_energy_of_k(2000, n, kk, m, d, &radio()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            e_opt <= scan_min * 1.001,
            "scan found lower energy than k_opt"
        );
    }

    #[test]
    fn paper_setting_value_documented() {
        // The reproduction-note discrepancy, pinned: centre-BS d_toBS
        // gives ≈ 11; the paper's stated "≈ 5" corresponds to
        // d_toBS ≈ 133.
        let (n, m) = (100, 200.0);
        let center = kopt_real(n, m, MEAN_DIST_TO_CENTER_UNIT_CUBE * m, &radio());
        assert!(
            (10.0..13.0).contains(&center),
            "centre-BS k_opt = {center}, expected ≈ 11"
        );
        let five = kopt_real(n, m, 133.0, &radio());
        assert!((4.5..5.6).contains(&five), "d=133 gives k_opt = {five}");
    }

    #[test]
    fn kopt_rounding_clamps() {
        let r = radio();
        // Tiny network: k_opt can round to 0 → clamped to 1.
        assert!(kopt(1, 10.0, 1000.0, &r) >= 1);
        // k never exceeds n.
        assert!(kopt(3, 10_000.0, 1.0, &r) <= 3);
    }

    #[test]
    fn kopt_scales_as_theorem_says() {
        let r = radio();
        let base = kopt_real(100, 200.0, 96.0, &r);
        // N^{3/5} scaling.
        let n2 = kopt_real(3200, 200.0, 96.0, &r);
        assert!((n2 / base - 32f64.powf(0.6)).abs() < 1e-9);
        // M^{6/5} scaling.
        let m2 = kopt_real(100, 400.0, 96.0, &r);
        assert!((m2 / base - 2f64.powf(1.2)).abs() < 1e-9);
        // d^{-12/5} scaling.
        let d2 = kopt_real(100, 200.0, 192.0, &r);
        assert!((d2 / base - 2f64.powf(-2.4)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_k_coverage_rejected() {
        coverage_radius(200.0, 0);
    }

    #[test]
    fn candidate_budget_full_scan_at_small_k() {
        assert_eq!(auto_candidate_budget(0), 0);
        for k in 1..=8 {
            assert_eq!(auto_candidate_budget(k), k, "k ≤ 8 must scan all heads");
        }
    }

    #[test]
    fn candidate_budget_grows_slowly_and_never_exceeds_k() {
        let mut prev = 0;
        for &k in &[9usize, 16, 50, 272, 1000, 5000, 100_000] {
            let c = auto_candidate_budget(k);
            assert!(c >= prev, "budget must be monotone in k");
            assert!(c <= k);
            assert!(c >= 9, "above the full-scan regime the budget exceeds λ");
            assert!(c <= 32, "O(√log k) growth stays small, got {c} at k={k}");
            prev = c;
        }
        // The values the docs promise.
        assert_eq!(auto_candidate_budget(50), 16);
        assert_eq!(auto_candidate_budget(5000), 20);
    }
}
