//! The full QLEC protocol (Algorithm 1), as a [`qlec_net::Protocol`].
//!
//! Per round:
//!
//! 1. compute `k_opt` (Theorem 1, cached; or the explicit `k` override)
//!    and the coverage radius `d_c` (Eq. 5) — Algorithm 1 lines 1–2;
//! 2. run the improved-DEEC selection with HELLO redundancy reduction —
//!    lines 5–9 ([`crate::deec_improved`]);
//! 3. route every member packet by the Q-learning `Send-Data` rule —
//!    lines 10–12 ([`crate::qrouting`]);
//! 4. heads forward their fused aggregates directly to the BS and update
//!    their own V values — lines 13–15.

use crate::deec_improved::{select_heads_from_roster, SelectionFeatures, SelectionOutcome};
use crate::kopt;
use crate::params::{CandidatePolicy, HeadIndexMode, QRowsMode, QlecParams};
use crate::qrouting::{ActionConst, QRouter, QRowStore};
use qlec_geom::{IncrementalKdIndex, UniformGrid, Vec3};
use qlec_net::protocol::{nearest_head, PlanScratch, RoutePlanner};
use qlec_net::{Network, NodeId, Protocol, Target};
use qlec_obs::{Event, ObserverSet, Phase};
use rand::RngCore;
use std::collections::HashMap;

/// QLEC with its feature switchboard (all features on = the paper's
/// algorithm; see [`crate::ablation`] for the toggled variants).
pub struct QlecProtocol {
    params: QlecParams,
    features: SelectionFeatures,
    /// When false, members fall back to nearest-head routing (plain-DEEC
    /// behaviour) instead of the Q-learning rule — the routing ablation.
    q_routing: bool,
    /// Lazily computed per deployment.
    k: Option<usize>,
    grid: Option<UniformGrid>,
    router: Option<QRouter>,
    /// Selection diagnostics of the most recent round.
    pub last_selection: Option<SelectionOutcome>,
    /// Targets that NACKed the packet currently being sent, per source
    /// (cleared by `on_packet_start`; retries avoid them).
    failed_this_packet: std::collections::HashMap<NodeId, Vec<Target>>,
    /// Fraction of a member packet that rides the head's fused BS
    /// transmission (the data-fusion compression ratio, Table 2: 0.5);
    /// scales the head-update transmission cost — see
    /// [`QRouter::head_update`].
    aggregate_share: f64,
    name: String,
    /// Structured-event observer (inert by default). Emits
    /// [`Event::QUpdate`] per V change, [`Event::HeadWithdrawn`] from the
    /// redundancy reduction, and a per-round [`Phase::QRouting`] span.
    obs: ObserverSet,
    /// Round currently in flight (protocol hooks that lack a round
    /// argument stamp their events with it).
    current_round: u32,
    /// Wall time spent in `Send-Data` this round (accumulated across
    /// `choose_target` calls, flushed as one span at the round end).
    qrouting_ns: u64,
    /// Incremental k-nearest index over head positions, maintained per
    /// round by rebuild or roster sync according to
    /// [`QlecParams::head_index`]. Only queried while
    /// `candidates_active`.
    head_index: IncrementalKdIndex,
    /// Whether this round's candidate budget is binding — i.e.
    /// `params.candidates` resolved to a budget smaller than the head
    /// set and `head_index` was brought in line with the roster.
    candidates_active: bool,
    /// The resolved per-packet candidate budget for the current round
    /// (meaningless while `candidates_active` is false).
    candidate_budget: usize,
    /// Which node ids the incremental grid still carries; the per-round
    /// death diff removes the newly dead (incremental mode only).
    alive_mask: Vec<bool>,
    /// Election-phase alive roster: exactly the alive node ids, ascending.
    /// `Incremental` mode maintains it by the same per-round diff that
    /// feeds the grid (deaths retained out, blackout revivals re-merged);
    /// `Rebuild` re-scans every round (the benchmark baseline). Algorithm
    /// 2+3 head selection walks this roster instead of re-scanning all
    /// `N` deployment slots.
    alive_roster: Vec<NodeId>,
    /// Per-node alive flag backing `alive_roster` diffs. Unlike
    /// `alive_mask` (one-way, mirroring the grid's remove-only
    /// maintenance) this tracks revivals too, so the roster always equals
    /// the true alive set.
    roster_alive: Vec<bool>,
    /// Per-round decision-Q diagnostic store (see [`QRowStore`]); layout
    /// per [`QlecParams::q_rows`]. Write-only on the decision path.
    q_rows_store: Option<QRowStore>,
    /// Reused scratch for the per-packet k-nearest query (tree window).
    knn_buf: Vec<(u32, f64)>,
    /// Reused scratch receiving the `(id, dist²)` candidate ranking.
    knn_out: Vec<(u32, f64)>,
    /// Reused scratch holding the pruned candidate head set.
    candidate_buf: Vec<NodeId>,
    /// Per-round cache of the k-nearest head ranking per source node,
    /// used by merge-time retargets when `threads > 1`. The ranking
    /// depends only on the source position and `head_index` — both
    /// frozen between `on_round_start` calls — so the first retarget of
    /// a node this round pays the tree walk and later ones reuse it; the
    /// alive filter stays live either way, so the candidate set (and
    /// every downstream byte) matches the uncached query exactly.
    retarget_knn: HashMap<u32, Vec<(u32, f64)>>,
    /// Reused per-action constant buffer for the cached `Send-Data`
    /// kernel ([`QRouter::send_data_excluding_cached`], `threads > 1`).
    action_buf: Vec<ActionConst>,
    /// Resolved engine thread count (see [`Protocol::configure_threads`]);
    /// sizes the batched head V refreshes and selects the cached
    /// `Send-Data` kernel (`threads > 1`) over the reference one.
    threads: usize,
}

/// Fluent configuration for [`QlecProtocol`] — the one way to assemble a
/// QLEC variant.
///
/// Replaces the former constructor zoo (`paper()`, `paper_with_k()`,
/// `with_features()`, `with_observer()`, `with_aggregate_share()`,
/// `named()` — deprecated for two releases and now removed). Defaults are
/// the paper's Table 2 configuration with every selection feature enabled
/// and Theorem 1's derived `k_opt`:
///
/// ```
/// use qlec_core::QlecProtocol;
/// let protocol = QlecProtocol::builder().k(5).named("qlec-k5").build();
/// ```
#[derive(Clone)]
pub struct QlecBuilder {
    params: QlecParams,
    features: SelectionFeatures,
    q_routing: bool,
    aggregate_share: f64,
    name: String,
    obs: ObserverSet,
}

impl Default for QlecBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl QlecBuilder {
    /// Start from the paper's Table 2 parameters (all features on,
    /// Q-routing on, derived `k_opt`, aggregate share 0.5).
    pub fn new() -> Self {
        QlecBuilder {
            params: QlecParams::paper(),
            features: SelectionFeatures::default(),
            q_routing: true,
            aggregate_share: 0.5,
            name: "qlec".to_string(),
            obs: ObserverSet::new(),
        }
    }

    /// Replace the full parameter set (validated at [`Self::build`]).
    pub fn params(mut self, params: QlecParams) -> Self {
        self.params = params;
        self
    }

    /// Fix the cluster count instead of deriving Theorem 1's `k_opt`
    /// (the Fig. 3 configuration uses the §5.1 `k = 5`).
    pub fn k(mut self, k: usize) -> Self {
        self.params.k_override = Some(k);
        self
    }

    /// Set the planned horizon `R` (drives the Eq. 2/Eq. 4 estimates).
    pub fn total_rounds(mut self, rounds: u32) -> Self {
        self.params.total_rounds = rounds;
        self
    }

    /// Set the `Send-Data` candidate-pruning policy. The default
    /// [`CandidatePolicy::Auto`] derives the per-round budget from
    /// Theorem 1 (full scan for `k ≤ 8`); see [`QlecParams::candidates`].
    pub fn candidates(mut self, policy: CandidatePolicy) -> Self {
        self.params.candidates = policy;
        self
    }

    /// Set the spatial-index maintenance strategy. The default
    /// [`HeadIndexMode::Incremental`] absorbs per-round diffs;
    /// [`HeadIndexMode::Rebuild`] rebuilds from scratch every round (the
    /// benchmark baseline). Results are identical either way.
    pub fn head_index(mut self, mode: HeadIndexMode) -> Self {
        self.params.head_index = mode;
        self
    }

    /// Shorthand for [`Self::candidates`]`(CandidatePolicy::Fixed(c))`:
    /// prune each packet's `Send-Data` scan to the `c` nearest alive
    /// heads regardless of `k`.
    pub fn candidate_heads(mut self, c: usize) -> Self {
        self.params.candidates = CandidatePolicy::Fixed(c);
        self
    }

    /// Override the head-selection feature switchboard (ablations).
    pub fn features(mut self, features: SelectionFeatures) -> Self {
        self.features = features;
        self
    }

    /// Enable or disable the Q-learning `Send-Data` routing rule; when
    /// off, members fall back to nearest-head routing (plain-DEEC
    /// behaviour) — the routing ablation.
    pub fn q_routing(mut self, enabled: bool) -> Self {
        self.q_routing = enabled;
        self
    }

    /// Override the data-fusion share used in the head V update (set it
    /// to the simulator's `compression` when running with a non-default
    /// ratio).
    pub fn aggregate_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share must be in [0,1]");
        self.aggregate_share = share;
        self
    }

    /// Set the decision-Q row-store layout. The default
    /// [`QRowsMode::Sparse`] scales to any deployment;
    /// [`QRowsMode::Dense`] is the small-deployment golden oracle and
    /// makes the first round panic past the dense entry cap (CLI callers
    /// pre-validate with [`crate::qrouting::MAX_DENSE_Q_ENTRIES`]).
    /// Either way the store is write-only on the decision path, so runs
    /// are byte-identical across layouts.
    pub fn q_rows(mut self, mode: QRowsMode) -> Self {
        self.params.q_rows = mode;
        self
    }

    /// Override the displayed protocol name (ablation labelling).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attach an observer set. Pass a clone of the set given to
    /// [`qlec_net::Simulator::observed`] so protocol-level events (Q
    /// updates, HELLO withdrawals, Q-routing timing) land in the same
    /// sinks as the simulator's.
    pub fn observer(mut self, obs: ObserverSet) -> Self {
        self.obs = obs;
        self
    }

    /// Validate the parameters and assemble the protocol.
    ///
    /// # Panics
    ///
    /// If the parameter set fails [`QlecParams::validate`].
    pub fn build(self) -> QlecProtocol {
        self.params.validate().expect("invalid QlecParams");
        QlecProtocol {
            params: self.params,
            features: self.features,
            q_routing: self.q_routing,
            k: self.params.k_override,
            grid: None,
            router: None,
            last_selection: None,
            failed_this_packet: std::collections::HashMap::new(),
            aggregate_share: self.aggregate_share,
            name: self.name,
            obs: self.obs,
            current_round: 0,
            qrouting_ns: 0,
            head_index: IncrementalKdIndex::new(),
            candidates_active: false,
            candidate_budget: 0,
            alive_mask: Vec::new(),
            alive_roster: Vec::new(),
            roster_alive: Vec::new(),
            q_rows_store: None,
            knn_buf: Vec::new(),
            knn_out: Vec::new(),
            candidate_buf: Vec::new(),
            retarget_knn: HashMap::new(),
            action_buf: Vec::new(),
            threads: 1,
        }
    }
}

impl QlecProtocol {
    /// Start configuring a QLEC variant — see [`QlecBuilder`].
    pub fn builder() -> QlecBuilder {
        QlecBuilder::new()
    }

    /// The paper's QLEC with the given parameters.
    pub fn new(params: QlecParams) -> Self {
        QlecBuilder::new().params(params).build()
    }

    /// In-crate observer attachment (wrappers like
    /// [`crate::multihop::MultiHopQlec`] forward to this without exposing
    /// a public setter).
    pub(crate) fn set_observer(&mut self, obs: ObserverSet) {
        self.obs = obs;
    }

    /// In-crate feature override (see [`Self::set_observer`]).
    pub(crate) fn set_features(&mut self, features: SelectionFeatures, q_routing: bool) {
        self.features = features;
        self.q_routing = q_routing;
    }

    /// In-crate rename (see [`Self::set_observer`]).
    pub(crate) fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The cluster count in use (`None` until the first round when it is
    /// derived from the deployment).
    pub fn k(&self) -> Option<usize> {
        self.k
    }

    /// The Q-router state (populated after the first round).
    pub fn router(&self) -> Option<&QRouter> {
        self.router.as_ref()
    }

    /// The decision-Q row store (populated after the first round).
    pub fn q_rows(&self) -> Option<&QRowStore> {
        self.q_rows_store.as_ref()
    }

    /// Total elementary Q updates so far — the paper's `X`.
    pub fn q_updates(&self) -> u64 {
        self.router.as_ref().map_or(0, |r| r.updates.total())
    }

    fn ensure_initialized(&mut self, net: &Network) {
        if self.k.is_none() {
            // Algorithm 1 line 1: Theorem 1 with d_toBS approximated by
            // the mean node→BS distance.
            let k = kopt::kopt(
                net.len(),
                net.side_length(),
                net.mean_dist_to_bs().max(1e-9),
                &net.radio,
            );
            self.k = Some(k);
        }
        if self.router.is_none() {
            self.router = Some(QRouter::new(net, self.params));
        }
        if self.q_rows_store.is_none() {
            let k = self.k.expect("set above");
            // A row must hold one round's distinct targets: the pruned
            // candidate window (budget + the query's death padding) or
            // the full head set when pruning is off, plus the BS.
            let budget = match self.params.candidates.budget(k) {
                Some(c) => c + 9,
                None => k + 9,
            };
            let store = QRowStore::new(net.len(), budget, self.params.q_rows)
                .unwrap_or_else(|e| panic!("{e}"));
            self.q_rows_store = Some(store);
        }
    }

    /// Bring the Algorithm 3 node grid in line with the network at the
    /// top of a round. `Rebuild` pays `O(N)` every round (over every
    /// deployment position, dead or not — matching the grid a fresh
    /// build would produce); `Incremental` builds once and then only
    /// removes the nodes that died since the last round. Queries behave
    /// identically either way: every grid consumer filters dead nodes
    /// out-of-band (`is_elected` / `is_alive`), so whether a dead node's
    /// entry is still present is unobservable.
    /// Also brings `alive_roster` in line with the network (both modes),
    /// folding the roster diff into the same per-node pass as the grid's
    /// death diff so the round pays one alive scan, not one per consumer.
    fn maintain_grid(&mut self, net: &Network) {
        match self.params.head_index {
            HeadIndexMode::Rebuild => {
                self.grid = Some(UniformGrid::build(net.iter_positions(), 8));
                // Baseline mode: fresh roster scan every round.
                self.alive_roster.clear();
                self.alive_roster.extend(net.alive_ids());
            }
            HeadIndexMode::Incremental => {
                if self.grid.is_none() {
                    self.grid = Some(UniformGrid::build(net.iter_positions(), 8));
                    self.alive_mask = vec![true; net.len()];
                    self.roster_alive = vec![true; net.len()];
                    self.alive_roster = net.ids().collect();
                }
                let grid = self.grid.as_mut().expect("built above");
                let mut deaths = 0usize;
                let mut revivals = 0usize;
                for i in 0..net.len() {
                    let now = net.node(NodeId(i as u32)).is_alive();
                    if self.alive_mask[i] && !now {
                        grid.remove(i as u32);
                        self.alive_mask[i] = false;
                    }
                    if self.roster_alive[i] != now {
                        self.roster_alive[i] = now;
                        if now {
                            revivals += 1;
                        } else {
                            deaths += 1;
                        }
                    }
                }
                // Deaths compact in place; a (rare) blackout revival
                // re-merges by rebuilding from the flags — both keep the
                // roster exactly the ascending alive set.
                if revivals > 0 {
                    self.alive_roster.clear();
                    self.alive_roster.extend(
                        self.roster_alive
                            .iter()
                            .enumerate()
                            .filter(|(_, &a)| a)
                            .map(|(i, _)| NodeId(i as u32)),
                    );
                } else if deaths > 0 {
                    let flags = &self.roster_alive;
                    self.alive_roster.retain(|id| flags[id.0 as usize]);
                }
            }
        }
    }
}

impl Protocol for QlecProtocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.ensure_initialized(net);
        self.current_round = round;
        self.qrouting_ns = 0;
        if let Some(store) = self.q_rows_store.as_mut() {
            store.begin_round(round);
        }
        let k = self.k.expect("initialized above");
        // Index maintenance, part 1: the Algorithm 3 node grid. Timed
        // into the round's IndexMaintenance span (which nests inside the
        // simulator's Election span — this all happens in
        // `on_round_start`).
        let grid_start_ns = self.obs.now_ns();
        self.maintain_grid(net);
        let mut index_ns = self.obs.now_ns().saturating_sub(grid_start_ns);
        let grid = self.grid.as_ref().expect("maintained above");
        let outcome = select_heads_from_roster(
            net,
            grid,
            &self.alive_roster,
            round,
            k,
            &self.params,
            self.features,
            rng,
            &self.obs,
        );
        let heads = outcome.heads.clone();
        self.last_selection = Some(outcome);
        // Index maintenance, part 2: the Send-Data candidate index over
        // this round's heads, for the per-packet c-nearest query. Only
        // worth it (and only *valid* as a pure speedup) when the head set
        // is larger than the candidate budget.
        self.candidates_active = false;
        self.retarget_knn.clear();
        if let Some(c) = self.params.candidates.budget(k) {
            if self.q_routing && heads.len() > c {
                let head_start_ns = self.obs.now_ns();
                let roster: Vec<(u32, Vec3)> =
                    heads.iter().map(|&h| (h.0, net.node(h).pos)).collect();
                match self.params.head_index {
                    HeadIndexMode::Rebuild => self.head_index.rebuild_from(&roster),
                    HeadIndexMode::Incremental => self.head_index.sync(&roster),
                }
                self.candidate_budget = c;
                self.candidates_active = true;
                index_ns += self.obs.now_ns().saturating_sub(head_start_ns);
            }
        }
        if self.obs.is_active() {
            self.obs.emit(Event::PhaseTimed {
                round,
                phase: Phase::IndexMaintenance,
                wall_ns: index_ns,
                sim_time: self.obs.sim_time(),
            });
        }
        // Refresh each head's V at promotion: a node's V from its member
        // days values a different action set; the head's state is "hold
        // the aggregate, forward to the BS", so its V is the line-15
        // Q(h, a_BS) — computed now so members route against current
        // values instead of stale ones.
        if self.q_routing {
            if let Some(router) = self.router.as_mut() {
                let deltas =
                    router.head_update_batch(net, &heads, self.aggregate_share, self.threads);
                if let Some(store) = self.q_rows_store.as_mut() {
                    for &h in &heads {
                        store.record(h.0, u32::MAX, router.v_of(h));
                    }
                }
                if self.obs.is_active() {
                    for (&h, &delta) in heads.iter().zip(&deltas) {
                        self.obs.emit(Event::QUpdate {
                            round,
                            node: h.0,
                            delta,
                        });
                    }
                }
            }
        }
        heads
    }

    fn on_packet_start(&mut self, src: NodeId) {
        if let Some(failed) = self.failed_this_packet.get_mut(&src) {
            failed.clear();
        }
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        if self.q_routing {
            let excluded = self
                .failed_this_packet
                .get(&src)
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            // Pruned candidate set: the c nearest alive heads. The query
            // window is padded so a few mid-round head deaths still leave
            // c alive candidates; an all-dead window falls back to the
            // full list (the router skips dead heads itself).
            let candidates: &[NodeId] = if self.candidates_active {
                let c = self.candidate_budget;
                if self.threads > 1 {
                    // Merge-time retargets re-query the same frozen index
                    // per source node; cache the ranking for the round
                    // and keep only the alive filter live.
                    if !self.retarget_knn.contains_key(&src.0) {
                        let window = (c + 8).min(self.head_index.len());
                        self.head_index.k_nearest_into(
                            net.node(src).pos,
                            window,
                            &mut self.knn_buf,
                            &mut self.knn_out,
                        );
                        self.retarget_knn.insert(src.0, self.knn_out.clone());
                    }
                    let knn = &self.retarget_knn[&src.0];
                    self.candidate_buf.clear();
                    for &(id, _) in knn {
                        let h = NodeId(id);
                        if net.node(h).is_alive() {
                            self.candidate_buf.push(h);
                            if self.candidate_buf.len() == c {
                                break;
                            }
                        }
                    }
                } else {
                    let window = (c + 8).min(self.head_index.len());
                    self.head_index.k_nearest_into(
                        net.node(src).pos,
                        window,
                        &mut self.knn_buf,
                        &mut self.knn_out,
                    );
                    self.candidate_buf.clear();
                    for &(id, _) in &self.knn_out {
                        let h = NodeId(id);
                        if net.node(h).is_alive() {
                            self.candidate_buf.push(h);
                            if self.candidate_buf.len() == c {
                                break;
                            }
                        }
                    }
                }
                if self.candidate_buf.is_empty() {
                    heads
                } else {
                    &self.candidate_buf
                }
            } else {
                heads
            };
            let start_ns = self.obs.now_ns();
            let router = self
                .router
                .as_mut()
                .expect("router initialized in on_round_start");
            let target = if self.threads > 1 {
                router.send_data_excluding_cached(
                    net,
                    src,
                    candidates,
                    excluded,
                    &mut self.action_buf,
                )
            } else {
                router.send_data_excluding(net, src, candidates, excluded)
            };
            if let Some(store) = self.q_rows_store.as_mut() {
                store.record(src.0, overlay_key(target), router.v_of(src));
            }
            if self.obs.is_active() {
                self.qrouting_ns += self.obs.now_ns().saturating_sub(start_ns);
                self.obs.emit(Event::QUpdate {
                    round: self.current_round,
                    node: src.0,
                    delta: router.last_delta(),
                });
            }
            target
        } else {
            nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
        }
    }

    fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        if let Some(router) = self.router.as_mut() {
            router.on_hop_result(src, target, success);
        }
        if !success {
            self.failed_this_packet.entry(src).or_default().push(target);
        }
    }

    fn on_round_end(&mut self, net: &mut Network, round: u32, heads: &[NodeId]) {
        // Algorithm 1 line 15: heads refresh their own V values from the
        // BS-hop Q after data fusion.
        if let Some(router) = self.router.as_mut() {
            let start_ns = self.obs.now_ns();
            let deltas = router.head_update_batch(net, heads, self.aggregate_share, self.threads);
            if let Some(store) = self.q_rows_store.as_mut() {
                for &h in heads {
                    store.record(h.0, u32::MAX, router.v_of(h));
                }
            }
            if self.obs.is_active() {
                for (&h, &delta) in heads.iter().zip(&deltas) {
                    self.obs.emit(Event::QUpdate {
                        round,
                        node: h.0,
                        delta,
                    });
                }
            }
            router.convergence.end_sweep();
            // Round-end housekeeping: drop link estimates for endpoints
            // that died this round (they are never consulted again, so
            // this cannot change behaviour — only the table's footprint).
            router.prune_dead_links(net);
            if self.obs.is_active() {
                // One span for the round's whole Send-Data workload: the
                // per-packet time accumulated in `choose_target` (or
                // planned and absorbed by the parallel engine) plus the
                // line-15 head refresh above.
                let wall_ns = self.qrouting_ns + self.obs.now_ns().saturating_sub(start_ns);
                self.obs.emit(Event::PhaseTimed {
                    round,
                    phase: Phase::QRouting,
                    wall_ns,
                    sim_time: self.obs.sim_time(),
                });
                self.qrouting_ns = 0;
            }
        }
    }

    fn planner(&self) -> Option<&dyn RoutePlanner> {
        Some(self)
    }

    fn absorb_plan(&mut self, src: NodeId, scratch: PlanScratch) {
        let s = scratch
            .downcast::<QlecPlanScratch>()
            .expect("QlecProtocol scratch");
        if let Some(router) = self.router.as_mut() {
            router.absorb_plan(src, s.v_src, s.updates, &s.deltas);
        }
        if let Some(store) = self.q_rows_store.as_mut() {
            for &(key, q) in &s.decisions {
                store.record(src.0, key, q);
            }
        }
        self.qrouting_ns += s.ns;
        if self.obs.is_active() {
            for &delta in &s.deltas {
                self.obs.emit(Event::QUpdate {
                    round: self.current_round,
                    node: src.0,
                    delta,
                });
            }
        }
    }

    fn configure_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }
}

/// Per-node planning state for the parallel engine (one per member node
/// per round, created by [`RoutePlanner::begin_node`]).
///
/// `v_src` carries the node's `V*` through its packets' fixed-point
/// iterations; `overlay` layers this node's pending link-EWMA updates
/// over the shared table (the shared table itself is only written at
/// merge time, through the usual `on_hop_result` replay, so cross-node
/// learning lands between rounds regardless of thread count); `deltas`
/// and `updates` are the bookkeeping that [`QlecProtocol::absorb_plan`]
/// commits, and `ns` is the plan-time Send-Data wall clock folded into
/// the round's Q-routing span.
struct QlecPlanScratch {
    v_src: f64,
    /// Pending link-belief updates, keyed by destination (`u32::MAX` =
    /// BS) — all entries share `src`, so the source id is implicit.
    overlay: HashMap<u32, f64>,
    /// Targets that NACKed the packet currently being planned.
    nacked: Vec<Target>,
    knn_buf: Vec<(u32, f64)>,
    knn_out: Vec<(u32, f64)>,
    candidate_buf: Vec<NodeId>,
    /// Whether `candidate_buf` already holds this node's pruned set.
    /// Planning sees a frozen network, so the query — and the alive
    /// filter — return the same set for every attempt of every packet of
    /// the node; with `threads > 1` the first attempt pays the tree walk
    /// and the rest reuse it (`threads = 1` keeps the per-attempt
    /// reference query it is differentially tested against).
    knn_ready: bool,
    /// Per-action constant buffer for the cached `Send-Data` kernel.
    action_buf: Vec<ActionConst>,
    /// Signed `V*(src)` change per planned packet, in packet order.
    deltas: Vec<f64>,
    /// `(target key, V*(src) after)` per planned decision, in packet
    /// order — absorbed into the Q-row store on the main thread so store
    /// contents match the single-threaded commit path.
    decisions: Vec<(u32, f64)>,
    /// Elementary Q computations performed while planning.
    updates: u64,
    ns: u64,
}

fn overlay_key(t: Target) -> u32 {
    match t {
        Target::Bs => u32::MAX,
        Target::Head(h) => h.0,
    }
}

impl RoutePlanner for QlecProtocol {
    fn begin_node(&self, _net: &Network, src: NodeId) -> PlanScratch {
        Box::new(QlecPlanScratch {
            v_src: self.router.as_ref().map_or(0.0, |r| r.v_of(src)),
            overlay: HashMap::new(),
            nacked: Vec::new(),
            knn_buf: Vec::new(),
            knn_out: Vec::new(),
            candidate_buf: Vec::new(),
            knn_ready: false,
            action_buf: Vec::new(),
            deltas: Vec::new(),
            decisions: Vec::new(),
            updates: 0,
            ns: 0,
        })
    }

    fn begin_packet(&self, _src: NodeId, scratch: &mut PlanScratch) {
        let s = scratch
            .downcast_mut::<QlecPlanScratch>()
            .expect("QlecProtocol scratch");
        s.nacked.clear();
    }

    fn plan_target(
        &self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
        scratch: &mut PlanScratch,
    ) -> Target {
        if !self.q_routing {
            return nearest_head(net, src, heads).map_or(Target::Bs, Target::Head);
        }
        let s = scratch
            .downcast_mut::<QlecPlanScratch>()
            .expect("QlecProtocol scratch");
        let router = self
            .router
            .as_ref()
            .expect("router initialized in on_round_start");
        let QlecPlanScratch {
            v_src,
            overlay,
            nacked,
            knn_buf,
            knn_out,
            candidate_buf,
            knn_ready,
            action_buf,
            deltas,
            decisions,
            updates,
            ns,
        } = s;
        // Same pruned-candidate query as `choose_target`, on the
        // node-private buffers (the index itself is only read — `&self`
        // planning stays free of interior mutation). With `threads > 1`
        // the set is computed once per node (the network is frozen while
        // planning, so per-attempt re-queries are pure repetition).
        let cache_set = self.threads > 1;
        let candidates: &[NodeId] = if self.candidates_active {
            if !(cache_set && *knn_ready) {
                let c = self.candidate_budget;
                let window = (c + 8).min(self.head_index.len());
                self.head_index
                    .k_nearest_into(net.node(src).pos, window, knn_buf, knn_out);
                candidate_buf.clear();
                for &(id, _) in knn_out.iter() {
                    let h = NodeId(id);
                    if net.node(h).is_alive() {
                        candidate_buf.push(h);
                        if candidate_buf.len() == c {
                            break;
                        }
                    }
                }
                *knn_ready = true;
            }
            if candidate_buf.is_empty() {
                heads
            } else {
                candidate_buf
            }
        } else {
            heads
        };
        let start_ns = self.obs.now_ns();
        let overlay_ref: &HashMap<u32, f64> = overlay;
        let p_base = |t: Target| -> f64 {
            match overlay_ref.get(&overlay_key(t)) {
                Some(&p) => p,
                None => router.links().probability(src, t),
            }
        };
        let v_before = *v_src;
        let target = if cache_set {
            router.send_data_core_cached(
                net, src, candidates, nacked, v_src, &p_base, updates, action_buf,
            )
        } else {
            router.send_data_core(net, src, candidates, nacked, v_src, &p_base, updates)
        };
        deltas.push(*v_src - v_before);
        decisions.push((overlay_key(target), *v_src));
        if self.obs.is_active() {
            *ns += self.obs.now_ns().saturating_sub(start_ns);
        }
        target
    }

    fn plan_hop_result(
        &self,
        src: NodeId,
        target: Target,
        success: bool,
        scratch: &mut PlanScratch,
    ) {
        let s = scratch
            .downcast_mut::<QlecPlanScratch>()
            .expect("QlecProtocol scratch");
        if let Some(router) = self.router.as_ref() {
            let key = overlay_key(target);
            let current = s
                .overlay
                .get(&key)
                .copied()
                .unwrap_or_else(|| router.links().probability(src, target));
            s.overlay
                .insert(key, router.links().updated(current, success));
        }
        if !success {
            s.nacked.push(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::{NetworkBuilder, SimConfig, Simulator};
    use qlec_radio::link::{AnyLink, DistanceLossLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_net(seed: u64, link: AnyLink) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new()
            .link(link)
            .uniform_cube(&mut rng, 100, 200.0, 5.0)
    }

    #[test]
    fn full_run_is_conserved_and_delivers() {
        let net = paper_net(1, AnyLink::Ideal(IdealLink));
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = QlecProtocol::builder().k(5).build();
        let report = Simulator::builder(net)
            .config(SimConfig::paper(5.0))
            .build()
            .run(&mut p, &mut rng);
        assert!(report.totals.is_conserved());
        assert!(report.pdr() > 0.9, "QLEC idle PDR {}", report.pdr());
        assert_eq!(report.protocol, "qlec");
        assert!(p.q_updates() > 0);
    }

    #[test]
    fn kopt_is_derived_when_not_overridden() {
        let net = paper_net(3, AnyLink::Ideal(IdealLink));
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = QlecProtocol::builder().build();
        assert_eq!(p.k(), None);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 1;
        let _ = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        let k = p.k().expect("k computed on first round");
        // Centre-BS Theorem 1 value for N=100, M=200 (see kopt.rs note).
        assert!((8..=14).contains(&k), "derived k_opt = {k}");
    }

    #[test]
    fn head_counts_stay_near_k() {
        let net = paper_net(5, AnyLink::Ideal(IdealLink));
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = QlecProtocol::builder().k(5).build();
        let report = Simulator::builder(net)
            .config(SimConfig::paper(5.0))
            .build()
            .run(&mut p, &mut rng);
        let mean = report.mean_head_count();
        assert!((4.0..=6.0).contains(&mean), "mean head count {mean}");
    }

    #[test]
    fn members_avoid_direct_bs_when_heads_exist() {
        let net = paper_net(7, AnyLink::Ideal(IdealLink));
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = QlecProtocol::builder().k(5).build();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 5;
        let report = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        // Direct-to-BS member hops would show up as delivered packets with
        // sub-slot latency; with ideal links and the l penalty every
        // member packet should go through a head. We check the lifespan
        // counters indirectly: no dropped_dead, conserved, high PDR.
        assert!(report.pdr() > 0.9);
    }

    #[test]
    fn q_routing_beats_nearest_head_under_congestion() {
        // The Fig. 3(a) mechanism in miniature: under congestion, the
        // nearest-head rule pins each member to one queue, so big
        // clusters overflow while small ones idle; the ACK-driven router
        // senses queue refusals (P̂ drops) and redistributes load.
        let run = |q_routing: bool, seed: u64| {
            let net = paper_net(9, AnyLink::Ideal(IdealLink));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = QlecProtocol::builder().k(5).q_routing(q_routing).build();
            let mut cfg = SimConfig::paper(2.0); // congested
            cfg.rounds = 10;
            Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng)
                .pdr()
        };
        // Average over seeds to damp randomized-election noise.
        let seeds = [10u64, 11, 12];
        let with_q: f64 = seeds.iter().map(|&s| run(true, s)).sum::<f64>() / seeds.len() as f64;
        let without: f64 = seeds.iter().map(|&s| run(false, s)).sum::<f64>() / seeds.len() as f64;
        assert!(
            with_q > without,
            "Q-routing congested PDR {with_q} should beat nearest-head {without}"
        );
    }

    #[test]
    fn q_routing_matches_nearest_head_on_lossy_links() {
        // With distance-monotone link loss, nearest-head is already
        // reliability-optimal; the learned router must not do materially
        // worse while it spends packets learning the link map. Uses the
        // experiments' own link model (reliable below ~150 m): under
        // much harsher loss the ACK signal conflates congestion with
        // radio loss and the comparison is not meaningful.
        let link = AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0));
        let run = |q_routing: bool, seed: u64| {
            let net = paper_net(9, link);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = QlecProtocol::builder().k(5).q_routing(q_routing).build();
            let mut cfg = SimConfig::paper(4.0);
            cfg.rounds = 10;
            Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng)
                .pdr()
        };
        let seeds = [10u64, 11, 12];
        let with_q: f64 = seeds.iter().map(|&s| run(true, s)).sum::<f64>() / seeds.len() as f64;
        let without: f64 = seeds.iter().map(|&s| run(false, s)).sum::<f64>() / seeds.len() as f64;
        assert!(
            with_q >= without - 0.05,
            "Q-routing PDR {with_q} trails nearest-head {without} by too much"
        );
    }

    #[test]
    fn candidate_pruning_off_or_inert_is_identical() {
        // The knob defaults off; a budget the head set never exceeds must
        // also leave every code path untouched. Identical RNG streams ⇒
        // identical reports.
        let run = |c: Option<usize>| {
            let net = paper_net(21, AnyLink::Ideal(IdealLink));
            let mut rng = StdRng::seed_from_u64(22);
            let mut b = QlecProtocol::builder().k(5);
            if let Some(c) = c {
                b = b.candidate_heads(c);
            }
            let mut p = b.build();
            let mut cfg = SimConfig::paper(5.0);
            cfg.rounds = 10;
            Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng)
        };
        let off = run(None);
        let inert = run(Some(50)); // ≥ any head count at k = 5
        assert_eq!(off.consumption_rates, inert.consumption_rates);
        assert_eq!(off.pdr(), inert.pdr());
        assert_eq!(off.mean_head_count(), inert.mean_head_count());
    }

    #[test]
    fn candidate_pruning_small_c_stays_equivalent() {
        // Aggressive pruning (c = 2 of k = 5 heads) must preserve the
        // protocol's character: conserved energy, near-full idle PDR, and
        // an unchanged head-selection trajectory (selection never looks at
        // the knob).
        let run = |prune: bool| {
            let net = paper_net(23, AnyLink::Ideal(IdealLink));
            let mut rng = StdRng::seed_from_u64(24);
            let mut b = QlecProtocol::builder().k(5);
            if prune {
                b = b.candidate_heads(2);
            }
            let mut p = b.build();
            Simulator::builder(net)
                .config(SimConfig::paper(5.0))
                .build()
                .run(&mut p, &mut rng)
        };
        let full = run(false);
        let pruned = run(true);
        assert!(pruned.totals.is_conserved());
        assert!(pruned.pdr() > 0.9, "pruned idle PDR {}", pruned.pdr());
        assert_eq!(full.mean_head_count(), pruned.mean_head_count());
        assert!(
            (full.pdr() - pruned.pdr()).abs() < 0.05,
            "pruned PDR {} vs full {}",
            pruned.pdr(),
            full.pdr()
        );
    }

    #[test]
    fn link_table_is_pruned_over_a_lifespan_run() {
        // Run a deployment to total meltdown: every endpoint eventually
        // dies, so the round-end pruning must leave the link table empty.
        // Before this PR the table kept one entry per directed link ever
        // used — the regression this guards against.
        let mut rng = StdRng::seed_from_u64(25);
        let net = NetworkBuilder::new()
            .link(AnyLink::Ideal(IdealLink))
            .uniform_cube(&mut rng, 60, 200.0, 0.05);
        let mut p = QlecProtocol::builder().k(5).build();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 400;
        let report = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        assert_eq!(
            report.rounds.last().expect("ran").alive_end,
            0,
            "premise: the network melts down"
        );
        assert!(p.q_updates() > 0, "premise: links were exercised");
        let tracked = p.router().expect("router ran").links().links_tracked();
        assert_eq!(tracked, 0, "{tracked} link entries leaked past death");
    }

    #[test]
    fn rotation_spreads_head_duty() {
        let net = paper_net(15, AnyLink::Ideal(IdealLink));
        let mut rng = StdRng::seed_from_u64(16);
        let mut p = QlecProtocol::builder().k(5).build();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 20;
        let sim = Simulator::builder(net).config(cfg);
        let _ = sim; // run consumes; rebuild to inspect final network
        let net = paper_net(15, AnyLink::Ideal(IdealLink));
        let sim = Simulator::builder(net).config(cfg);
        let report = sim.build().run(&mut p, &mut rng);
        // ~5 heads × 20 rounds = ~100 head-slots across 100 nodes: the
        // rotation should touch a sizable fraction of the network.
        let served = report
            .consumption_rates
            .iter()
            .filter(|&&r| r > 0.0)
            .count();
        assert!(served > 50, "only {served} nodes consumed energy");
    }

    #[test]
    fn survives_heavily_drained_network() {
        let mut net = paper_net(17, AnyLink::Ideal(IdealLink));
        for i in 0..95u32 {
            net.node_mut(NodeId(i)).battery.consume(4.99);
        }
        let mut rng = StdRng::seed_from_u64(18);
        let mut p = QlecProtocol::builder().k(5).build();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 10;
        let report = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        assert!(report.totals.is_conserved());
    }

    #[test]
    fn rebuild_and_incremental_modes_agree() {
        // The two index-maintenance strategies are different *engines*
        // for the same queries: identical RNG streams must give
        // identical reports, including with a binding candidate budget
        // (k = 12 > budget 3 forces the head index into use) and enough
        // rounds for deaths to exercise the grid's incremental removal.
        use crate::params::HeadIndexMode;
        let run = |mode: HeadIndexMode| {
            let net = paper_net(31, AnyLink::Ideal(IdealLink));
            let mut rng = StdRng::seed_from_u64(32);
            let mut p = QlecProtocol::builder()
                .k(12)
                .candidate_heads(3)
                .head_index(mode)
                .build();
            let mut cfg = SimConfig::paper(5.0);
            cfg.rounds = 30;
            Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng)
        };
        let rebuild = run(HeadIndexMode::Rebuild);
        let incremental = run(HeadIndexMode::Incremental);
        assert_eq!(rebuild.consumption_rates, incremental.consumption_rates);
        assert_eq!(rebuild.pdr(), incremental.pdr());
        assert_eq!(rebuild.mean_head_count(), incremental.mean_head_count());
        assert_eq!(
            rebuild.rounds.last().map(|r| r.alive_end),
            incremental.rounds.last().map(|r| r.alive_end)
        );
    }

    #[test]
    fn q_rows_layouts_run_identically_and_record_the_same_rows() {
        // The store is write-only on the decision path, so dense and
        // sparse layouts must leave every simulation observable untouched
        // — and, since they record the same decisions, their final-round
        // rows must agree entry for entry.
        let run = |mode: QRowsMode| {
            let net = paper_net(41, AnyLink::Ideal(IdealLink));
            let mut rng = StdRng::seed_from_u64(42);
            let mut p = QlecProtocol::builder().k(5).q_rows(mode).build();
            let mut cfg = SimConfig::paper(5.0);
            cfg.rounds = 10;
            let report = Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng);
            (report, p)
        };
        let (dense_report, dense_p) = run(QRowsMode::Dense);
        let (sparse_report, sparse_p) = run(QRowsMode::Sparse);
        assert_eq!(
            dense_report.consumption_rates,
            sparse_report.consumption_rates
        );
        assert_eq!(dense_report.pdr(), sparse_report.pdr());
        assert_eq!(
            dense_report.mean_head_count(),
            sparse_report.mean_head_count()
        );
        let dense = dense_p.q_rows().expect("store populated");
        let sparse = sparse_p.q_rows().expect("store populated");
        assert_eq!(dense.mode(), QRowsMode::Dense);
        assert_eq!(sparse.mode(), QRowsMode::Sparse);
        assert_eq!(dense.rows_touched(), sparse.rows_touched());
        assert!(dense.rows_touched() > 0, "final round recorded decisions");
        for i in 0..dense.len() as u32 {
            assert_eq!(dense.row(i), sparse.row(i), "node {i}");
        }
    }

    #[test]
    fn named_variant_reports_custom_name() {
        let p = QlecProtocol::builder().k(5).named("qlec-ablated").build();
        assert_eq!(p.name(), "qlec-ablated");
    }
}
