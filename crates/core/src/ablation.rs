//! Feature-toggled QLEC variants for the design-choice ablations called
//! out in DESIGN.md:
//!
//! * **no-energy-threshold** — drop the Eq. 4 eligibility bar (back to
//!   plain DEEC candidacy),
//! * **no-redundancy-reduction** — skip the Algorithm 3 HELLO protocol,
//! * **no-q-routing** — members pick the nearest head (plain DEEC's
//!   membership rule) instead of `Send-Data`,
//! * **plain-deec-core** — all three off: the improved-DEEC scaffolding
//!   degenerates to DEEC with top-up.
//!
//! Each variant is a fully functional [`qlec_net::Protocol`]; the
//! `ablation` experiment binary runs them side by side.

use crate::deec_improved::SelectionFeatures;
use crate::params::QlecParams;
use crate::qlec::QlecProtocol;

/// Which QLEC feature to disable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// The full algorithm (nothing disabled).
    None,
    /// Disable the Eq. 4 energy threshold.
    EnergyThreshold,
    /// Disable the Algorithm 3 redundancy reduction.
    RedundancyReduction,
    /// Replace Q-routing with nearest-head membership.
    QRouting,
    /// Disable all three (plain DEEC core with top-up).
    All,
}

impl Ablation {
    /// Every variant, for sweep harnesses.
    pub const ALL_VARIANTS: [Ablation; 5] = [
        Ablation::None,
        Ablation::EnergyThreshold,
        Ablation::RedundancyReduction,
        Ablation::QRouting,
        Ablation::All,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            Ablation::None => "qlec",
            Ablation::EnergyThreshold => "qlec-no-energy-threshold",
            Ablation::RedundancyReduction => "qlec-no-redundancy-reduction",
            Ablation::QRouting => "qlec-no-q-routing",
            Ablation::All => "qlec-plain-deec-core",
        }
    }

    /// A [`QlecBuilder`](crate::qlec::QlecBuilder) preconfigured for this
    /// variant — attach observers or tweak further before `build()`.
    pub fn builder(self, params: QlecParams) -> crate::qlec::QlecBuilder {
        let mut features = SelectionFeatures::default();
        let mut q_routing = true;
        match self {
            Ablation::None => {}
            Ablation::EnergyThreshold => features.energy_threshold = false,
            Ablation::RedundancyReduction => features.redundancy_reduction = false,
            Ablation::QRouting => q_routing = false,
            Ablation::All => {
                features.energy_threshold = false;
                features.redundancy_reduction = false;
                q_routing = false;
            }
        }
        QlecProtocol::builder()
            .params(params)
            .features(features)
            .q_routing(q_routing)
            .named(self.label())
    }

    /// Build the corresponding protocol.
    pub fn protocol(self, params: QlecParams) -> QlecProtocol {
        self.builder(params).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::{NetworkBuilder, Protocol, SimConfig, Simulator};
    use qlec_radio::link::{AnyLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = Ablation::ALL_VARIANTS.iter().map(|a| a.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn every_variant_runs_conserved() {
        for ab in Ablation::ALL_VARIANTS {
            let mut rng = StdRng::seed_from_u64(42);
            let net = NetworkBuilder::new()
                .link(AnyLink::Ideal(IdealLink))
                .uniform_cube(&mut rng, 60, 200.0, 5.0);
            let mut p = ab.protocol(QlecParams::paper_with_k(5));
            assert_eq!(p.name(), ab.label());
            let mut cfg = SimConfig::paper(5.0);
            cfg.rounds = 5;
            let report = Simulator::builder(net)
                .config(cfg)
                .build()
                .run(&mut p, &mut rng);
            assert!(report.totals.is_conserved(), "{:?}", ab);
            assert!(report.totals.delivered > 0, "{:?}", ab);
        }
    }

    #[test]
    fn no_q_routing_variant_does_not_update_q() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = NetworkBuilder::new()
            .link(AnyLink::Ideal(IdealLink))
            .uniform_cube(&mut rng, 40, 200.0, 5.0);
        let mut p = Ablation::QRouting.protocol(QlecParams::paper_with_k(4));
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 3;
        let _ = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        // Head updates still run at round end (line 15 belongs to the
        // algorithm skeleton), but no member Send-Data updates happen:
        // with 4 heads × 3 rounds the count stays tiny compared to the
        // thousands of member packets.
        assert!(
            p.q_updates() <= 4 * 3,
            "nearest-head variant performed {} Q updates",
            p.q_updates()
        );
    }
}
