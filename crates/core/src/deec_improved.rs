//! The improved DEEC cluster-head selection (Algorithms 2 and 3).
//!
//! Two improvements over plain DEEC (§3.1):
//!
//! 1. **Energy threshold** (Eq. 4): a node is only eligible while
//!    `E_i(r) ≥ E_{i,th}(r) = (1 − (r/R)²)·E_{i,initial}` — nearly-drained
//!    nodes are barred from serving even when the randomized rotation
//!    would pick them. (The paper writes strict `>`; at `r = 0` the
//!    threshold equals the initial energy, so a strict comparison would
//!    bar *every* fresh node — we use `≥`, which matches the obvious
//!    intent.) If an elected node fails the threshold, "the improved DEEC
//!    algorithm will choose another node up to the demand to replace it" —
//!    implemented as the energy-greedy top-up below.
//! 2. **Redundancy reduction** (Algorithm 3): every fresh head HELLOs all
//!    nodes within the coverage radius `d_c` (Eq. 5) with its energy; a
//!    head that hears a HELLO from a *richer* head withdraws. HELLOs are
//!    broadcast simultaneously, so a head withdraws iff *any* elected head
//!    within `d_c` had more energy — including one that itself withdraws
//!    (it already sent its HELLO). Ties break toward the lower node id so
//!    the outcome is deterministic and at least one head of any conflict
//!    group survives.

use crate::params::QlecParams;
use qlec_clustering::deec::deec_probability;
use qlec_clustering::leach::{rotating_epoch, rotating_threshold};
use qlec_geom::UniformGrid;
use qlec_net::{Network, NodeId};
use qlec_obs::{Event, ObserverSet, Phase};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Eq. 4: the minimum residual energy node `i` needs at round `r` (out of
/// planned `total_rounds`) to be eligible as a cluster head.
///
/// Total over all inputs: the decaying fraction `r/R` saturates at 1, so
/// the threshold is `0.0` for every round at or past the plan horizon
/// (`r ≥ total_rounds`) — and, by the same saturation, for the degenerate
/// `total_rounds = 0` (a zero-length plan is always past its horizon).
/// No input produces NaN or a negative threshold.
pub fn energy_threshold(initial_energy: f64, r: u32, total_rounds: u32) -> f64 {
    if r >= total_rounds {
        return 0.0;
    }
    let frac = r as f64 / total_rounds as f64;
    (1.0 - frac * frac) * initial_energy
}

/// Which optional improvements to apply — the ablation switchboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionFeatures {
    /// Apply the Eq. 4 energy threshold.
    pub energy_threshold: bool,
    /// Run the Algorithm 3 HELLO redundancy reduction.
    pub redundancy_reduction: bool,
    /// Enforce the target `k`: top up a short head set with the
    /// highest-energy eligible, non-conflicting candidates (the paper's
    /// replacement mechanism) and trim an over-full one to the `k`
    /// richest heads ("it is very important to set a certain cluster
    /// number for each round", §3.1).
    pub top_up: bool,
}

impl Default for SelectionFeatures {
    fn default() -> Self {
        SelectionFeatures {
            energy_threshold: true,
            redundancy_reduction: true,
            top_up: true,
        }
    }
}

/// Outcome of one selection round (diagnostics for tests and benches).
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The final head set.
    pub heads: Vec<NodeId>,
    /// Heads elected by the randomized threshold before Algorithm 3.
    pub elected: usize,
    /// Heads withdrawn by the redundancy reduction.
    pub withdrawn: usize,
    /// The withdrawn heads themselves (id order of election).
    pub withdrawn_ids: Vec<NodeId>,
    /// Heads added by the top-up/replacement mechanism.
    pub topped_up: usize,
}

/// Run one round of improved-DEEC head selection. Installs roles and
/// rotation bookkeeping on the network and (optionally) charges HELLO
/// energy.
///
/// `k` is the target head count (Theorem 1's `k_opt` in QLEC proper);
/// `grid` must index the network's node positions in id order.
pub fn select_heads(
    net: &mut Network,
    grid: &UniformGrid,
    round: u32,
    k: usize,
    params: &QlecParams,
    features: SelectionFeatures,
    rng: &mut dyn RngCore,
) -> SelectionOutcome {
    select_heads_observed(
        net,
        grid,
        round,
        k,
        params,
        features,
        rng,
        &ObserverSet::new(),
    )
}

/// [`select_heads`] with an observer: times the Algorithm 3 HELLO
/// broadcast as [`Phase::Broadcast`] and emits one
/// [`Event::HeadWithdrawn`] per head the redundancy reduction removes.
///
/// Scans the network for the alive roster itself; callers that already
/// maintain one (the protocol's incremental election index) should use
/// [`select_heads_from_roster`] and skip the `O(N)` re-scan.
#[allow(clippy::too_many_arguments)]
pub fn select_heads_observed(
    net: &mut Network,
    grid: &UniformGrid,
    round: u32,
    k: usize,
    params: &QlecParams,
    features: SelectionFeatures,
    rng: &mut dyn RngCore,
    obs: &ObserverSet,
) -> SelectionOutcome {
    let alive: Vec<NodeId> = net.alive_ids().collect();
    select_heads_from_roster(net, grid, &alive, round, k, params, features, rng, obs)
}

/// [`select_heads_observed`] driven by a caller-maintained alive roster.
///
/// `alive` must hold exactly the network's alive node ids in ascending
/// order — the order Algorithm 2 consumes randomness in, so a correct
/// roster is byte-identical to the self-scanning entry point while the
/// caller amortizes the per-round `O(N)` alive scan into whatever diff
/// bookkeeping it already does (see the protocol's incremental index
/// maintenance). Every per-node pass below (election, top-up ranking,
/// the last-resort promotion) walks this roster instead of re-scanning
/// all `N` deployment slots.
#[allow(clippy::too_many_arguments)]
pub fn select_heads_from_roster(
    net: &mut Network,
    grid: &UniformGrid,
    alive: &[NodeId],
    round: u32,
    k: usize,
    params: &QlecParams,
    features: SelectionFeatures,
    rng: &mut dyn RngCore,
    obs: &ObserverSet,
) -> SelectionOutcome {
    assert!(k > 0, "target head count must be positive");
    debug_assert!(
        alive.windows(2).all(|w| w[0] < w[1]),
        "alive roster must be strictly ascending"
    );
    debug_assert!(
        alive.iter().all(|&id| net.node(id).is_alive()) && alive.len() == net.alive_count(),
        "alive roster out of sync with the network"
    );
    let n = net.len().max(1);
    let p_opt = (k as f64 / n as f64).min(1.0);
    let dc = crate::kopt::coverage_radius(net.side_length(), k);

    // Eq. 2 estimate of the average network energy. Saturate past the
    // plan horizon (and for a degenerate zero-round plan) like Eq. 4.
    let r_frac = if round >= params.total_rounds {
        1.0
    } else {
        round as f64 / params.total_rounds as f64
    };
    let avg_energy = (net.total_initial() / n as f64) * (1.0 - r_frac);

    // --- Algorithm 2: randomized election --------------------------------
    let mut elected: Vec<NodeId> = Vec::new();
    for id in alive {
        let node = net.node(*id);
        debug_assert!(node.is_alive(), "roster carries a dead node");
        if features.energy_threshold {
            let th = energy_threshold(node.battery.initial(), round, params.total_rounds);
            if node.residual() < th {
                continue;
            }
        }
        let p_i = deec_probability(p_opt, node.residual(), avg_energy);
        if p_i <= 0.0 || node.was_head_recently(round, rotating_epoch(p_i)) {
            continue;
        }
        let t = rotating_threshold(p_i, round);
        if rng.gen::<f64>() < t {
            elected.push(*id);
        }
    }
    let elected_count = elected.len();

    // --- Algorithm 3: HELLO redundancy reduction -------------------------
    let mut withdrawn_ids: Vec<NodeId> = Vec::new();
    let broadcast_span = obs.span_start();
    let mut heads: Vec<NodeId> = if features.redundancy_reduction && elected.len() > 1 {
        // Every elected head broadcasts simultaneously; charge energy
        // before any withdrawal (the message was already sent).
        if params.charge_control_traffic {
            charge_hello(net, grid, &elected, dc, params.hello_bits);
        }
        let (kept, withdrawn) = redundancy_withdrawals(net, grid, &elected, dc);
        withdrawn_ids = withdrawn;
        kept
    } else {
        elected
    };
    obs.span_end(broadcast_span, round, Phase::Broadcast);
    if obs.is_active() {
        for &w in &withdrawn_ids {
            obs.emit(Event::HeadWithdrawn { round, node: w.0 });
        }
    }

    // --- Enforce k: trim an over-full head set to the richest k ----------
    if features.top_up && heads.len() > k {
        heads.sort_by(|&a, &b| {
            net.node(b)
                .residual()
                .total_cmp(&net.node(a).residual())
                .then(a.cmp(&b))
        });
        heads.truncate(k);
    }

    // --- Replacement / top-up (the Eq. 4 "choose another node") ----------
    //
    // "Up to the demand": the round must end with k heads whenever enough
    // alive nodes exist. Candidates are ranked by (passes the Eq. 4
    // threshold, residual energy); the coverage separation is respected
    // while possible and relaxed only when it would leave the demand
    // unmet — otherwise a congested early round (every node fractionally
    // below the near-initial threshold) collapses to a single head and
    // the network melts down.
    let mut topped_up = 0usize;
    if features.top_up && heads.len() < k {
        let mut candidates: Vec<(bool, NodeId)> = alive
            .iter()
            .copied()
            .filter(|id| !heads.contains(id))
            .map(|id| {
                let node = net.node(id);
                let passes = !features.energy_threshold
                    || node.residual()
                        >= energy_threshold(node.battery.initial(), round, params.total_rounds);
                (passes, id)
            })
            .collect();
        candidates.sort_by(|&(pa, a), &(pb, b)| {
            pb.cmp(&pa)
                .then(net.node(b).residual().total_cmp(&net.node(a).residual()))
                .then(a.cmp(&b))
        });
        // Pass 1: respect the d_c separation.
        for &(_, id) in &candidates {
            if heads.len() >= k {
                break;
            }
            if features.redundancy_reduction && heads.iter().any(|h| net.distance(id, *h) <= dc) {
                continue;
            }
            heads.push(id);
            topped_up += 1;
        }
        // Pass 2: demand still unmet — relax the separation.
        for &(_, id) in &candidates {
            if heads.len() >= k {
                break;
            }
            if !heads.contains(&id) {
                heads.push(id);
                topped_up += 1;
            }
        }
    }

    // Last resort: an empty head set stalls the round — promote the single
    // richest alive node (unconditionally eligible).
    if heads.is_empty() {
        if let Some(best) = alive.iter().copied().max_by(|&a, &b| {
            net.node(a)
                .residual()
                .total_cmp(&net.node(b).residual())
                .then(b.cmp(&a))
        }) {
            heads.push(best);
        }
    }

    qlec_net::protocol::install_heads(net, round, &heads);
    let withdrawn = withdrawn_ids.len();
    SelectionOutcome {
        heads,
        elected: elected_count,
        withdrawn,
        withdrawn_ids,
        topped_up,
    }
}

/// Algorithm 3 core: partition `elected` into (survivors, withdrawals),
/// both in election order. A head withdraws iff *any* other elected head
/// within `d_c` out-ranks it (more residual energy, or equal energy and a
/// lower id) — simultaneous-HELLO semantics, so out-ranking heads count
/// even when they themselves withdraw.
///
/// The candidate set per head comes from a [`UniformGrid`] ball query —
/// O(elected · ball) instead of the seed's O(elected²) all-pairs scan.
/// The grid is queried with a radius inflated by one part in 10¹² so its
/// squared-distance cell test is a superset of the exact predicate; the
/// final call is still `net.distance(i, j) <= dc`, bit-for-bit the
/// comparison the brute-force scan made.
pub fn redundancy_withdrawals(
    net: &Network,
    grid: &UniformGrid,
    elected: &[NodeId],
    dc: f64,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut is_elected = vec![false; net.len()];
    for &e in elected {
        is_elected[e.0 as usize] = true;
    }
    let query_radius = dc * (1.0 + 1e-12);
    let mut ball: Vec<u32> = Vec::new();
    let mut kept: Vec<NodeId> = Vec::with_capacity(elected.len());
    let mut withdrawn: Vec<NodeId> = Vec::new();
    for &i in elected {
        let me = net.node(i).residual();
        grid.within_radius_into(net.node(i).pos, query_radius, &mut ball);
        let outranked = ball.iter().any(|&jx| {
            let j = NodeId(jx);
            is_elected[jx as usize] && j != i && net.distance(i, j) <= dc && {
                let other = net.node(j).residual();
                other > me || (other == me && j < i)
            }
        });
        if outranked {
            withdrawn.push(i);
        } else {
            kept.push(i);
        }
    }
    (kept, withdrawn)
}

/// Charge the Algorithm 3 HELLO broadcast: each head transmits
/// `hello_bits` at range `d_c`; every other node inside the ball pays
/// reception.
fn charge_hello(net: &mut Network, grid: &UniformGrid, heads: &[NodeId], dc: f64, bits: u64) {
    let radio = net.radio;
    let tx = radio.tx_energy(bits, dc);
    let rx = radio.rx_energy(bits);
    let mut in_range = Vec::new();
    for &h in heads {
        net.node_mut(h).battery.consume(tx);
        grid.within_radius_into(net.node(h).pos, dc, &mut in_range);
        for &i in &in_range {
            let id = NodeId(i);
            if id != h && net.node(id).is_alive() {
                net.node_mut(id).battery.consume(rx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, n: usize) -> (Network, UniformGrid) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        let grid = UniformGrid::build(net.positions(), 8);
        (net, grid)
    }

    #[test]
    fn eq4_threshold_shape() {
        // Fresh network: threshold equals initial energy.
        assert_eq!(energy_threshold(5.0, 0, 20), 5.0);
        // Quadratic decay: at r = R/2 the threshold is 75 % of initial.
        assert!((energy_threshold(5.0, 10, 20) - 3.75).abs() < 1e-12);
        // At the horizon: zero.
        assert_eq!(energy_threshold(5.0, 20, 20), 0.0);
        // Beyond the horizon it clamps at zero, never negative.
        assert_eq!(energy_threshold(5.0, 99, 20), 0.0);
    }

    #[test]
    fn eq4_threshold_is_total() {
        // A zero-length plan is always past its horizon: threshold 0, no
        // NaN (the old code divided 0/0 here in release builds).
        for r in [0u32, 1, 1000, u32::MAX] {
            let th = energy_threshold(5.0, r, 0);
            assert_eq!(th, 0.0, "r={r}, total_rounds=0");
            assert!(!th.is_nan());
        }
        // Extreme but valid inputs stay finite and non-negative.
        for (r, total) in [(0u32, u32::MAX), (u32::MAX, u32::MAX), (u32::MAX, 1)] {
            let th = energy_threshold(f64::MAX, r, total);
            assert!(th.is_finite() && th >= 0.0, "r={r} total={total} → {th}");
        }
    }

    #[test]
    fn selection_survives_zero_round_plan() {
        // total_rounds = 0 must not divide by zero in the Eq. 2 average
        // or the Eq. 4 threshold: the plan is past its horizon, so the
        // threshold bars nobody and the average-energy estimate is 0.
        let (mut net, grid) = setup(3, 60);
        let mut rng = StdRng::seed_from_u64(5);
        let params = QlecParams {
            total_rounds: 0,
            ..QlecParams::paper()
        };
        let out = select_heads(
            &mut net,
            &grid,
            0,
            4,
            &params,
            SelectionFeatures::default(),
            &mut rng,
        );
        assert!(!out.heads.is_empty(), "top-up must still reach k");
    }

    #[test]
    fn fresh_round_zero_selects_heads() {
        // The ≥-vs-> interpretation: with everything at full energy the
        // threshold equals the residual, and selection must still work.
        let (mut net, grid) = setup(1, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_heads(
            &mut net,
            &grid,
            0,
            5,
            &QlecParams::paper(),
            SelectionFeatures::default(),
            &mut rng,
        );
        assert!(!out.heads.is_empty());
    }

    #[test]
    fn top_up_reaches_target_k() {
        let (mut net, grid) = setup(3, 100);
        let mut rng = StdRng::seed_from_u64(4);
        let out = select_heads(
            &mut net,
            &grid,
            0,
            5,
            &QlecParams::paper(),
            SelectionFeatures::default(),
            &mut rng,
        );
        assert_eq!(
            out.heads.len(),
            5,
            "top-up must hit k when candidates exist"
        );
    }

    #[test]
    fn redundancy_reduction_separates_heads() {
        let (mut net, grid) = setup(5, 200);
        let mut rng = StdRng::seed_from_u64(6);
        let k = 5;
        let dc = crate::kopt::coverage_radius(200.0, k);
        let out = select_heads(
            &mut net,
            &grid,
            0,
            k,
            &QlecParams::paper(),
            SelectionFeatures::default(),
            &mut rng,
        );
        // After Alg. 3 + separation-respecting top-up, surviving heads are
        // pairwise separated OR one of a conflicting pair out-ranks the
        // other — with simultaneous HELLO semantics the survivor set is
        // pairwise conflict-free.
        for (i, &a) in out.heads.iter().enumerate() {
            for &b in &out.heads[i + 1..] {
                assert!(
                    net.distance(a, b) > dc,
                    "heads {a} and {b} are within d_c = {dc}"
                );
            }
        }
    }

    #[test]
    fn drained_nodes_are_barred_by_threshold() {
        let (mut net, grid) = setup(7, 60);
        // Drain node 0 below the round-5 threshold.
        net.node_mut(NodeId(0)).battery.consume(2.0); // 3.0 residual
        let th = energy_threshold(5.0, 5, 20);
        assert!(3.0 < th, "test premise: node 0 must be under the threshold");
        let mut rng = StdRng::seed_from_u64(8);
        for r in 0..10u32 {
            net.reset_roles();
            let out = select_heads(
                &mut net,
                &grid,
                5, // fixed round so the threshold stays put
                4,
                &QlecParams::paper(),
                SelectionFeatures::default(),
                &mut rng,
            );
            assert!(!out.heads.contains(&NodeId(0)), "round {r}");
        }
    }

    #[test]
    fn without_threshold_drained_nodes_can_serve() {
        let (mut net, grid) = setup(9, 30);
        for i in 0..30u32 {
            net.node_mut(NodeId(i)).battery.consume(2.0);
        }
        let mut rng = StdRng::seed_from_u64(10);
        let features = SelectionFeatures {
            energy_threshold: false,
            ..Default::default()
        };
        let out = select_heads(
            &mut net,
            &grid,
            5,
            4,
            &QlecParams::paper(),
            features,
            &mut rng,
        );
        assert!(
            !out.heads.is_empty(),
            "ablated threshold must not block selection"
        );
    }

    #[test]
    fn hello_costs_energy_when_charged() {
        let (net0, grid) = setup(11, 100);
        let run = |charge: bool| {
            let mut net = net0.clone();
            let mut rng = StdRng::seed_from_u64(12);
            let params = QlecParams {
                charge_control_traffic: charge,
                ..QlecParams::paper()
            };
            select_heads(
                &mut net,
                &grid,
                0,
                5,
                &params,
                SelectionFeatures::default(),
                &mut rng,
            );
            net.total_consumed()
        };
        let with = run(true);
        let without = run(false);
        assert!(with > without, "HELLO charging {with} vs free {without}");
        assert_eq!(without, 0.0);
    }

    #[test]
    fn all_dead_network_yields_no_heads() {
        let (mut net, grid) = setup(13, 10);
        for i in 0..10u32 {
            net.node_mut(NodeId(i)).battery.consume(100.0);
        }
        let mut rng = StdRng::seed_from_u64(14);
        let out = select_heads(
            &mut net,
            &grid,
            0,
            3,
            &QlecParams::paper(),
            SelectionFeatures::default(),
            &mut rng,
        );
        assert!(out.heads.is_empty());
    }

    #[test]
    fn head_count_tracks_k_over_many_rounds() {
        let (mut net, grid) = setup(15, 100);
        let mut rng = StdRng::seed_from_u64(16);
        let mut total = 0usize;
        let rounds = 20;
        for r in 0..rounds {
            net.reset_roles();
            let out = select_heads(
                &mut net,
                &grid,
                r,
                5,
                &QlecParams::paper(),
                SelectionFeatures::default(),
                &mut rng,
            );
            total += out.heads.len();
        }
        let mean = total as f64 / rounds as f64;
        assert!(
            (4.0..=6.0).contains(&mean),
            "mean head count {mean}, want ≈ 5 (the paper's 'very close to k_opt')"
        );
    }
}
