//! The first-order radio energy model (Heinzelman et al. \[4\]).
//!
//! Transmitting `L` bits over distance `d` costs
//!
//! ```text
//! E_tx(L, d) = L·E_elec + L·ε_fs·d²   if d <  d₀          (free space)
//! E_tx(L, d) = L·E_elec + L·ε_mp·d⁴   if d >= d₀          (multi-path)
//! ```
//!
//! with `d₀ = √(ε_fs/ε_mp)`; receiving costs `E_rx(L) = L·E_elec`;
//! aggregating one incoming signal of `L` bits at a cluster head costs
//! `L·E_DA`. The paper's Eq. 18 is the *amplifier-only* part of `E_tx`
//! (the `y(b_i, h_j)` transmission-cost term in the Q-learning reward), so
//! it is exposed separately as [`RadioModel::amp_energy`].
//!
//! Default constants follow the paper (§3.2 and Table 2):
//! `ε_fs = 10 pJ/bit/m²`, `ε_mp = 0.0013 pJ/bit/m⁴`, and the conventional
//! `E_elec = 50 nJ/bit`, `E_DA = 5 nJ/bit` from \[4\]/\[11\]. All energies
//! are in joules, distances in metres, packet sizes in bits.

use serde::{Deserialize, Serialize};

/// Parameters of the first-order radio model.
///
/// ```
/// use qlec_radio::RadioModel;
/// let radio = RadioModel::paper();
/// // Below d0 the free-space d² law applies; above it, multi-path d⁴.
/// assert!((radio.d0() - 87.7058).abs() < 1e-3);
/// let short = radio.tx_energy(2000, 50.0);
/// let long = radio.tx_energy(2000, 150.0);
/// assert!(long > 5.0 * short);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Electronics energy per bit, transmit or receive (J/bit).
    pub e_elec: f64,
    /// Data-aggregation energy per bit per incoming signal (J/bit).
    pub e_da: f64,
    /// Free-space amplifier constant (J/bit/m²). Paper: 10 pJ.
    pub eps_fs: f64,
    /// Multi-path amplifier constant (J/bit/m⁴). Paper: 0.0013 pJ.
    pub eps_mp: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel::paper()
    }
}

impl RadioModel {
    /// The paper's constants (Table 2 plus the conventional Heinzelman
    /// electronics/aggregation energies).
    pub const fn paper() -> Self {
        RadioModel {
            e_elec: 50e-9,
            e_da: 5e-9,
            eps_fs: 10e-12,
            eps_mp: 0.0013e-12,
        }
    }

    /// Construct with validation.
    ///
    /// # Panics
    /// Panics if any constant is non-positive or non-finite.
    pub fn new(e_elec: f64, e_da: f64, eps_fs: f64, eps_mp: f64) -> Self {
        for (name, v) in [
            ("e_elec", e_elec),
            ("e_da", e_da),
            ("eps_fs", eps_fs),
            ("eps_mp", eps_mp),
        ] {
            assert!(
                v > 0.0 && v.is_finite(),
                "radio constant {name} must be positive, got {v}"
            );
        }
        RadioModel {
            e_elec,
            e_da,
            eps_fs,
            eps_mp,
        }
    }

    /// The crossover distance `d₀ = √(ε_fs/ε_mp)` between the free-space
    /// and multi-path regimes (≈ 87.7 m with the paper's constants).
    #[inline]
    pub fn d0(&self) -> f64 {
        (self.eps_fs / self.eps_mp).sqrt()
    }

    /// Amplifier energy only — the paper's Eq. 18 `y(b_i, h_j)`:
    /// `L·ε_fs·d²` below `d₀`, `L·ε_mp·d⁴` at or above.
    #[inline]
    pub fn amp_energy(&self, bits: u64, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "distance must be non-negative");
        let l = bits as f64;
        if d < self.d0() {
            l * self.eps_fs * d * d
        } else {
            l * self.eps_mp * d * d * d * d
        }
    }

    /// Full transmission energy: electronics plus amplifier.
    #[inline]
    pub fn tx_energy(&self, bits: u64, d: f64) -> f64 {
        bits as f64 * self.e_elec + self.amp_energy(bits, d)
    }

    /// Reception energy: `L·E_elec`.
    #[inline]
    pub fn rx_energy(&self, bits: u64) -> f64 {
        bits as f64 * self.e_elec
    }

    /// Aggregation energy for one incoming signal of `L` bits: `L·E_DA`.
    #[inline]
    pub fn aggregation_energy(&self, bits: u64) -> f64 {
        bits as f64 * self.e_da
    }

    /// The paper's Eq. 6: expected total energy dissipated network-wide in
    /// one round, given `n` nodes each sending `L` bits, `k` cluster heads,
    /// the mean head→BS distance `d_to_bs`, and the mean member→head
    /// distance-squared `d_to_ch_sq`.
    ///
    /// ```text
    /// E_r = L·(2N·E_elec + N·E_DA + k·ε_mp·d⁴_toBS + N·ε_fs·d²_toCH)
    /// ```
    ///
    /// Theorem 1's `k_opt` is the minimizer of this expression once
    /// Lemma 1 substitutes `d²_toCH` as a function of `k`; the `kopt`
    /// module of `qlec-core` does that substitution and the `kopt_table`
    /// experiment binary cross-checks the analytic minimum against a
    /// direct scan of this function.
    pub fn round_energy_eq6(
        &self,
        bits: u64,
        n: usize,
        k: usize,
        d_to_bs: f64,
        d_to_ch_sq: f64,
    ) -> f64 {
        let l = bits as f64;
        let n = n as f64;
        let k = k as f64;
        l * (2.0 * n * self.e_elec
            + n * self.e_da
            + k * self.eps_mp * d_to_bs.powi(4)
            + n * self.eps_fs * d_to_ch_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_constants() {
        let m = RadioModel::paper();
        assert_eq!(m.eps_fs, 10e-12);
        assert_eq!(m.eps_mp, 0.0013e-12);
        // d0 = sqrt(10 / 0.0013) ≈ 87.7 m — the conventional value.
        assert!((m.d0() - 87.7058).abs() < 1e-3, "d0 = {}", m.d0());
    }

    #[test]
    fn tx_energy_regimes() {
        let m = RadioModel::paper();
        let bits = 4000;
        // Below d0: free-space term.
        let d = 50.0;
        let want = 4000.0 * (50e-9 + 10e-12 * d * d);
        assert!((m.tx_energy(bits, d) - want).abs() < 1e-18);
        // Above d0: multi-path term.
        let d: f64 = 150.0;
        let want = 4000.0 * (50e-9 + 0.0013e-12 * d.powi(4));
        assert!((m.tx_energy(bits, d) - want).abs() < 1e-18);
    }

    #[test]
    fn crossover_is_continuous() {
        // At exactly d0 the two amplifier formulas agree:
        // ε_fs·d0² = ε_mp·d0⁴ because d0² = ε_fs/ε_mp.
        let m = RadioModel::paper();
        let d0 = m.d0();
        let below = m.amp_energy(1000, d0 - 1e-9);
        let at = m.amp_energy(1000, d0);
        assert!(
            (below - at).abs() / at < 1e-6,
            "discontinuity at d0: {below} vs {at}"
        );
    }

    #[test]
    fn rx_and_aggregation() {
        let m = RadioModel::paper();
        assert_eq!(m.rx_energy(1000), 1000.0 * 50e-9);
        assert_eq!(m.aggregation_energy(1000), 1000.0 * 5e-9);
        assert_eq!(m.rx_energy(0), 0.0);
    }

    #[test]
    fn zero_distance_costs_only_electronics() {
        let m = RadioModel::paper();
        assert_eq!(m.tx_energy(100, 0.0), 100.0 * m.e_elec);
    }

    #[test]
    fn eq6_matches_hand_expansion() {
        let m = RadioModel::paper();
        let (bits, n, k) = (2000u64, 100usize, 5usize);
        let d_bs: f64 = 96.0;
        let d_ch_sq = 1200.0;
        let want = 2000.0
            * (2.0 * 100.0 * m.e_elec
                + 100.0 * m.e_da
                + 5.0 * m.eps_mp * d_bs.powi(4)
                + 100.0 * m.eps_fs * d_ch_sq);
        assert!((m.round_energy_eq6(bits, n, k, d_bs, d_ch_sq) - want).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn new_rejects_nonpositive() {
        RadioModel::new(0.0, 5e-9, 10e-12, 0.0013e-12);
    }

    proptest! {
        /// Transmission energy is monotonically non-decreasing in distance
        /// (including across the d0 crossover) and in packet size.
        #[test]
        fn tx_energy_monotone(d1 in 0.0..500.0f64, d2 in 0.0..500.0f64, bits in 1u64..100_000) {
            let m = RadioModel::paper();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(m.tx_energy(bits, lo) <= m.tx_energy(bits, hi) + 1e-18);
            prop_assert!(m.tx_energy(bits, lo) <= m.tx_energy(bits + 1, lo));
        }

        /// Energy quantities are non-negative and finite for sane inputs.
        #[test]
        fn energies_finite(d in 0.0..10_000.0f64, bits in 0u64..1_000_000) {
            let m = RadioModel::paper();
            for e in [m.tx_energy(bits, d), m.rx_energy(bits), m.aggregation_energy(bits)] {
                prop_assert!(e >= 0.0 && e.is_finite());
            }
        }

        /// Eq. 6 decomposes: doubling N doubles every N-proportional term.
        #[test]
        fn eq6_k_term_linear(k in 1usize..100) {
            let m = RadioModel::paper();
            let base = m.round_energy_eq6(1000, 100, 0, 96.0, 1200.0);
            let with_k = m.round_energy_eq6(1000, 100, k, 96.0, 1200.0);
            let per_k = 1000.0 * m.eps_mp * 96.0f64.powi(4);
            prop_assert!((with_k - base - k as f64 * per_k).abs() < 1e-12);
        }
    }
}
