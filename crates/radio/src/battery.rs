//! Per-node battery with residual-energy tracking.
//!
//! Holds `E_i(r)` — the residual energy the DEEC election probability
//! (Eq. 1), the improved energy threshold (Eq. 4), and the Q-learning
//! reward terms `x(b_i)`, `x(h_j)` (Eq. 17) all read. §5.1 defines network
//! death through an *energy death line*: "the network dies when there
//! exists one sensor possessing less energy than a given energy death
//! line" — so a node is [`Battery::depleted`] relative to a configurable
//! line, not at exactly zero.

use serde::{Deserialize, Serialize};

/// A sensor-node battery. Energy in joules; never negative.
///
/// ```
/// use qlec_radio::Battery;
/// let mut b = Battery::new(5.0);
/// b.consume(2.0);
/// assert_eq!(b.residual(), 3.0);
/// assert_eq!(b.consumption_rate(), 0.4);
/// assert!(b.depleted(3.5)); // below a 3.5 J death line
/// assert!(!b.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    initial: f64,
    residual: f64,
    /// Total energy drawn over the node's lifetime (for Fig. 4's
    /// consumption-rate map this equals `initial - residual`, but keeping
    /// the explicit accumulator makes the invariant testable even after
    /// hypothetical recharge extensions).
    consumed: f64,
}

impl Battery {
    /// A full battery with the given initial energy.
    ///
    /// # Panics
    /// Panics if `initial` is negative or non-finite.
    pub fn new(initial: f64) -> Self {
        assert!(
            initial >= 0.0 && initial.is_finite(),
            "initial energy must be non-negative and finite, got {initial}"
        );
        Battery {
            initial,
            residual: initial,
            consumed: 0.0,
        }
    }

    /// Initial energy `E_{i,initial}`.
    #[inline]
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// Residual energy `E_i(r)`.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Total energy consumed so far.
    #[inline]
    pub fn consumed(&self) -> f64 {
        self.consumed
    }

    /// Fraction of the initial energy consumed (`0` for a zero-capacity
    /// battery). This is the per-node quantity plotted in Fig. 4.
    #[inline]
    pub fn consumption_rate(&self) -> f64 {
        if self.initial > 0.0 {
            self.consumed / self.initial
        } else {
            0.0
        }
    }

    /// Draw `amount` joules, saturating at zero. Returns the energy
    /// actually drawn (less than `amount` iff the battery ran dry).
    ///
    /// # Panics
    /// Panics (debug) on negative or non-finite draws — those are always
    /// simulator bugs, not physical states.
    pub fn consume(&mut self, amount: f64) -> f64 {
        debug_assert!(
            amount >= 0.0 && amount.is_finite(),
            "consume amount must be non-negative and finite, got {amount}"
        );
        let drawn = amount.min(self.residual);
        self.residual -= drawn;
        self.consumed += drawn;
        drawn
    }

    /// Whether the residual is below `death_line` — the §5.1 death rule.
    #[inline]
    pub fn depleted(&self, death_line: f64) -> bool {
        self.residual < death_line
    }

    /// Whether the battery is completely empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residual <= 0.0
    }

    /// Whether the battery could supply `amount` without running dry.
    #[inline]
    pub fn can_supply(&self, amount: f64) -> bool {
        self.residual >= amount
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_battery() {
        let b = Battery::new(5.0);
        assert_eq!(b.initial(), 5.0);
        assert_eq!(b.residual(), 5.0);
        assert_eq!(b.consumed(), 0.0);
        assert_eq!(b.consumption_rate(), 0.0);
        assert!(!b.is_empty());
        assert!(!b.depleted(0.1));
        assert!(b.depleted(6.0));
    }

    #[test]
    fn consume_accounting() {
        let mut b = Battery::new(5.0);
        assert_eq!(b.consume(2.0), 2.0);
        assert_eq!(b.residual(), 3.0);
        assert_eq!(b.consumed(), 2.0);
        assert_eq!(b.consumption_rate(), 0.4);
    }

    #[test]
    fn consume_saturates_at_zero() {
        let mut b = Battery::new(1.0);
        assert_eq!(b.consume(3.0), 1.0);
        assert_eq!(b.residual(), 0.0);
        assert!(b.is_empty());
        // Further draws are no-ops.
        assert_eq!(b.consume(1.0), 0.0);
        assert_eq!(b.consumed(), 1.0);
    }

    #[test]
    fn zero_capacity_battery() {
        let mut b = Battery::new(0.0);
        assert!(b.is_empty());
        assert_eq!(b.consume(1.0), 0.0);
        assert_eq!(b.consumption_rate(), 0.0);
    }

    #[test]
    fn can_supply_boundary() {
        let b = Battery::new(2.0);
        assert!(b.can_supply(2.0));
        assert!(!b.can_supply(2.0 + 1e-12));
    }

    #[test]
    #[should_panic]
    fn rejects_negative_initial() {
        Battery::new(-1.0);
    }

    proptest! {
        /// Invariants under arbitrary draw sequences: residual ∈ [0, initial],
        /// residual + consumed == initial, consumption rate ∈ [0, 1].
        #[test]
        fn conservation(initial in 0.0..100.0f64, draws in prop::collection::vec(0.0..10.0f64, 0..50)) {
            let mut b = Battery::new(initial);
            for d in draws {
                b.consume(d);
                prop_assert!(b.residual() >= 0.0);
                prop_assert!(b.residual() <= initial + 1e-12);
                prop_assert!((b.residual() + b.consumed() - initial).abs() < 1e-9);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&b.consumption_rate()));
            }
        }
    }
}
