//! Stochastic link models — the ground truth behind the paper's
//! ACK-estimated link probabilities.
//!
//! §4.2: "Poor communication environment or limited storage caches of
//! cluster heads may lead to packet loss so `P^{a_j}_{b_i h_j} = 1` does not
//! always hold." Queue overflow is modelled in `qlec-net`; the
//! *communication-environment* component lives here as a per-transmission
//! Bernoulli trial whose success probability depends on distance.
//!
//! Three models are provided:
//!
//! * [`IdealLink`] — always delivers (isolates queueing effects),
//! * [`DistanceLossLink`] — smooth distance-dependent success probability
//!   with a configurable floor; the default for all experiments,
//! * [`ShadowedLink`] — log-normal shadowing on top of the distance law,
//!   for harsher environments (the underwater example).

use qlec_geom::randx;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A link model maps a transmitter→receiver distance to a delivery
/// probability and can sample individual transmission outcomes.
pub trait LinkModel {
    /// Probability a single transmission over distance `d` succeeds
    /// (radio environment only — queue drops are accounted elsewhere).
    fn delivery_probability(&self, d: f64) -> f64;

    /// Sample one transmission outcome.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> bool {
        rng.gen::<f64>() < self.delivery_probability(d)
    }
}

/// Perfect links: every transmission is delivered.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IdealLink;

impl LinkModel for IdealLink {
    fn delivery_probability(&self, _d: f64) -> f64 {
        1.0
    }
}

/// Distance-dependent delivery probability.
///
/// `P(d) = max(floor, exp(-(d / range)^steepness))` — near-certain delivery
/// at short range, graceful decay around `range`, never below `floor`
/// (an ARQ/physical-layer floor keeps the Q-learning link estimator away
/// from degenerate all-zero estimates).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DistanceLossLink {
    /// Characteristic distance at which `P ≈ e⁻¹ ≈ 0.37` (before flooring).
    pub range: f64,
    /// Decay sharpness (≥ 1; higher = more cliff-like).
    pub steepness: f64,
    /// Lower bound on delivery probability.
    pub floor: f64,
}

impl DistanceLossLink {
    /// Construct with validation.
    pub fn new(range: f64, steepness: f64, floor: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        assert!(
            steepness >= 1.0 && steepness.is_finite(),
            "steepness must be >= 1"
        );
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0,1]");
        DistanceLossLink {
            range,
            steepness,
            floor,
        }
    }

    /// Default tuned to the paper's 200 m cube: reliable up to ~150 m,
    /// degrading beyond — so member→head hops (≤ d_c ≈ 72 m at k = 5)
    /// are near-lossless while long direct-to-BS shots are risky.
    pub fn for_cube(m: f64) -> Self {
        DistanceLossLink::new(1.1 * m, 4.0, 0.05)
    }
}

impl Default for DistanceLossLink {
    fn default() -> Self {
        DistanceLossLink::for_cube(200.0)
    }
}

impl LinkModel for DistanceLossLink {
    fn delivery_probability(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0);
        let p = (-(d / self.range).powf(self.steepness)).exp();
        p.max(self.floor)
    }
}

/// Log-normal shadowing layered on a [`DistanceLossLink`].
///
/// Each transmission draws a shadowing gain `G ~ LogNormal(0, σ)` and
/// succeeds with probability `clamp(P_base(d) · G, floor, 1)`. The *mean*
/// reported by [`LinkModel::delivery_probability`] is the base law, which
/// is what a long-run ACK-ratio estimator converges to up to clamping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShadowedLink {
    pub base: DistanceLossLink,
    /// Standard deviation of the underlying normal (typ. 0.2–1.0).
    pub sigma: f64,
}

impl ShadowedLink {
    /// Construct with validation.
    pub fn new(base: DistanceLossLink, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        ShadowedLink { base, sigma }
    }
}

impl LinkModel for ShadowedLink {
    fn delivery_probability(&self, d: f64) -> f64 {
        self.base.delivery_probability(d)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> bool {
        let gain = randx::log_normal(rng, 0.0, self.sigma);
        let p = (self.base.delivery_probability(d) * gain).clamp(self.base.floor, 1.0);
        rng.gen::<f64>() < p
    }
}

/// Runtime-selectable link model (avoids generics bubbling through the
/// simulator configuration).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum AnyLink {
    Ideal(IdealLink),
    DistanceLoss(DistanceLossLink),
    Shadowed(ShadowedLink),
}

impl Default for AnyLink {
    fn default() -> Self {
        AnyLink::DistanceLoss(DistanceLossLink::default())
    }
}

impl LinkModel for AnyLink {
    fn delivery_probability(&self, d: f64) -> f64 {
        match self {
            AnyLink::Ideal(l) => l.delivery_probability(d),
            AnyLink::DistanceLoss(l) => l.delivery_probability(d),
            AnyLink::Shadowed(l) => l.delivery_probability(d),
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> bool {
        match self {
            AnyLink::Ideal(l) => l.sample(rng, d),
            AnyLink::DistanceLoss(l) => l.sample(rng, d),
            AnyLink::Shadowed(l) => l.sample(rng, d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_always_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = IdealLink;
        assert_eq!(l.delivery_probability(1e9), 1.0);
        assert!((0..1000).all(|_| l.sample(&mut rng, 500.0)));
    }

    #[test]
    fn distance_loss_shape() {
        let l = DistanceLossLink::new(100.0, 4.0, 0.05);
        // Short range: near 1.
        assert!(l.delivery_probability(10.0) > 0.99);
        // At the characteristic range: e^-1.
        assert!((l.delivery_probability(100.0) - (-1f64).exp()).abs() < 1e-12);
        // Far: floored.
        assert_eq!(l.delivery_probability(1000.0), 0.05);
    }

    #[test]
    fn distance_loss_monotone_decreasing() {
        let l = DistanceLossLink::default();
        let mut prev = 1.1;
        for i in 0..100 {
            let p = l.delivery_probability(i as f64 * 5.0);
            assert!(p <= prev + 1e-15, "not monotone at d = {}", i * 5);
            prev = p;
        }
    }

    #[test]
    fn sample_frequency_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = DistanceLossLink::new(100.0, 2.0, 0.0);
        for &d in &[30.0, 100.0, 180.0] {
            let n = 100_000;
            let ok = (0..n).filter(|_| l.sample(&mut rng, d)).count();
            let emp = ok as f64 / n as f64;
            let want = l.delivery_probability(d);
            assert!((emp - want).abs() < 0.01, "d={d}: emp {emp} want {want}");
        }
    }

    #[test]
    fn shadowed_with_zero_sigma_equals_base() {
        let base = DistanceLossLink::new(100.0, 2.0, 0.0);
        let sh = ShadowedLink::new(base, 0.0);
        let mut r1 = StdRng::seed_from_u64(3);
        let n = 50_000;
        let d = 90.0;
        let emp = (0..n).filter(|_| sh.sample(&mut r1, d)).count() as f64 / n as f64;
        assert!((emp - base.delivery_probability(d)).abs() < 0.02);
    }

    #[test]
    fn shadowed_adds_variance_but_keeps_support() {
        let base = DistanceLossLink::new(100.0, 2.0, 0.01);
        let sh = ShadowedLink::new(base, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        // Deliveries still occur at long distance (floor) and failures at
        // short distance (shadowing can push probability below 1).
        let far_ok = (0..20_000).filter(|_| sh.sample(&mut rng, 500.0)).count();
        assert!(far_ok > 0, "floor should keep far links alive");
        let near_fail = (0..20_000).filter(|_| !sh.sample(&mut rng, 40.0)).count();
        assert!(near_fail > 0, "shadowing should cause some near failures");
    }

    #[test]
    fn any_link_dispatch() {
        let mut rng = StdRng::seed_from_u64(5);
        let links = [
            AnyLink::Ideal(IdealLink),
            AnyLink::DistanceLoss(DistanceLossLink::default()),
            AnyLink::Shadowed(ShadowedLink::new(DistanceLossLink::default(), 0.5)),
        ];
        for l in links {
            let p = l.delivery_probability(100.0);
            assert!((0.0..=1.0).contains(&p));
            let _ = l.sample(&mut rng, 100.0);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_floor() {
        DistanceLossLink::new(100.0, 2.0, 1.5);
    }

    proptest! {
        /// Delivery probabilities are valid probabilities for any distance.
        #[test]
        fn probability_in_unit_interval(d in 0.0..100_000.0f64, range in 1.0..1000.0f64,
                                        steep in 1.0..8.0f64, floor in 0.0..1.0f64) {
            let l = DistanceLossLink::new(range, steep, floor);
            let p = l.delivery_probability(d);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= floor);
        }
    }
}
