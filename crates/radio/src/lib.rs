//! Radio-layer substrate for the QLEC reproduction.
//!
//! Three pieces:
//!
//! * [`model::RadioModel`] — the first-order radio energy model of
//!   Heinzelman et al. \[4\], exactly as the paper uses it: Eq. 6 (per-round
//!   network dissipation), Eq. 18 (the transmission-cost term `y(b_i, h_j)`
//!   of the Q-learning reward), and the free-space/multi-path crossover at
//!   `d₀ = √(ε_fs/ε_mp)`.
//! * [`battery::Battery`] — per-node residual energy `E_i(r)` with the
//!   death-line rule of §5.1 ("the network dies when there exists one
//!   sensor possessing less energy than a given energy death line").
//! * [`link`] — stochastic packet-delivery models producing the ground
//!   truth behind the ACK-estimated link probabilities `P^{a_j}_{b_i h_j}`
//!   of §4.2 ("poor communication environment … may lead to packet loss").

pub mod battery;
pub mod link;
pub mod model;

pub use battery::Battery;
pub use link::{DistanceLossLink, IdealLink, LinkModel, ShadowedLink};
pub use model::RadioModel;
