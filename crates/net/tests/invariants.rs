//! Property-based invariants of the round engine: for randomized
//! configurations, deployments, and protocols, the simulator must
//! conserve packets, keep PDR in range, and never create energy.

use proptest::prelude::*;
use qlec_net::protocol::{DirectToBsProtocol, GreedyEnergyProtocol};
use qlec_net::queue::{ChQueue, Offer};
use qlec_net::{NetworkBuilder, NodeId, Packet, Protocol, SimConfig, Simulator};
use qlec_radio::link::{AnyLink, DistanceLossLink, IdealLink};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation, metric ranges, and energy bounds hold for arbitrary
    /// small configurations of either reference protocol.
    #[test]
    fn simulation_invariants(
        seed in 0u64..500,
        n in 5usize..40,
        lambda in 0.5f64..20.0,
        k in 1usize..6,
        rounds in 1u32..6,
        queue_capacity in 1usize..80,
        ideal in any::<bool>(),
        greedy in any::<bool>(),
        member_retries in 0u32..4,
        compression in 0.0f64..1.0,
    ) {
        let link = if ideal {
            AnyLink::Ideal(IdealLink)
        } else {
            AnyLink::DistanceLoss(DistanceLossLink::new(150.0, 3.0, 0.02))
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new().link(link).uniform_cube(&mut rng, n, 200.0, 2.0);
        let initial = net.total_initial();

        let mut cfg = SimConfig::paper(lambda);
        cfg.rounds = rounds;
        cfg.queue_capacity = queue_capacity;
        cfg.member_retries = member_retries;
        cfg.compression = compression;

        let mut greedy_p;
        let mut direct_p;
        let protocol: &mut dyn Protocol = if greedy {
            greedy_p = GreedyEnergyProtocol::new(k);
            &mut greedy_p
        } else {
            direct_p = DirectToBsProtocol;
            &mut direct_p
        };

        let report = Simulator::builder(net).config(cfg).build().run(protocol, &mut rng);

        prop_assert!(report.totals.is_conserved(), "{:?}", report.totals);
        prop_assert!((0.0..=1.0).contains(&report.pdr()));
        prop_assert!(report.total_energy() >= 0.0);
        prop_assert!(report.total_energy() <= initial + 1e-9);
        let b = report.energy_breakdown();
        prop_assert!((b.total() - report.total_energy()).abs() < 1e-6);
        for r in &report.rounds {
            prop_assert!(r.packets.is_conserved());
            prop_assert!(r.min_residual >= 0.0);
            prop_assert!(r.alive_end <= n);
        }
        for &rate in &report.consumption_rates {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&rate));
        }
        if let Some(l) = report.mean_latency() {
            prop_assert!(l >= 0.0 && l.is_finite());
        }
    }

    /// The head queue never exceeds its capacity, never accepts past the
    /// deadline, and accounts every offer exactly once.
    #[test]
    fn queue_invariants(
        capacity in 1usize..30,
        service_time in 0.05f64..5.0,
        deadline in 1.0f64..100.0,
        gaps in prop::collection::vec(0.0f64..3.0, 1..200),
    ) {
        let mut q = ChQueue::new(capacity, service_time, deadline);
        let mut t = 0.0;
        let mut offered = 0u64;
        let mut accepted = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            t += gap;
            let pkt = Packet { id: i as u64, src: NodeId(0), created_at: t, bits: 100 };
            offered += 1;
            match q.offer(pkt, t) {
                Offer::Accepted { completes_at } => {
                    accepted += 1;
                    prop_assert!(completes_at >= t + service_time - 1e-12);
                    prop_assert!(completes_at <= deadline + 1e-12);
                }
                Offer::Dropped(_) => {}
            }
            prop_assert!(q.occupancy() <= capacity);
        }
        prop_assert_eq!(accepted, q.processed().len() as u64);
        prop_assert_eq!(offered, accepted + q.drops_full() + q.drops_deadline());
        // FIFO completions are strictly increasing.
        for w in q.processed().windows(2) {
            prop_assert!(w[0].1 < w[1].1 + 1e-12);
        }
    }

    /// Service capacity bound: a queue cannot process more packets than
    /// `deadline / service_time` regardless of the arrival pattern.
    #[test]
    fn queue_respects_service_capacity(
        capacity in 1usize..50,
        arrivals in prop::collection::vec(0.0f64..50.0, 1..300),
    ) {
        let service_time = 0.5;
        let deadline = 50.0;
        let mut q = ChQueue::new(capacity, service_time, deadline);
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for (i, &t) in sorted.iter().enumerate() {
            let pkt = Packet { id: i as u64, src: NodeId(0), created_at: t, bits: 1 };
            let _ = q.offer(pkt, t);
        }
        let max_served = (deadline / service_time) as usize;
        prop_assert!(q.processed().len() <= max_served);
    }

    /// `SimConfig::threads` is a pure throughput knob: for arbitrary
    /// configurations and either reference protocol (both expose a
    /// `RoutePlanner`, so multi-threaded runs take the rayon fan-out
    /// path), the report serializes to exactly the single-threaded
    /// bytes.
    #[test]
    fn thread_count_never_changes_the_report(
        seed in 0u64..500,
        n in 5usize..40,
        lambda in 0.5f64..20.0,
        k in 1usize..6,
        rounds in 1u32..5,
        queue_capacity in 1usize..80,
        member_retries in 0u32..4,
        greedy in any::<bool>(),
        threads in 2usize..9,
    ) {
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = NetworkBuilder::new()
                .link(AnyLink::DistanceLoss(DistanceLossLink::new(150.0, 3.0, 0.02)))
                .uniform_cube(&mut rng, n, 200.0, 2.0);
            let mut cfg = SimConfig::paper(lambda);
            cfg.rounds = rounds;
            cfg.queue_capacity = queue_capacity;
            cfg.member_retries = member_retries;
            cfg.threads = threads;
            let mut greedy_p;
            let mut direct_p;
            let protocol: &mut dyn Protocol = if greedy {
                greedy_p = GreedyEnergyProtocol::new(k);
                &mut greedy_p
            } else {
                direct_p = DirectToBsProtocol;
                &mut direct_p
            };
            let report = Simulator::builder(net).config(cfg).build().run(protocol, &mut rng);
            // `report.threads` records the resolved worker count — the
            // one field that tracks the knob under test — so compare the
            // report without it.
            let mut value = serde_json::to_value(&report).expect("report serializes");
            if let serde::Value::Object(fields) = &mut value {
                fields.retain(|(key, _)| key != "threads");
            }
            serde_json::to_string(&value).expect("report serializes")
        };
        prop_assert_eq!(run(1), run(threads));
    }
}
