//! Packets and routing targets.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Where a transmission is aimed: a cluster head or the base station.
///
/// These are exactly the actions of the paper's per-node MDP — the action
/// set `A(b_i)` contains one action per cluster head `h_j` plus direct
/// communication with `h_BS` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Forward to cluster head `h_j`.
    Head(NodeId),
    /// Transmit directly to the base station.
    Bs,
}

/// One application packet of `L` bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id within a simulation run.
    pub id: u64,
    /// Originating node.
    pub src: NodeId,
    /// Creation time, in slots from the start of the simulation.
    pub created_at: f64,
    /// Payload size in bits (the paper's `L`).
    pub bits: u64,
}

impl Packet {
    /// Latency if delivered at `time`.
    #[inline]
    pub fn latency_at(&self, time: f64) -> f64 {
        time - self.created_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_delivery_minus_creation() {
        let p = Packet {
            id: 1,
            src: NodeId(0),
            created_at: 10.0,
            bits: 2000,
        };
        assert_eq!(p.latency_at(14.5), 4.5);
        assert_eq!(p.latency_at(10.0), 0.0);
    }

    #[test]
    fn target_equality() {
        assert_eq!(Target::Head(NodeId(3)), Target::Head(NodeId(3)));
        assert_ne!(Target::Head(NodeId(3)), Target::Head(NodeId(4)));
        assert_ne!(Target::Head(NodeId(3)), Target::Bs);
    }
}
