//! The deployment: nodes, base station, radio and link models.
//!
//! §3.1: "We assume `N` nodes are randomly distributed in an `M × M × M`
//! cube. The green node in the center is the sink node." [`NetworkBuilder`]
//! constructs that canonical deployment (plus arbitrary ones for the
//! power-plant dataset), and [`Network`] exposes the aggregate quantities
//! the algorithms read: average residual energy (Eq. 1–2), mean distance to
//! the BS (`d_toBS`, Theorem 1), and per-node accessors.
//!
//! Node state lives in a struct-of-arrays [`NodeArena`]; `node`/`node_mut`
//! hand out [`NodeRef`]/[`NodeMut`] views that read like the old
//! array-of-structs [`Node`], which survives as the builder/serde snapshot
//! type.

use crate::arena::{NodeArena, NodeMut, NodeRef};
use crate::node::{Node, NodeId, Role};
use qlec_geom::sample::uniform_in_aabb;
use qlec_geom::{Aabb, Vec3};
use qlec_radio::link::AnyLink;
use qlec_radio::RadioModel;
use rand::Rng;
use serde::{Deserialize, Error, Serialize, Value};

/// A sensor-network deployment.
#[derive(Debug, Clone)]
pub struct Network {
    arena: NodeArena,
    bs_pos: Vec3,
    bounds: Aabb,
    pub radio: RadioModel,
    pub link: AnyLink,
}

impl Network {
    /// Immutable views of all nodes in id order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = NodeRef<'_>> {
        self.arena.iter()
    }

    /// One node by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        self.arena.get(id.index())
    }

    /// One node by id, mutable.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> NodeMut<'_> {
        self.arena.get_mut(id.index())
    }

    /// The struct-of-arrays storage (column access for hot loops).
    #[inline]
    pub fn arena(&self) -> &NodeArena {
        &self.arena
    }

    /// Mutable struct-of-arrays storage.
    #[inline]
    pub fn arena_mut(&mut self) -> &mut NodeArena {
        &mut self.arena
    }

    /// Number of nodes `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Base-station (sink) position.
    #[inline]
    pub fn bs_pos(&self) -> Vec3 {
        self.bs_pos
    }

    /// Deployment bounding volume.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The paper's `M`: the longest side of the deployment volume.
    pub fn side_length(&self) -> f64 {
        let e = self.bounds.extent();
        e.x.max(e.y).max(e.z)
    }

    /// Ids of all nodes.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.arena.len() as u32).map(NodeId)
    }

    /// Ids of nodes that can still participate.
    pub fn alive_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.arena.len())
            .filter(|&i| self.arena.is_alive(i))
            .map(|i| NodeId(i as u32))
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        (0..self.arena.len())
            .filter(|&i| self.arena.is_alive(i))
            .count()
    }

    /// Euclidean distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pos = self.arena.positions();
        pos[a.index()].dist(pos[b.index()])
    }

    /// Euclidean distance from a node to the base station.
    #[inline]
    pub fn dist_to_bs(&self, id: NodeId) -> f64 {
        self.arena.positions()[id.index()].dist(self.bs_pos)
    }

    /// Mean node→BS distance over all nodes — the `d_toBS` approximation
    /// Theorem 1 uses (following \[1\]: "d_toBS can be approximated by the
    /// average distance between the nodes and BS").
    pub fn mean_dist_to_bs(&self) -> f64 {
        if self.arena.is_empty() {
            return 0.0;
        }
        self.arena
            .positions()
            .iter()
            .map(|p| p.dist(self.bs_pos))
            .sum::<f64>()
            / self.arena.len() as f64
    }

    /// Sum of residual energies over all nodes.
    pub fn total_residual(&self) -> f64 {
        self.arena.batteries().iter().map(|b| b.residual()).sum()
    }

    /// Sum of initial energies (`E_initial` of Eq. 2 is this total).
    pub fn total_initial(&self) -> f64 {
        self.arena.batteries().iter().map(|b| b.initial()).sum()
    }

    /// Total energy consumed so far (the Fig. 3(b) quantity).
    pub fn total_consumed(&self) -> f64 {
        self.arena.batteries().iter().map(|b| b.consumed()).sum()
    }

    /// *Actual* average residual energy per node at the current instant —
    /// what Eq. 2 estimates without global knowledge. Algorithms may use
    /// either; the `deec_improved` module exposes both so the estimate's
    /// effect is testable.
    pub fn mean_residual(&self) -> f64 {
        if self.arena.is_empty() {
            return 0.0;
        }
        self.total_residual() / self.arena.len() as f64
    }

    /// Node positions in id order (for building spatial indexes).
    pub fn positions(&self) -> Vec<Vec3> {
        self.arena.positions().to_vec()
    }

    /// Node positions in id order, without allocating — feed this to
    /// [`qlec_geom::UniformGrid::build`] instead of [`Network::positions`]
    /// when the `Vec` copy is not needed.
    pub fn iter_positions(&self) -> impl Iterator<Item = Vec3> + '_ {
        self.arena.positions().iter().copied()
    }

    /// Reset every node's role to member (start of a round). One sweep
    /// over the role column — the other node fields stay cold.
    pub fn reset_roles(&mut self) {
        self.arena.roles_mut().fill(Role::Member);
    }

    /// The minimum residual energy over all nodes (`None` when empty) —
    /// the death-line comparison reads this.
    pub fn min_residual(&self) -> Option<f64> {
        self.arena
            .batteries()
            .iter()
            .map(|b| b.residual())
            .min_by(|a, b| a.total_cmp(b))
    }
}

// Hand-written serde keeping the pre-SoA wire shape: a `nodes` array of
// snapshot records plus the scalar fields, so stored deployments are
// layout-agnostic.
impl Serialize for Network {
    fn to_value(&self) -> Value {
        let nodes: Vec<Node> = (0..self.arena.len())
            .map(|i| self.arena.snapshot(i))
            .collect();
        Value::Object(vec![
            ("nodes".to_string(), nodes.to_value()),
            ("bs_pos".to_string(), self.bs_pos.to_value()),
            ("bounds".to_string(), self.bounds.to_value()),
            ("radio".to_string(), self.radio.to_value()),
            ("link".to_string(), self.link.to_value()),
        ])
    }
}

impl Deserialize for Network {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::missing_field("Network", name))
        };
        let nodes: Vec<Node> = Deserialize::from_value(field("nodes")?)?;
        Ok(Network {
            arena: NodeArena::from_nodes(nodes),
            bs_pos: Deserialize::from_value(field("bs_pos")?)?,
            bounds: Deserialize::from_value(field("bounds")?)?,
            radio: Deserialize::from_value(field("radio")?)?,
            link: Deserialize::from_value(field("link")?)?,
        })
    }
}

/// Builder for [`Network`] deployments.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    radio: RadioModel,
    link: AnyLink,
    bs_pos: Option<Vec3>,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            radio: RadioModel::paper(),
            link: AnyLink::default(),
            bs_pos: None,
        }
    }
}

impl NetworkBuilder {
    /// Start from defaults (paper radio constants, distance-loss link).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the radio energy model.
    pub fn radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Override the link model.
    pub fn link(mut self, link: AnyLink) -> Self {
        self.link = link;
        self
    }

    /// Place the base station somewhere other than the volume centre.
    pub fn bs_at(mut self, pos: Vec3) -> Self {
        self.bs_pos = Some(pos);
        self
    }

    fn assemble(self, nodes: Vec<Node>, bounds: Aabb) -> Network {
        Network {
            arena: NodeArena::from_nodes(nodes),
            bs_pos: self.bs_pos.unwrap_or_else(|| bounds.center()),
            bounds,
            radio: self.radio,
            link: self.link,
        }
    }

    /// The paper's canonical deployment: `n` nodes uniform in `[0, m]³`,
    /// all with `initial_energy` joules, BS at the cube centre (unless
    /// overridden).
    pub fn uniform_cube<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        n: usize,
        m: f64,
        initial_energy: f64,
    ) -> Network {
        let bounds = Aabb::cube(m);
        let nodes = (0..n)
            .map(|i| {
                Node::new(
                    NodeId(i as u32),
                    uniform_in_aabb(rng, &bounds),
                    initial_energy,
                )
            })
            .collect();
        self.assemble(nodes, bounds)
    }

    /// A *two-tier heterogeneous* deployment in the DEEC tradition
    /// (\[11\] targets "heterogeneous wireless sensor networks"): a
    /// fraction `advanced_fraction` of the `n` nodes carries
    /// `(1 + advanced_boost)` times the normal energy. Advanced nodes
    /// are chosen uniformly (the first `⌈fraction·n⌉` ids after a
    /// shuffle-free deterministic stride, so runs stay reproducible).
    ///
    /// # Panics
    /// Panics if `advanced_fraction ∉ [0, 1]` or `advanced_boost < 0`.
    pub fn heterogeneous_cube<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        n: usize,
        m: f64,
        normal_energy: f64,
        advanced_fraction: f64,
        advanced_boost: f64,
    ) -> Network {
        assert!(
            (0.0..=1.0).contains(&advanced_fraction),
            "advanced_fraction must be in [0,1]"
        );
        assert!(advanced_boost >= 0.0, "advanced_boost must be non-negative");
        let bounds = Aabb::cube(m);
        let advanced = (advanced_fraction * n as f64).round() as usize;
        let nodes = (0..n)
            .map(|i| {
                let energy = if i < advanced {
                    normal_energy * (1.0 + advanced_boost)
                } else {
                    normal_energy
                };
                Node::new(NodeId(i as u32), uniform_in_aabb(rng, &bounds), energy)
            })
            .collect();
        self.assemble(nodes, bounds)
    }

    /// Arbitrary deployment from `(position, initial_energy)` pairs — the
    /// §5.3 power-plant network enters through here.
    ///
    /// # Panics
    /// Panics if `spec` is empty (a network needs at least one node to
    /// define bounds) or any energy is negative.
    pub fn from_nodes(self, spec: &[(Vec3, f64)]) -> Network {
        assert!(!spec.is_empty(), "from_nodes requires at least one node");
        let positions: Vec<Vec3> = spec.iter().map(|&(p, _)| p).collect();
        let bounds = Aabb::enclosing(&positions).expect("non-empty");
        let nodes = spec
            .iter()
            .enumerate()
            .map(|(i, &(pos, e))| Node::new(NodeId(i as u32), pos, e))
            .collect();
        self.assemble(nodes, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::sample::MEAN_DIST_TO_CENTER_UNIT_CUBE;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_network() -> Network {
        let mut rng = StdRng::seed_from_u64(5);
        NetworkBuilder::new().uniform_cube(&mut rng, 100, 200.0, 5.0)
    }

    #[test]
    fn uniform_cube_shape() {
        let net = paper_network();
        assert_eq!(net.len(), 100);
        assert_eq!(net.bs_pos(), Vec3::splat(100.0));
        assert_eq!(net.side_length(), 200.0);
        assert_eq!(net.total_initial(), 500.0);
        assert_eq!(net.total_residual(), 500.0);
        assert_eq!(net.total_consumed(), 0.0);
        assert_eq!(net.alive_count(), 100);
        for n in net.iter() {
            assert!(net.bounds().contains(n.pos));
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let net = paper_network();
        for (i, id) in net.ids().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(net.node(id).id, id);
        }
    }

    #[test]
    fn mean_dist_to_bs_near_constant() {
        // With 100 nodes the sample mean is noisy; use a bigger draw.
        let mut rng = StdRng::seed_from_u64(6);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, 20_000, 200.0, 5.0);
        let want = MEAN_DIST_TO_CENTER_UNIT_CUBE * 200.0;
        let got = net.mean_dist_to_bs();
        assert!((got - want).abs() / want < 0.02, "got {got} want {want}");
    }

    #[test]
    fn energy_accounting_flows_through() {
        let mut net = paper_network();
        let id = NodeId(0);
        net.node_mut(id).battery.consume(2.0);
        assert_eq!(net.total_consumed(), 2.0);
        assert_eq!(net.total_residual(), 498.0);
        assert!((net.mean_residual() - 4.98).abs() < 1e-12);
        assert_eq!(net.min_residual(), Some(3.0));
    }

    #[test]
    fn alive_tracking() {
        let mut net = paper_network();
        net.node_mut(NodeId(3)).battery.consume(10.0);
        assert_eq!(net.alive_count(), 99);
        assert!(net.alive_ids().all(|id| id != NodeId(3)));
    }

    #[test]
    fn from_nodes_heterogeneous() {
        let spec = [
            (Vec3::new(0.0, 0.0, 0.0), 1.0),
            (Vec3::new(10.0, 0.0, 0.0), 2.0),
            (Vec3::new(10.0, 10.0, 4.0), 3.0),
        ];
        let net = NetworkBuilder::new().from_nodes(&spec);
        assert_eq!(net.len(), 3);
        assert_eq!(net.total_initial(), 6.0);
        assert_eq!(net.bs_pos(), Vec3::new(5.0, 5.0, 2.0));
        assert_eq!(net.node(NodeId(1)).residual(), 2.0);
        assert_eq!(net.distance(NodeId(0), NodeId(1)), 10.0);
    }

    #[test]
    fn bs_override() {
        let net = NetworkBuilder::new()
            .bs_at(Vec3::ZERO)
            .from_nodes(&[(Vec3::new(3.0, 4.0, 0.0), 1.0)]);
        assert_eq!(net.bs_pos(), Vec3::ZERO);
        assert_eq!(net.dist_to_bs(NodeId(0)), 5.0);
    }

    #[test]
    fn reset_roles() {
        let mut net = paper_network();
        net.node_mut(NodeId(1)).promote_to_head(0);
        net.reset_roles();
        assert!(net.iter().all(|n| n.role == Role::Member));
        // Rotation bookkeeping survives the reset.
        assert_eq!(net.node(NodeId(1)).last_head_round, Some(0));
    }

    #[test]
    #[should_panic]
    fn from_nodes_rejects_empty() {
        NetworkBuilder::new().from_nodes(&[]);
    }

    #[test]
    fn heterogeneous_two_tier_energies() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = NetworkBuilder::new().heterogeneous_cube(&mut rng, 100, 200.0, 5.0, 0.2, 1.0);
        assert_eq!(net.len(), 100);
        let advanced = net
            .iter()
            .filter(|n| (n.battery.initial() - 10.0).abs() < 1e-12)
            .count();
        let normal = net
            .iter()
            .filter(|n| (n.battery.initial() - 5.0).abs() < 1e-12)
            .count();
        assert_eq!(advanced, 20);
        assert_eq!(normal, 80);
        // Total: 80·5 + 20·10 = 600.
        assert!((net.total_initial() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_zero_fraction_is_homogeneous() {
        let mut rng = StdRng::seed_from_u64(10);
        let net = NetworkBuilder::new().heterogeneous_cube(&mut rng, 50, 200.0, 5.0, 0.0, 3.0);
        assert!(net.iter().all(|n| n.battery.initial() == 5.0));
    }

    #[test]
    #[should_panic]
    fn heterogeneous_rejects_bad_fraction() {
        let mut rng = StdRng::seed_from_u64(11);
        NetworkBuilder::new().heterogeneous_cube(&mut rng, 10, 200.0, 5.0, 1.5, 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_node_state() {
        let mut net = paper_network();
        net.node_mut(NodeId(7)).promote_to_head(4);
        net.node_mut(NodeId(7)).battery.consume(1.25);
        *net.node_mut(NodeId(9)).online = false;
        let v = net.to_value();
        let back = Network::from_value(&v).expect("round trip");
        assert_eq!(back.len(), net.len());
        assert_eq!(back.node(NodeId(7)).last_head_round, Some(4));
        assert_eq!(
            back.node(NodeId(7)).residual(),
            net.node(NodeId(7)).residual()
        );
        assert!(!back.node(NodeId(9)).online);
        assert_eq!(back.bs_pos(), net.bs_pos());
        assert_eq!(back.total_residual(), net.total_residual());
    }
}
