//! Stage-2 merge of the round engine: committing the planned member
//! packets against the live network.
//!
//! Stage 1 (`sim.rs`) routes every member's packets against the frozen
//! post-election network, in parallel. This module is stage 2: the plans
//! meet merge-time reality — head batteries that drain as receptions
//! land, queues that fill, heads that die mid-round — under one explicit
//! API ([`MergePlan`] in, [`MergeOutcome`] out) with two entry points:
//!
//! * [`commit_sequential`] — the reference path (`threads = 1`): one
//!   ordered walk over the round's events, nothing else. This is the
//!   golden oracle every other path must match byte-for-byte.
//! * [`commit_sharded`] — the pool path (`threads > 1`): a two-phase
//!   *reservation merge*. A parallel pre-pass ([`reserve`]) shards the
//!   round by target head and, per shard, replays that head's battery
//!   drain and queue occupancy against only its own shard's events in
//!   arrival order, producing a per-event verdict buffer. A sequential
//!   frontier sweep then promotes the longest provable prefix of those
//!   verdicts to **proven-clean** reservations; the ordered walk
//!   interleaves the buffered verdicts with the sequential residue by
//!   global `(time, node)` key.
//!
//! # The residue taxonomy
//!
//! A planned packet ends in one of four merge-time fates; only the last
//! needs the master RNG:
//!
//! * **clean accept** — the terminal hop's head is alive at reception
//!   and its queue accepts. No RNG.
//! * **clean refusal** — the terminal hop is refused (dead head, full
//!   queue, or deadline miss) *and* the plan already spent the whole
//!   retry budget, so the refusal is terminal. No RNG. (A refusal does
//!   not change a queue's accept-state for later offers, so clean
//!   refusals do not taint the shard replay.)
//! * **local resolution** — the plan never reaches a live head: a BS
//!   delivery, link-failure exhaustion, or the sender's own planned
//!   battery death. No RNG, no shared state beyond the sender.
//! * **live retarget residue** — a refusal with retry budget left. The
//!   packet re-enters `choose_target` against the live network and every
//!   hop samples the *master* RNG, so it must run in exact global order.
//!
//! The measured N=10k saturated profile (λ=5, see `DESIGN.md`) puts
//! ~96% of member packets in the residue: the clean frontier closes at
//! the round's first live retarget, and under saturation that happens
//! early — the conflicts that close it split ~85% queue-full, ~15%
//! deadline, ~0% dead-head. That fraction is a property of the workload
//! (Q-routing herds all planners onto the same frozen value table while
//! the queues saturate), not of the merge — an uncongested λ=20 run at
//! the same N classifies 93% clean (residue fraction 0.07). The profiler's
//! `merge.clean_commits` / `merge.residue` counters and the scale
//! bench's `residue_fraction` report it honestly, and `--compare` gates
//! it as a regression (+0.05 absolute) rather than an absolute target.
//!
//! # Confluence and byte-identity
//!
//! Both entry points run the *same* walk function, so the event stream,
//! every battery draw, and every RNG consumption are byte-identical
//! between them by construction. Clean commits of disjoint heads are
//! confluent — they touch disjoint state (their own head's battery and
//! queue, plus the sender-local ledger the planner already fixed) — so
//! the per-shard buffered replay computes exactly the verdicts the
//! ordered walk will observe, as long as every event before a packet's
//! reservation is itself clean. That is what the frontier sweep
//! enforces: a reservation is only issued while *all* preceding member
//! packets are proven clean (the first unproven packet closes the
//! frontier for the rest of the round), so within the reserved prefix
//! no live continuation has perturbed any battery or queue behind the
//! replay's back. The classifier is a conservative under-approximation;
//! the walk `assert!`s every reservation against the live outcome, so a
//! classifier bug can only fail loudly — it cannot bend the byte
//! stream, because the walk's behaviour never branches on a
//! reservation. `tests/parallel_equivalence.rs` locks the identity at
//! every thread count, with and without fault plans.

use crate::metrics::{EnergyBreakdown, PacketCounters};
use crate::network::Network;
use crate::node::NodeId;
use crate::packet::{Packet, Target};
use crate::protocol::{PlanScratch, Protocol};
use crate::queue::{ChQueue, Offer, QueueDrop};
use crate::sim::SimConfig;
use qlec_fault::FaultDriver;
use qlec_geom::stats::Welford;
use qlec_obs::{Event, ObserverSet, PacketFate};
use qlec_radio::link::{AnyLink, LinkModel};
use rand::{Rng, RngCore};
use rayon::prelude::*;

/// Terminal failure cause of a member packet, attributed to its final
/// attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FailCause {
    Dead,
    Link,
    QueueFull,
    Deadline,
}

/// One planned radio attempt of a member packet (stage 1). `e` is the
/// *requested* transmit draw; the merge replays it against the live
/// battery with the same `can_supply`/`consume` guards as a live
/// attempt, so a battery death planned in stage 1 (or induced by an
/// earlier live continuation) resolves identically.
#[derive(Clone, Copy)]
pub(crate) enum PlannedAttempt {
    /// The hop failed: a radio/link loss, or the sender's battery could
    /// not cover the draw (the merge's `can_supply` guard re-detects
    /// the death).
    Failed { target: Target, e: f64 },
    /// A direct hop to the BS succeeded.
    DeliveredBs { e: f64 },
    /// The radio hop to head `h` landed; the queue verdict (and the
    /// head's aliveness at reception) resolve at merge time.
    ToHead { h: NodeId, e: f64 },
}

/// Stage-1 plan for one member packet: its attempts in order. Empty when
/// the sender was already dead at the arrival time (the merge's live
/// aliveness check skips the packet — a dead plan implies a dead live
/// battery, since the live trajectory only ever drains more).
pub(crate) type PacketPlan = Vec<PlannedAttempt>;

/// Classifier-facing metadata for one planned packet, computed by the
/// stage-1 planner alongside the attempt list. It captures the only
/// facts the reservation pre-pass needs: whether the plan touches a
/// head at all, when the terminal reception lands, and whether a
/// merge-time refusal would still have retry budget (and therefore
/// request master-RNG draws).
#[derive(Clone, Copy, Debug)]
pub(crate) enum PacketMeta {
    /// Empty plan: the sender was already dead at the arrival time.
    Skip,
    /// The plan resolves on sender-local state only — a BS delivery,
    /// link-failure exhaustion, or the sender's own planned battery
    /// death. No head, no queue, no master RNG.
    Local,
    /// The plan's terminal hop lands on head `h`, offered to its queue
    /// at `offer_time`. `exhausted` means the plan already spent the
    /// whole retry budget, so a merge-time refusal is terminal rather
    /// than a live-retarget continuation.
    Candidate {
        h: NodeId,
        offer_time: f64,
        exhausted: bool,
    },
}

/// One member node's stage-1 state for the current round.
pub(crate) struct PlannedNode {
    pub(crate) src: NodeId,
    /// This node's arrival times, ascending.
    pub(crate) arrivals: Vec<f64>,
    /// One plan per arrival, same order.
    pub(crate) packets: Vec<PacketPlan>,
    /// One classifier record per arrival, same order.
    pub(crate) meta: Vec<PacketMeta>,
    /// The planner's scratch, absorbed into the protocol after the merge.
    pub(crate) scratch: Option<PlanScratch>,
    /// Merge read position into `packets`.
    pub(crate) cursor: usize,
}

/// Sample one radio transmission, honouring any active fault directives:
/// a BS outage fails every hop whose receiver is the BS (the caller has
/// already charged the transmit energy), and an active per-pair
/// degradation scales the loss rate — `p_eff = 1 − min(1, (1 − p) · mult)`.
/// When no directive covers the pair this is exactly `link.sample` with
/// an identical RNG draw count, so rounds (and whole runs) without active
/// faults reproduce the baseline random sequence.
pub(crate) fn sample_hop(
    faults: Option<&FaultDriver>,
    link: &AnyLink,
    rng: &mut dyn RngCore,
    d: f64,
    src: u32,
    dst: Option<u32>,
) -> bool {
    let Some(f) = faults else {
        return link.sample(rng, d);
    };
    if dst.is_none() && f.bs_down() {
        return false;
    }
    let mult = f.loss_multiplier(src, dst);
    if mult == 1.0 {
        return link.sample(rng, d);
    }
    let p = 1.0 - ((1.0 - link.delivery_probability(d)) * mult).min(1.0);
    rng.gen::<f64>() < p
}

/// The immutable inputs of one round's merge: the time-ordered event
/// list, the per-node lookup tables built during election/traffic, and
/// the round configuration.
pub(crate) struct MergePlan<'a> {
    /// (arrival time, source) packet-generation events, time-ordered.
    pub(crate) events: &'a [(f64, NodeId)],
    /// node index → position in the member-plan list (`-1` = unplanned:
    /// a head, a dead node, or no arrivals).
    pub(crate) plan_index: &'a [i32],
    /// node index → this round's queue slot (`-1` = not a head).
    pub(crate) head_slot: &'a [i32],
    /// This round's elected heads, in election order (slot `s` belongs
    /// to `heads[s]`).
    pub(crate) heads: &'a [NodeId],
    pub(crate) round: u32,
    pub(crate) cfg: &'a SimConfig,
}

/// The mutable simulation state the merge commits into. Every field is a
/// disjoint borrow of the round engine's state, so the walk can thread
/// battery draws, queue verdicts, protocol hooks, and event emissions
/// exactly as the pre-extraction inline loop did.
pub(crate) struct MergeState<'a, P: Protocol + ?Sized> {
    pub(crate) net: &'a mut Network,
    pub(crate) protocol: &'a mut P,
    /// The master RNG — consumed only by live continuations (retarget
    /// link samples), never by clean replays, which is why walk order
    /// alone preserves the sequential draw order.
    pub(crate) rng: &'a mut dyn RngCore,
    pub(crate) faults: Option<&'a FaultDriver>,
    /// One queue per head, indexed by queue slot.
    pub(crate) queues: &'a mut [ChQueue],
    pub(crate) obs: &'a ObserverSet,
    pub(crate) counters: &'a mut PacketCounters,
    pub(crate) latency: &'a mut Welford,
    pub(crate) breakdown: &'a mut EnergyBreakdown,
    pub(crate) next_packet_id: &'a mut u64,
}

/// What one round's merge did, for the profiler, the scale bench, and
/// the equivalence tests: how often a plan ran into merge-time reality
/// (split by cause), how many packets entered the live-retargeting
/// continuation, how many the reservation pre-pass proved clean, and
/// the shape of the per-head commit shards.
///
/// `conflicts`/`retargets` and the cause split are walk-observed and
/// thread-invariant; `clean_commits`/`residue`/`shards` describe the
/// reservation pre-pass, which only runs on the pool path (they stay 0
/// on the `threads = 1` reference path).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Planned hops refused by live state: a head dead at reception or
    /// a queue verdict the plan could not know.
    pub(crate) conflicts: u64,
    /// Packets that entered the master-RNG live continuation.
    pub(crate) retargets: u64,
    /// Distinct heads with at least one terminally-planned packet
    /// (sharded path only; 0 on the reference path).
    pub(crate) shards: u64,
    /// Packet count of the largest commit shard (sharded path only).
    pub(crate) largest_shard: u64,
    /// Conflicts whose cause was a head dead at reception.
    pub(crate) conflict_dead_head: u64,
    /// Conflicts whose cause was a full queue.
    pub(crate) conflict_queue_full: u64,
    /// Conflicts whose cause was the fusion deadline.
    pub(crate) conflict_deadline: u64,
    /// Member packets the reservation pre-pass proved clean (sharded
    /// path only).
    pub(crate) clean_commits: u64,
    /// Member packets left to the live walk: the frontier-closing packet
    /// and everything after it (sharded path only).
    pub(crate) residue: u64,
}

impl MergeOutcome {
    /// Planned hops refused by live merge state (dead head at reception
    /// or a queue verdict stage 1 could not know).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Packets that entered the master-RNG live-retarget continuation.
    pub fn retargets(&self) -> u64 {
        self.retargets
    }

    /// Conflicts caused by a head dead at reception.
    pub fn conflict_dead_head(&self) -> u64 {
        self.conflict_dead_head
    }

    /// Conflicts caused by a full head queue.
    pub fn conflict_queue_full(&self) -> u64 {
        self.conflict_queue_full
    }

    /// Conflicts caused by the end-of-round fusion deadline.
    pub fn conflict_deadline(&self) -> u64 {
        self.conflict_deadline
    }

    /// Distinct per-head commit shards (pool path only; 0 sequentially).
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Packet count of the largest commit shard (pool path only).
    pub fn largest_shard(&self) -> u64 {
        self.largest_shard
    }

    /// Member packets the reservation pre-pass proved clean (pool path
    /// only; 0 sequentially).
    pub fn clean_commits(&self) -> u64 {
        self.clean_commits
    }

    /// Member packets left to the live walk (pool path only).
    pub fn residue(&self) -> u64 {
        self.residue
    }

    /// Fraction of classified member packets the pre-pass could *not*
    /// prove clean: `residue / (clean_commits + residue)`. `None` when
    /// the reservation pre-pass did not run (sequential path) or saw no
    /// member packets.
    pub fn residue_fraction(&self) -> Option<f64> {
        let classified = self.clean_commits + self.residue;
        (classified > 0).then(|| self.residue as f64 / classified as f64)
    }

    /// Fold another round's outcome into a running total. Counters sum;
    /// `largest_shard` keeps the maximum over rounds.
    pub(crate) fn accumulate(&mut self, other: &MergeOutcome) {
        self.conflicts += other.conflicts;
        self.retargets += other.retargets;
        self.shards += other.shards;
        self.largest_shard = self.largest_shard.max(other.largest_shard);
        self.conflict_dead_head += other.conflict_dead_head;
        self.conflict_queue_full += other.conflict_queue_full;
        self.conflict_deadline += other.conflict_deadline;
        self.clean_commits += other.clean_commits;
        self.residue += other.residue;
    }
}

/// Walk-observed counters, identical on both commit paths.
#[derive(Default)]
struct WalkStats {
    conflicts: u64,
    retargets: u64,
    conflict_dead_head: u64,
    conflict_queue_full: u64,
    conflict_deadline: u64,
}

/// Why a proven-clean terminal refusal was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RefuseCause {
    DeadHead,
    Full,
    Deadline,
}

/// The reservation issued for one event by the pre-pass. Everything but
/// `Live` is proven clean: the walk must observe exactly this outcome,
/// and must not touch the master RNG for the packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Reserved {
    /// No reservation: run live (residue, own-gen, or past the frontier).
    Live,
    /// Proven clean on sender-local state alone.
    Local,
    /// Proven clean: the terminal hop's queue accepts.
    Accept,
    /// Proven clean: the terminal hop is refused and the retry budget is
    /// spent, so the refusal is terminal.
    Refused(RefuseCause),
}

/// Output of the reservation pre-pass: one [`Reserved`] per event plus
/// the round's classification and shard-shape counters.
pub(crate) struct Reservation {
    /// Per-event reservation, aligned with `MergePlan::events`.
    classes: Vec<Reserved>,
    clean: u64,
    residue: u64,
    shards: u64,
    largest_shard: u64,
}

/// Event kind resolved from the plan metadata, in event order.
#[derive(Clone, Copy)]
enum EvKind {
    /// A head's own sensing packet (replayed in-shard, committed live).
    OwnGen,
    /// Dead-sender packet: empty plan, generates nothing.
    Skip,
    /// Sender-local resolution.
    Local,
    /// Terminal hop onto a head's queue slot (verdicts arrive keyed by
    /// event index from the shard replay).
    Cand { exhausted: bool },
}

/// One shard-replay input: an event on this head's queue slot.
enum SlotEntry {
    /// The head's own sensing packet, offered at its arrival time.
    OwnGen { t: f64 },
    /// A member packet's terminal hop, offered at `offer_time`.
    Cand { event_idx: u32, offer_time: f64 },
}

/// Shard-replay verdict for one candidate offer.
#[derive(Clone, Copy)]
enum SlotVerdict {
    Accept,
    DeadHead,
    Full,
    Deadline,
}

/// The reservation pre-pass of the two-phase merge.
///
/// 1. **Group** (sequential, O(events)): resolve each event against its
///    plan metadata and bucket head-bound work per queue slot, in event
///    order.
/// 2. **Shard replay** (pool-parallel, one task per queue slot): replay
///    the slot's own-gen offers and candidate receptions in arrival
///    order against a clone of the head's (freshly reset) queue and a
///    local copy of its battery ledger — the same `consume` clamping
///    and aliveness rule the walk applies — producing a verdict buffer
///    per shard.
/// 3. **Frontier sweep** (sequential, O(events)): issue reservations
///    for the longest prefix in which every member packet is proven
///    clean. The first packet that is not provably clean (an unproven
///    refusal with retry budget left) closes the frontier: it and
///    everything after it stay `Live`, because its master-RNG
///    continuation may perturb batteries and queues behind the replay's
///    back.
///
/// The verdicts of a shard's prefix depend only on earlier events of
/// the *same* shard (a queue refusal does not change accept-state, and
/// heads gain no energy mid-round), so per-shard replay is exact for
/// every event the sweep ends up reserving — the confluence argument in
/// the module docs.
fn reserve(
    pool: &rayon::ThreadPool,
    plan: &MergePlan<'_>,
    planned: &[PlannedNode],
    net: &Network,
    queues: &[ChQueue],
) -> Reservation {
    let n_events = plan.events.len();
    let n_slots = queues.len();

    // Step 1: group. Separate cursors — `PlannedNode::cursor` belongs to
    // the walk.
    let mut kinds: Vec<EvKind> = Vec::with_capacity(n_events);
    let mut slots: Vec<Vec<SlotEntry>> = Vec::new();
    slots.resize_with(n_slots, Vec::new);
    let mut cand_counts = vec![0u64; n_slots];
    let mut cursors = vec![0usize; planned.len()];
    for (idx, &(time, src)) in plan.events.iter().enumerate() {
        let pi = plan.plan_index[src.index()];
        if pi < 0 {
            let s = plan.head_slot[src.index()];
            debug_assert!(s >= 0, "unplanned generator must be a head");
            if s >= 0 {
                slots[s as usize].push(SlotEntry::OwnGen { t: time });
            }
            kinds.push(EvKind::OwnGen);
            continue;
        }
        let pn = &planned[pi as usize];
        let k = cursors[pi as usize];
        cursors[pi as usize] += 1;
        kinds.push(match pn.meta[k] {
            PacketMeta::Skip => EvKind::Skip,
            PacketMeta::Local => EvKind::Local,
            PacketMeta::Candidate {
                h,
                offer_time,
                exhausted,
            } => {
                let s = plan.head_slot[h.index()];
                debug_assert!(s >= 0, "terminal hop onto a non-head");
                if s < 0 {
                    // Defensive: an unmappable candidate gets no verdict,
                    // so the sweep treats it as frontier-closing residue.
                    EvKind::Cand { exhausted: false }
                } else {
                    slots[s as usize].push(SlotEntry::Cand {
                        event_idx: idx as u32,
                        offer_time,
                    });
                    cand_counts[s as usize] += 1;
                    EvKind::Cand { exhausted }
                }
            }
        });
    }

    // Step 2: per-shard replay on the pool. The closure touches only
    // `Sync` data (slot buckets, the frozen network, the reset queues) —
    // `PlannedNode` holds a `Send`-only `PlanScratch` and stays out.
    let rx_e = net.radio.rx_energy(plan.cfg.packet_bits);
    let bits = plan.cfg.packet_bits;
    // The vendored pool exposes map/collect only, so the slot index is
    // zipped into the job list instead of an `enumerate` adapter.
    let slot_jobs: Vec<(usize, &[SlotEntry])> = slots
        .iter()
        .enumerate()
        .map(|(s, entries)| (s, entries.as_slice()))
        .collect();
    let verdicts_by_slot: Vec<Vec<(u32, SlotVerdict)>> = pool.install(|| {
        slot_jobs
            .par_iter()
            .map(|&(s, entries)| {
                let head = plan.heads[s];
                let hn = net.node(head);
                // Mid-round a head's `online` flag is frozen; only its
                // battery evolves (receptions drain it, nothing refills
                // it), so aliveness reduces to `alive0 && residual > 0`.
                let alive0 = hn.is_alive();
                let mut residual = hn.battery.residual();
                let mut q = queues[s].clone();
                let mut out = Vec::with_capacity(entries.len());
                for entry in entries {
                    match *entry {
                        SlotEntry::OwnGen { t } => {
                            if alive0 && residual > 0.0 {
                                // Queue verdicts depend on offer times and
                                // queue state only, never on packet fields,
                                // so a placeholder id is safe here.
                                let pkt = Packet {
                                    id: 0,
                                    src: head,
                                    created_at: t,
                                    bits,
                                };
                                let _ = q.offer(pkt, t);
                            }
                        }
                        SlotEntry::Cand {
                            event_idx,
                            offer_time,
                        } => {
                            let v = if !(alive0 && residual > 0.0) {
                                SlotVerdict::DeadHead
                            } else {
                                // Reception drains the head even when the
                                // queue then refuses — same clamping as
                                // `Battery::consume`.
                                residual -= rx_e.min(residual);
                                let pkt = Packet {
                                    id: 0,
                                    src: head,
                                    created_at: offer_time,
                                    bits,
                                };
                                match q.offer(pkt, offer_time) {
                                    Offer::Accepted { .. } => SlotVerdict::Accept,
                                    Offer::Dropped(QueueDrop::Full) => SlotVerdict::Full,
                                    Offer::Dropped(QueueDrop::Deadline) => SlotVerdict::Deadline,
                                }
                            };
                            out.push((event_idx, v));
                        }
                    }
                }
                out
            })
            .collect()
    });
    let mut verdict_at: Vec<Option<SlotVerdict>> = vec![None; n_events];
    for shard in &verdicts_by_slot {
        for &(idx, v) in shard {
            verdict_at[idx as usize] = Some(v);
        }
    }

    // Step 3: frontier sweep.
    let mut classes = vec![Reserved::Live; n_events];
    let mut clean = 0u64;
    let mut residue = 0u64;
    let mut open = true;
    for (idx, kind) in kinds.iter().enumerate() {
        if !open {
            // Past the frontier nothing is classified; everything that
            // could be a live member packet counts as residue. (`Skip`
            // is plan-derived, so dead-sender packets stay excluded even
            // here; post-frontier battery divergence can only kill more
            // senders, making `residue` a safe upper bound on the
            // packets the walk actually replays live.)
            if !matches!(kind, EvKind::OwnGen | EvKind::Skip) {
                residue += 1;
            }
            continue;
        }
        match *kind {
            // Own-gen packets commit live either way; the shard replay
            // mirrored their queue effect, so they do not close the
            // frontier. Skips generate nothing.
            EvKind::OwnGen | EvKind::Skip => {}
            EvKind::Local => {
                classes[idx] = Reserved::Local;
                clean += 1;
            }
            EvKind::Cand { exhausted } => match verdict_at[idx] {
                Some(SlotVerdict::Accept) => {
                    classes[idx] = Reserved::Accept;
                    clean += 1;
                }
                Some(v) if exhausted => {
                    classes[idx] = Reserved::Refused(match v {
                        SlotVerdict::DeadHead => RefuseCause::DeadHead,
                        SlotVerdict::Full => RefuseCause::Full,
                        SlotVerdict::Deadline => RefuseCause::Deadline,
                        SlotVerdict::Accept => unreachable!("accept handled above"),
                    });
                    clean += 1;
                }
                // A refusal with retry budget left — the live-retarget
                // residue — or a candidate with no verdict (defensive):
                // the continuation draws the master RNG and may change
                // any battery or queue, so the frontier closes here.
                _ => {
                    residue += 1;
                    open = false;
                }
            },
        }
    }

    Reservation {
        classes,
        clean,
        residue,
        shards: cand_counts.iter().filter(|&&c| c > 0).count() as u64,
        largest_shard: cand_counts.iter().copied().max().unwrap_or(0),
    }
}

/// The reference merge (`threads = 1`): one ordered walk, nothing else.
pub(crate) fn commit_sequential<P: Protocol + ?Sized>(
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
) -> MergeOutcome {
    let stats = walk(plan, planned, st, None);
    MergeOutcome {
        conflicts: stats.conflicts,
        retargets: stats.retargets,
        conflict_dead_head: stats.conflict_dead_head,
        conflict_queue_full: stats.conflict_queue_full,
        conflict_deadline: stats.conflict_deadline,
        ..MergeOutcome::default()
    }
}

/// The pool merge (`threads > 1`): the two-phase reservation merge. The
/// parallel pre-pass ([`reserve`]) buffers per-shard verdicts and issues
/// proven-clean reservations for the longest provable prefix; the same
/// ordered walk the reference path runs then interleaves the buffered
/// verdicts with the residue's master-RNG re-decisions in global
/// `(time, node)` order — byte-identical by construction, with every
/// reservation asserted against the live outcome.
pub(crate) fn commit_sharded<P: Protocol + ?Sized>(
    pool: &rayon::ThreadPool,
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
) -> MergeOutcome {
    let resv = reserve(pool, plan, planned, st.net, st.queues);
    let stats = walk(plan, planned, st, Some(&resv));
    MergeOutcome {
        conflicts: stats.conflicts,
        retargets: stats.retargets,
        shards: resv.shards,
        largest_shard: resv.largest_shard,
        conflict_dead_head: stats.conflict_dead_head,
        conflict_queue_full: stats.conflict_queue_full,
        conflict_deadline: stats.conflict_deadline,
        clean_commits: resv.clean,
        residue: resv.residue,
    }
}

/// The ordered commit walk, shared verbatim by both entry points.
///
/// Replays plans in global `(time, node)` order: packet ids, battery
/// consumes, head receptions, queue offers, counters, latency, events,
/// and the per-hop protocol hooks — all sequential and deterministic.
/// Queue verdicts and head aliveness are decided here (a head's battery
/// evolves with the merged receptions): a planned hop onto a head that
/// died mid-merge is a link drop, and a refused queue offer is terminal;
/// both push the packet into the live continuation, which re-decides
/// against the live network with the master RNG (the MDP's self-loop
/// semantics).
///
/// When a [`Reservation`] is supplied, each reserved packet's live
/// outcome is `assert!`ed against its buffered verdict — the contract
/// that a proven-clean packet resolves exactly as the pre-pass replayed
/// it and never reaches the master RNG. The walk's behaviour does not
/// branch on reservations, so a classifier bug fails loudly instead of
/// bending the byte stream.
fn walk<P: Protocol + ?Sized>(
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
    resv: Option<&Reservation>,
) -> WalkStats {
    let cfg = plan.cfg;
    let round = plan.round;
    let link = st.net.link;
    let radio = st.net.radio;
    let mut stats = WalkStats::default();

    for (ev_idx, &(time, src)) in plan.events.iter().enumerate() {
        let pi = plan.plan_index[src.index()];
        if pi < 0 {
            // A head's own sensing packet: checked and queued live —
            // its battery is drained by the merged receptions, so its
            // aliveness is only known here.
            if !st.net.node(src).is_alive() {
                continue; // died earlier this round; generates nothing
            }
            st.counters.generated += 1;
            let pkt = Packet {
                id: *st.next_packet_id,
                src,
                created_at: time,
                bits: cfg.packet_bits,
            };
            *st.next_packet_id += 1;
            let src_slot = plan.head_slot[src.index()];
            debug_assert!(src_slot >= 0, "unplanned generator must be a head");
            let q = &mut st.queues[src_slot as usize];
            let fate = match q.offer(pkt, time) {
                Offer::Accepted { .. } => None,
                Offer::Dropped(QueueDrop::Full) => {
                    st.counters.dropped_queue_full += 1;
                    Some(PacketFate::DroppedQueueFull)
                }
                Offer::Dropped(QueueDrop::Deadline) => {
                    st.counters.dropped_deadline += 1;
                    Some(PacketFate::DroppedDeadline)
                }
            };
            if st.obs.is_active() {
                if let Some(fate) = fate {
                    st.obs.emit(Event::PacketOutcome {
                        round,
                        src: src.0,
                        fate,
                    });
                }
            }
            continue;
        }

        let k = {
            let pn = &mut planned[pi as usize];
            let k = pn.cursor;
            pn.cursor += 1;
            k
        };
        if !st.net.node(src).is_alive() {
            continue; // died earlier this round; generates nothing
        }
        let pkt_plan = &planned[pi as usize].packets[k];
        st.counters.generated += 1;
        let pkt = Packet {
            id: *st.next_packet_id,
            src,
            created_at: time,
            bits: cfg.packet_bits,
        };
        *st.next_packet_id += 1;

        // Replay the planned attempts against the live network.
        // Exactly one outcome bucket is incremented per packet,
        // attributed to the *final* attempt's failure cause.
        let mut fail = FailCause::Link;
        let mut resolved = false;
        let mut attempt: u32 = 0;
        st.protocol.on_packet_start(src);
        for att in pkt_plan.iter() {
            if !st.net.node(src).is_alive() {
                fail = FailCause::Dead;
                break;
            }
            if attempt > 0 {
                st.counters.retried += 1;
                if st.obs.is_active() {
                    st.obs.emit(Event::PacketRetried {
                        round,
                        src: src.0,
                        attempt,
                    });
                }
            }
            let attempt_time = time + attempt as f64 * cfg.hop_delay;
            let (target, e) = match *att {
                PlannedAttempt::Failed { target, e } => (target, e),
                PlannedAttempt::DeliveredBs { e } => (Target::Bs, e),
                PlannedAttempt::ToHead { h, e } => (Target::Head(h), e),
            };
            let sender = st.net.node_mut(src);
            if !sender.battery.can_supply(e) {
                // The planned draw drains the battery flat — the
                // plan's own death, or an earlier live continuation
                // spent extra energy the plan didn't know about.
                st.breakdown.member_tx += sender.battery.consume(e);
                st.protocol.on_hop_result(src, target, false);
                fail = FailCause::Dead;
                break;
            }
            sender.battery.consume(e);
            st.breakdown.member_tx += e;
            match *att {
                PlannedAttempt::Failed { .. } => {
                    fail = FailCause::Link;
                    st.protocol.on_hop_result(src, target, false);
                }
                PlannedAttempt::DeliveredBs { .. } => {
                    st.counters.delivered += 1;
                    let lat = attempt_time + cfg.hop_delay - pkt.created_at;
                    st.latency.push(lat);
                    if st.obs.is_active() {
                        st.obs.emit(Event::PacketOutcome {
                            round,
                            src: src.0,
                            fate: PacketFate::Delivered { latency_slots: lat },
                        });
                    }
                    st.protocol.on_hop_result(src, target, true);
                    resolved = true;
                }
                PlannedAttempt::ToHead { h, .. } => {
                    let h_slot = plan.head_slot[h.index()];
                    if !st.net.node(h).is_alive() || h_slot < 0 {
                        // The head ran dry earlier in the merge: the
                        // planned hop lands on a dead radio.
                        stats.conflicts += 1;
                        stats.conflict_dead_head += 1;
                        fail = FailCause::Link;
                        st.protocol.on_hop_result(src, target, false);
                    } else {
                        // Reception costs the head energy even if its
                        // queue then refuses the packet.
                        st.breakdown.head_rx += st
                            .net
                            .node_mut(h)
                            .battery
                            .consume(radio.rx_energy(cfg.packet_bits));
                        let q = &mut st.queues[h_slot as usize];
                        match q.offer(pkt, attempt_time + cfg.hop_delay) {
                            Offer::Accepted { .. } => {
                                st.protocol.on_hop_result(src, target, true);
                                resolved = true;
                            }
                            Offer::Dropped(reason) => {
                                // A planned hop refused by the live
                                // queue state — stage 1 could not
                                // have known.
                                stats.conflicts += 1;
                                fail = match reason {
                                    QueueDrop::Full => {
                                        stats.conflict_queue_full += 1;
                                        FailCause::QueueFull
                                    }
                                    QueueDrop::Deadline => {
                                        stats.conflict_deadline += 1;
                                        FailCause::Deadline
                                    }
                                };
                                st.protocol.on_hop_result(src, target, false);
                            }
                        }
                    }
                }
            }
            attempt += 1;
            if resolved {
                break;
            }
        }

        // Reservation soundness contract: a proven-clean packet must
        // have resolved exactly as the pre-pass replayed it, and must
        // not reach the master-RNG continuation below. The classifier is
        // a conservative under-approximation and the walk never branches
        // on it, so a violation here is a loud classifier bug — never a
        // byte divergence.
        if let Some(r) = resv {
            match r.classes[ev_idx] {
                Reserved::Live => {}
                Reserved::Accept => {
                    assert!(
                        resolved,
                        "reserved-accept packet did not resolve (round {round}, src {src})"
                    );
                }
                Reserved::Refused(cause) => {
                    let expected = match cause {
                        RefuseCause::DeadHead => FailCause::Link,
                        RefuseCause::Full => FailCause::QueueFull,
                        RefuseCause::Deadline => FailCause::Deadline,
                    };
                    assert!(
                        !resolved && attempt > cfg.member_retries && fail == expected,
                        "reserved-refusal mismatch (round {round}, src {src}): \
                         resolved={resolved} attempt={attempt} fail={fail:?} expected={expected:?}"
                    );
                }
                Reserved::Local => {
                    // Locally-resolved plans either deliver, die, or
                    // exhaust the budget; the only other exit (a planned
                    // battery death to exactly 0.0 with budget left)
                    // fails the continuation's aliveness check before
                    // any RNG draw.
                    assert!(
                        resolved
                            || fail == FailCause::Dead
                            || attempt > cfg.member_retries
                            || !st.net.node(src).is_alive(),
                        "reserved-local packet would reach the RNG continuation \
                         (round {round}, src {src})"
                    );
                }
            }
        }

        // Live continuation: the plan ended on a contingency stage 1
        // could not resolve — a queue refusal or a head that died
        // mid-merge. The remaining retries re-decide against the
        // live network (the MDP's self-loop semantics), drawing from
        // the master RNG; the walk is sequential, so this stays
        // identical at every thread count.
        if !resolved && !matches!(fail, FailCause::Dead) {
            if attempt <= cfg.member_retries {
                stats.retargets += 1;
            }
            while attempt <= cfg.member_retries {
                if !st.net.node(src).is_alive() {
                    fail = FailCause::Dead;
                    break;
                }
                if attempt > 0 {
                    st.counters.retried += 1;
                    if st.obs.is_active() {
                        st.obs.emit(Event::PacketRetried {
                            round,
                            src: src.0,
                            attempt,
                        });
                    }
                }
                let attempt_time = time + attempt as f64 * cfg.hop_delay;
                let target = st
                    .protocol
                    .choose_target(st.net, src, plan.heads, &mut *st.rng);
                let d = match target {
                    Target::Bs => st.net.dist_to_bs(src),
                    Target::Head(h) => st.net.distance(src, h),
                };
                let e = radio.tx_energy(cfg.packet_bits, d);
                let sender = st.net.node_mut(src);
                if !sender.battery.can_supply(e) {
                    st.breakdown.member_tx += sender.battery.consume(e);
                    st.protocol.on_hop_result(src, target, false);
                    fail = FailCause::Dead;
                    break;
                }
                sender.battery.consume(e);
                st.breakdown.member_tx += e;
                match target {
                    Target::Bs => {
                        if sample_hop(st.faults, &link, &mut *st.rng, d, src.0, None) {
                            st.counters.delivered += 1;
                            let lat = attempt_time + cfg.hop_delay - pkt.created_at;
                            st.latency.push(lat);
                            if st.obs.is_active() {
                                st.obs.emit(Event::PacketOutcome {
                                    round,
                                    src: src.0,
                                    fate: PacketFate::Delivered { latency_slots: lat },
                                });
                            }
                            st.protocol.on_hop_result(src, target, true);
                            resolved = true;
                        } else {
                            fail = FailCause::Link;
                            st.protocol.on_hop_result(src, target, false);
                        }
                    }
                    Target::Head(h) => {
                        let head_alive = st.net.node(h).is_alive();
                        let radio_ok =
                            sample_hop(st.faults, &link, &mut *st.rng, d, src.0, Some(h.0));
                        let h_slot = plan.head_slot[h.index()];
                        if !radio_ok || !head_alive || h_slot < 0 {
                            fail = FailCause::Link;
                            st.protocol.on_hop_result(src, target, false);
                        } else {
                            st.breakdown.head_rx += st
                                .net
                                .node_mut(h)
                                .battery
                                .consume(radio.rx_energy(cfg.packet_bits));
                            let q = &mut st.queues[h_slot as usize];
                            match q.offer(pkt, attempt_time + cfg.hop_delay) {
                                Offer::Accepted { .. } => {
                                    st.protocol.on_hop_result(src, target, true);
                                    resolved = true;
                                }
                                Offer::Dropped(reason) => {
                                    fail = match reason {
                                        QueueDrop::Full => FailCause::QueueFull,
                                        QueueDrop::Deadline => FailCause::Deadline,
                                    };
                                    st.protocol.on_hop_result(src, target, false);
                                }
                            }
                        }
                    }
                }
                attempt += 1;
                if resolved {
                    break;
                }
            }
        }

        if !resolved {
            let fate = match fail {
                FailCause::Dead => {
                    st.counters.dropped_dead += 1;
                    PacketFate::DroppedDead
                }
                FailCause::Link => {
                    st.counters.dropped_link += 1;
                    PacketFate::DroppedLink
                }
                FailCause::QueueFull => {
                    st.counters.dropped_queue_full += 1;
                    PacketFate::DroppedQueueFull
                }
                FailCause::Deadline => {
                    st.counters.dropped_deadline += 1;
                    PacketFate::DroppedDeadline
                }
            };
            if st.obs.is_active() {
                st.obs.emit(Event::PacketOutcome {
                    round,
                    src: src.0,
                    fate,
                });
            }
        }
    }

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::GreedyEnergyProtocol;
    use crate::sim::Simulator;
    use qlec_obs::{JsonLinesSink, ObserverSet};
    use qlec_radio::link::DistanceLossLink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A `Write` target the test can read back after the `ObserverSet`
    /// clones holding the sink are gone.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// One observed run at the given thread count: the deterministic
    /// JSON-lines event stream plus the serialized report.
    fn run_observed(threads: usize) -> (String, String) {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new()
            .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)))
            .uniform_cube(&mut rng, 60, 200.0, 5.0);
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(buf.clone())
            .expect("in-memory sink")
            .deterministic();
        let mut obs = ObserverSet::new();
        obs.attach(Arc::new(Mutex::new(sink)));
        let mut cfg = SimConfig::paper(1.0);
        cfg.rounds = 6;
        cfg.threads = threads;
        let mut protocol = GreedyEnergyProtocol::new(4);
        let mut run_rng = StdRng::seed_from_u64(12);
        let report = Simulator::builder(net)
            .config(cfg)
            .observers(obs.clone())
            .build()
            .run(&mut protocol, &mut run_rng);
        obs.flush().expect("sink flush");
        let stream = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 stream");
        // `report.threads` records the *resolved* worker count — the one
        // field whose value legitimately tracks the knob under test — so
        // the equivalence diff compares the report without it.
        assert_eq!(report.threads, threads.max(1), "resolved count recorded");
        let mut value = serde_json::to_value(&report).expect("report serializes");
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "threads");
        }
        let report_json = serde_json::to_string(&value).expect("report serializes");
        (stream, report_json)
    }

    /// The two commit paths produce identical reports and identical
    /// event streams — the structural byte-identity the module
    /// guarantees, checked end to end through the round engine (the
    /// only place `commit_sharded` is reachable from). The pool runs
    /// with the reservation asserts live, so this also exercises the
    /// classifier's soundness contract on real traffic.
    #[test]
    fn sharded_commit_matches_sequential_commit() {
        let (seq_stream, seq_report) = run_observed(1);
        assert!(
            seq_stream.lines().count() > 100,
            "baseline must carry real traffic"
        );
        for threads in [2, 4] {
            let (stream, report) = run_observed(threads);
            assert!(
                stream == seq_stream,
                "event stream diverged at threads={threads}"
            );
            assert_eq!(seq_report, report, "report diverged at threads={threads}");
        }
    }

    fn test_pool() -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("test pool")
    }

    /// Hand-built round for `reserve`: two heads (one of them drained
    /// flat), one member with a crafted plan sequence. Verifies the
    /// clean classes (accept, local, exhausted refusals incl. dead
    /// head), the frontier closing at the first unproven refusal, and
    /// the shard-shape counters.
    #[test]
    fn reservation_classifies_and_closes_frontier() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = NetworkBuilder::new()
            .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)))
            .uniform_cube(&mut rng, 4, 200.0, 5.0);
        // Node 3 is an elected-then-drained head: alive at election,
        // dead by merge time.
        let drained = net.node(NodeId(3)).battery.residual();
        net.node_mut(NodeId(3)).battery.consume(drained);

        let mut cfg = SimConfig::paper(1.0);
        // Tiny queue + long service: the second offer onto slot 0 is
        // refused Full.
        cfg.queue_capacity = 1;
        cfg.service_time = 1000.0;
        let heads = [NodeId(0), NodeId(3)];
        let mut head_slot = vec![-1i32; net.len()];
        head_slot[0] = 0;
        head_slot[3] = 1;
        // Member node 1 sends six packets; node 2 stays out of the round.
        let mut plan_index = vec![-1i32; net.len()];
        plan_index[1] = 0;
        let e = 0.001;
        let meta = vec![
            // t=0.0: accepted by slot 0.
            PacketMeta::Candidate {
                h: NodeId(0),
                offer_time: 0.5,
                exhausted: false,
            },
            // t=1.0: local resolution (BS delivery).
            PacketMeta::Local,
            // t=2.0: dead-head refusal with the budget spent — clean.
            PacketMeta::Candidate {
                h: NodeId(3),
                offer_time: 3.5,
                exhausted: true,
            },
            // t=3.0: full-queue refusal with the budget spent — clean.
            PacketMeta::Candidate {
                h: NodeId(0),
                offer_time: 4.5,
                exhausted: true,
            },
            // t=4.0: full-queue refusal with budget left — closes the
            // frontier.
            PacketMeta::Candidate {
                h: NodeId(0),
                offer_time: 4.5,
                exhausted: false,
            },
            // t=5.0: would be clean, but the frontier is closed.
            PacketMeta::Local,
        ];
        let to_head = |h: u32| -> PacketPlan { vec![PlannedAttempt::ToHead { h: NodeId(h), e }] };
        let planned = vec![PlannedNode {
            src: NodeId(1),
            arrivals: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            packets: vec![
                to_head(0),
                vec![PlannedAttempt::DeliveredBs { e }],
                to_head(3),
                to_head(0),
                to_head(0),
                vec![PlannedAttempt::DeliveredBs { e }],
            ],
            meta,
            scratch: None,
            cursor: 0,
        }];
        let events: Vec<(f64, NodeId)> = (0..6).map(|i| (i as f64, NodeId(1))).collect();
        let queues = vec![
            ChQueue::new(cfg.queue_capacity, cfg.service_time, 1e9),
            ChQueue::new(cfg.queue_capacity, cfg.service_time, 1e9),
        ];
        let plan = MergePlan {
            events: &events,
            plan_index: &plan_index,
            head_slot: &head_slot,
            heads: &heads,
            round: 0,
            cfg: &cfg,
        };
        let resv = reserve(&test_pool(), &plan, &planned, &net, &queues);
        assert_eq!(
            resv.classes,
            vec![
                Reserved::Accept,
                Reserved::Local,
                Reserved::Refused(RefuseCause::DeadHead),
                Reserved::Refused(RefuseCause::Full),
                Reserved::Live,
                Reserved::Live,
            ]
        );
        assert_eq!(resv.clean, 4);
        assert_eq!(resv.residue, 2);
        // Slot 0 saw three candidates, slot 1 one; both shards non-empty.
        assert_eq!(resv.shards, 2);
        assert_eq!(resv.largest_shard, 3);
    }

    /// A head's own-gen packets participate in its shard replay: they
    /// occupy the queue ahead of later candidate offers, flipping the
    /// candidate's verdict to a refusal.
    #[test]
    fn own_gen_occupancy_feeds_candidate_verdicts() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = NetworkBuilder::new()
            .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)))
            .uniform_cube(&mut rng, 2, 200.0, 5.0);
        let mut cfg = SimConfig::paper(1.0);
        cfg.queue_capacity = 1;
        cfg.service_time = 1000.0;
        let heads = [NodeId(0)];
        let mut head_slot = vec![-1i32; net.len()];
        head_slot[0] = 0;
        let mut plan_index = vec![-1i32; net.len()];
        plan_index[1] = 0;
        let planned = vec![PlannedNode {
            src: NodeId(1),
            arrivals: vec![1.0],
            packets: vec![vec![PlannedAttempt::ToHead {
                h: NodeId(0),
                e: 0.001,
            }]],
            meta: vec![PacketMeta::Candidate {
                h: NodeId(0),
                offer_time: 1.5,
                exhausted: true,
            }],
            scratch: None,
            cursor: 0,
        }];
        // The head's own packet arrives first and fills the 1-slot queue.
        let events = vec![(0.0, NodeId(0)), (1.0, NodeId(1))];
        let queues = vec![ChQueue::new(cfg.queue_capacity, cfg.service_time, 1e9)];
        let plan = MergePlan {
            events: &events,
            plan_index: &plan_index,
            head_slot: &head_slot,
            heads: &heads,
            round: 0,
            cfg: &cfg,
        };
        let resv = reserve(&test_pool(), &plan, &planned, &net, &queues);
        assert_eq!(
            resv.classes,
            vec![Reserved::Live, Reserved::Refused(RefuseCause::Full)]
        );
        assert_eq!((resv.clean, resv.residue), (1, 0));
    }
}
