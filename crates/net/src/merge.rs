//! Stage-2 merge of the round engine: committing the planned member
//! packets against the live network.
//!
//! Stage 1 (`sim.rs`) routes every member's packets against the frozen
//! post-election network, in parallel. This module is stage 2: the plans
//! meet merge-time reality — head batteries that drain as receptions
//! land, queues that fill, heads that die mid-round — under one explicit
//! API ([`MergePlan`] in, [`MergeOutcome`] out) with two entry points:
//!
//! * [`commit_sequential`] — the reference path (`threads = 1`): one
//!   ordered walk over the round's events.
//! * [`commit_sharded`] — the pool path (`threads > 1`): a parallel
//!   pre-pass first groups the round's packet plans by terminal head
//!   (the *commit shards* — disjoint per-head groups whose clean
//!   commits touch only their own head's battery and queue, sized for
//!   the profiler's `merge.shards` / `merge.shard_max` counters), then
//!   the same ordered walk applies each group's packets with per-head
//!   battery/queue guards and doubles as the sequential fixup pass for
//!   the conflicted residue: dead-head retargets and refused-queue
//!   re-decisions, which draw from the master RNG and therefore must
//!   happen in exact global `(time, node)` order.
//!
//! Both entry points run the *same* walk function, so the event stream,
//! every battery draw, and every RNG consumption are byte-identical
//! between them by construction — that is the determinism contract the
//! `tests/parallel_equivalence.rs` byte-diffs lock at every thread
//! count. Clean commits of disjoint heads are confluent (they touch
//! disjoint state), so applying them inside the ordered walk is
//! observationally identical to committing the groups concurrently and
//! fixing up afterwards; keeping them in the walk is what makes the
//! identity a structural property instead of a proof obligation. The
//! measured N=10k profile (see `DESIGN.md`) shows ~⅔ of packets enter
//! the live-retarget residue, so the `threads > 1` speedup comes from
//! the plan fan-out and the cached `Send-Data` retarget kernel, with
//! the shard pre-pass running off the walk on the worker pool.

use crate::metrics::{EnergyBreakdown, PacketCounters};
use crate::network::Network;
use crate::node::NodeId;
use crate::packet::{Packet, Target};
use crate::protocol::{PlanScratch, Protocol};
use crate::queue::{ChQueue, Offer, QueueDrop};
use crate::sim::SimConfig;
use qlec_fault::FaultDriver;
use qlec_geom::stats::Welford;
use qlec_obs::{Event, ObserverSet, PacketFate};
use qlec_radio::link::{AnyLink, LinkModel};
use rand::{Rng, RngCore};
use rayon::prelude::*;

/// Terminal failure cause of a member packet, attributed to its final
/// attempt.
#[derive(Clone, Copy)]
pub(crate) enum FailCause {
    Dead,
    Link,
    QueueFull,
    Deadline,
}

/// One planned radio attempt of a member packet (stage 1). `e` is the
/// *requested* transmit draw; the merge replays it against the live
/// battery with the same `can_supply`/`consume` guards as a live
/// attempt, so a battery death planned in stage 1 (or induced by an
/// earlier live continuation) resolves identically.
#[derive(Clone, Copy)]
pub(crate) enum PlannedAttempt {
    /// The hop failed: a radio/link loss, or the sender's battery could
    /// not cover the draw (the merge's `can_supply` guard re-detects
    /// the death).
    Failed { target: Target, e: f64 },
    /// A direct hop to the BS succeeded.
    DeliveredBs { e: f64 },
    /// The radio hop to head `h` landed; the queue verdict (and the
    /// head's aliveness at reception) resolve at merge time.
    ToHead { h: NodeId, e: f64 },
}

/// Stage-1 plan for one member packet: its attempts in order. Empty when
/// the sender was already dead at the arrival time (the merge's live
/// aliveness check skips the packet — a dead plan implies a dead live
/// battery, since the live trajectory only ever drains more).
pub(crate) type PacketPlan = Vec<PlannedAttempt>;

/// One member node's stage-1 state for the current round.
pub(crate) struct PlannedNode {
    pub(crate) src: NodeId,
    /// This node's arrival times, ascending.
    pub(crate) arrivals: Vec<f64>,
    /// One plan per arrival, same order.
    pub(crate) packets: Vec<PacketPlan>,
    /// The planner's scratch, absorbed into the protocol after the merge.
    pub(crate) scratch: Option<PlanScratch>,
    /// Merge read position into `packets`.
    pub(crate) cursor: usize,
}

/// Sample one radio transmission, honouring any active fault directives:
/// a BS outage fails every hop whose receiver is the BS (the caller has
/// already charged the transmit energy), and an active per-pair
/// degradation scales the loss rate — `p_eff = 1 − min(1, (1 − p) · mult)`.
/// When no directive covers the pair this is exactly `link.sample` with
/// an identical RNG draw count, so rounds (and whole runs) without active
/// faults reproduce the baseline random sequence.
pub(crate) fn sample_hop(
    faults: Option<&FaultDriver>,
    link: &AnyLink,
    rng: &mut dyn RngCore,
    d: f64,
    src: u32,
    dst: Option<u32>,
) -> bool {
    let Some(f) = faults else {
        return link.sample(rng, d);
    };
    if dst.is_none() && f.bs_down() {
        return false;
    }
    let mult = f.loss_multiplier(src, dst);
    if mult == 1.0 {
        return link.sample(rng, d);
    }
    let p = 1.0 - ((1.0 - link.delivery_probability(d)) * mult).min(1.0);
    rng.gen::<f64>() < p
}

/// The immutable inputs of one round's merge: the time-ordered event
/// list, the per-node lookup tables built during election/traffic, and
/// the round configuration.
pub(crate) struct MergePlan<'a> {
    /// (arrival time, source) packet-generation events, time-ordered.
    pub(crate) events: &'a [(f64, NodeId)],
    /// node index → position in the member-plan list (`-1` = unplanned:
    /// a head, a dead node, or no arrivals).
    pub(crate) plan_index: &'a [i32],
    /// node index → this round's queue slot (`-1` = not a head).
    pub(crate) head_slot: &'a [i32],
    /// This round's elected heads, in election order.
    pub(crate) heads: &'a [NodeId],
    pub(crate) round: u32,
    pub(crate) cfg: &'a SimConfig,
}

/// The mutable simulation state the merge commits into. Every field is a
/// disjoint borrow of the round engine's state, so the walk can thread
/// battery draws, queue verdicts, protocol hooks, and event emissions
/// exactly as the pre-extraction inline loop did.
pub(crate) struct MergeState<'a, P: Protocol + ?Sized> {
    pub(crate) net: &'a mut Network,
    pub(crate) protocol: &'a mut P,
    /// The master RNG — consumed only by live continuations (retarget
    /// link samples), never by clean replays, which is why walk order
    /// alone preserves the sequential draw order.
    pub(crate) rng: &'a mut dyn RngCore,
    pub(crate) faults: Option<&'a FaultDriver>,
    /// One queue per head, indexed by queue slot.
    pub(crate) queues: &'a mut [ChQueue],
    pub(crate) obs: &'a ObserverSet,
    pub(crate) counters: &'a mut PacketCounters,
    pub(crate) latency: &'a mut Welford,
    pub(crate) breakdown: &'a mut EnergyBreakdown,
    pub(crate) next_packet_id: &'a mut u64,
}

/// What one round's merge did, for the profiler and the equivalence
/// tests: how often a plan ran into merge-time reality, how many packets
/// entered the live-retargeting continuation, and (sharded path only)
/// the shape of the per-head commit groups.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MergeOutcome {
    /// Planned hops refused by live state: a head dead at reception or
    /// a queue verdict the plan could not know.
    pub(crate) conflicts: u64,
    /// Packets that entered the master-RNG live continuation.
    pub(crate) retargets: u64,
    /// Distinct heads with at least one terminally-planned packet
    /// (sharded path only; 0 on the reference path).
    pub(crate) shards: u64,
    /// Packet count of the largest commit shard (sharded path only).
    pub(crate) largest_shard: u64,
}

/// The reference merge (`threads = 1`): one ordered walk, nothing else.
pub(crate) fn commit_sequential<P: Protocol + ?Sized>(
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
) -> MergeOutcome {
    let (conflicts, retargets) = walk(plan, planned, st);
    MergeOutcome {
        conflicts,
        retargets,
        shards: 0,
        largest_shard: 0,
    }
}

/// The pool merge (`threads > 1`): group the round's packet plans by
/// terminal head on the worker pool, then run the same ordered walk the
/// reference path runs — clean per-head commits and the conflicted
/// residue's fixup in one pass, byte-identical by construction.
pub(crate) fn commit_sharded<P: Protocol + ?Sized>(
    pool: &rayon::ThreadPool,
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
) -> MergeOutcome {
    // `PlannedNode` holds a `PlanScratch` (`Send`, not `Sync`), so the
    // fan-out iterates the Sync packet slices, mirroring the plan stage.
    let jobs: Vec<&[PacketPlan]> = planned.iter().map(|pn| pn.packets.as_slice()).collect();
    let counts = shard_counts(pool, &jobs, plan.head_slot, plan.heads.len());
    drop(jobs);
    let shards = counts.iter().filter(|&&c| c > 0).count() as u64;
    let largest_shard = counts.iter().copied().max().unwrap_or(0);
    let (conflicts, retargets) = walk(plan, planned, st);
    MergeOutcome {
        conflicts,
        retargets,
        shards,
        largest_shard,
    }
}

/// The pool-parallel shard pre-pass: group the round's packet plans by
/// the head their terminal hop lands on, returning the per-queue-slot
/// packet count. Packets whose plan ends at the BS or in failure belong
/// to no shard — they never touch a head's battery or queue when
/// committed clean.
fn shard_counts(
    pool: &rayon::ThreadPool,
    jobs: &[&[PacketPlan]],
    head_slot: &[i32],
    n_slots: usize,
) -> Vec<u64> {
    // Workers decode each node's plans into its terminal queue slots;
    // the per-slot totals fold up on the caller thread (the vendored
    // pool exposes map/collect, not a parallel reduce).
    let per_node: Vec<Vec<u32>> = pool.install(|| {
        jobs.par_iter()
            .map(|packets| {
                packets
                    .iter()
                    .filter_map(|p| match p.last() {
                        Some(PlannedAttempt::ToHead { h, .. }) => {
                            let slot = head_slot[h.index()];
                            debug_assert!(slot >= 0, "terminal hop onto a non-head");
                            (slot >= 0).then_some(slot as u32)
                        }
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    });
    let mut counts = vec![0u64; n_slots];
    for slots in &per_node {
        for &s in slots {
            counts[s as usize] += 1;
        }
    }
    counts
}

/// The ordered commit walk, shared verbatim by both entry points.
///
/// Replays plans in global `(time, node)` order: packet ids, battery
/// consumes, head receptions, queue offers, counters, latency, events,
/// and the per-hop protocol hooks — all sequential and deterministic.
/// Queue verdicts and head aliveness are decided here (a head's battery
/// evolves with the merged receptions): a planned hop onto a head that
/// died mid-merge is a link drop, and a refused queue offer is terminal;
/// both push the packet into the live continuation, which re-decides
/// against the live network with the master RNG (the MDP's self-loop
/// semantics). Returns `(conflicts, retargets)`.
fn walk<P: Protocol + ?Sized>(
    plan: &MergePlan<'_>,
    planned: &mut [PlannedNode],
    st: &mut MergeState<'_, P>,
) -> (u64, u64) {
    let cfg = plan.cfg;
    let round = plan.round;
    let link = st.net.link;
    let radio = st.net.radio;
    let mut merge_conflicts: u64 = 0;
    let mut merge_retargets: u64 = 0;

    for &(time, src) in plan.events {
        let pi = plan.plan_index[src.index()];
        if pi < 0 {
            // A head's own sensing packet: checked and queued live —
            // its battery is drained by the merged receptions, so its
            // aliveness is only known here.
            if !st.net.node(src).is_alive() {
                continue; // died earlier this round; generates nothing
            }
            st.counters.generated += 1;
            let pkt = Packet {
                id: *st.next_packet_id,
                src,
                created_at: time,
                bits: cfg.packet_bits,
            };
            *st.next_packet_id += 1;
            let src_slot = plan.head_slot[src.index()];
            debug_assert!(src_slot >= 0, "unplanned generator must be a head");
            let q = &mut st.queues[src_slot as usize];
            let fate = match q.offer(pkt, time) {
                Offer::Accepted { .. } => None,
                Offer::Dropped(QueueDrop::Full) => {
                    st.counters.dropped_queue_full += 1;
                    Some(PacketFate::DroppedQueueFull)
                }
                Offer::Dropped(QueueDrop::Deadline) => {
                    st.counters.dropped_deadline += 1;
                    Some(PacketFate::DroppedDeadline)
                }
            };
            if st.obs.is_active() {
                if let Some(fate) = fate {
                    st.obs.emit(Event::PacketOutcome {
                        round,
                        src: src.0,
                        fate,
                    });
                }
            }
            continue;
        }

        let k = {
            let pn = &mut planned[pi as usize];
            let k = pn.cursor;
            pn.cursor += 1;
            k
        };
        if !st.net.node(src).is_alive() {
            continue; // died earlier this round; generates nothing
        }
        let pkt_plan = &planned[pi as usize].packets[k];
        st.counters.generated += 1;
        let pkt = Packet {
            id: *st.next_packet_id,
            src,
            created_at: time,
            bits: cfg.packet_bits,
        };
        *st.next_packet_id += 1;

        // Replay the planned attempts against the live network.
        // Exactly one outcome bucket is incremented per packet,
        // attributed to the *final* attempt's failure cause.
        let mut fail = FailCause::Link;
        let mut resolved = false;
        let mut attempt: u32 = 0;
        st.protocol.on_packet_start(src);
        for att in pkt_plan.iter() {
            if !st.net.node(src).is_alive() {
                fail = FailCause::Dead;
                break;
            }
            if attempt > 0 {
                st.counters.retried += 1;
                if st.obs.is_active() {
                    st.obs.emit(Event::PacketRetried {
                        round,
                        src: src.0,
                        attempt,
                    });
                }
            }
            let attempt_time = time + attempt as f64 * cfg.hop_delay;
            let (target, e) = match *att {
                PlannedAttempt::Failed { target, e } => (target, e),
                PlannedAttempt::DeliveredBs { e } => (Target::Bs, e),
                PlannedAttempt::ToHead { h, e } => (Target::Head(h), e),
            };
            let sender = st.net.node_mut(src);
            if !sender.battery.can_supply(e) {
                // The planned draw drains the battery flat — the
                // plan's own death, or an earlier live continuation
                // spent extra energy the plan didn't know about.
                st.breakdown.member_tx += sender.battery.consume(e);
                st.protocol.on_hop_result(src, target, false);
                fail = FailCause::Dead;
                break;
            }
            sender.battery.consume(e);
            st.breakdown.member_tx += e;
            match *att {
                PlannedAttempt::Failed { .. } => {
                    fail = FailCause::Link;
                    st.protocol.on_hop_result(src, target, false);
                }
                PlannedAttempt::DeliveredBs { .. } => {
                    st.counters.delivered += 1;
                    let lat = attempt_time + cfg.hop_delay - pkt.created_at;
                    st.latency.push(lat);
                    if st.obs.is_active() {
                        st.obs.emit(Event::PacketOutcome {
                            round,
                            src: src.0,
                            fate: PacketFate::Delivered { latency_slots: lat },
                        });
                    }
                    st.protocol.on_hop_result(src, target, true);
                    resolved = true;
                }
                PlannedAttempt::ToHead { h, .. } => {
                    let h_slot = plan.head_slot[h.index()];
                    if !st.net.node(h).is_alive() || h_slot < 0 {
                        // The head ran dry earlier in the merge: the
                        // planned hop lands on a dead radio.
                        merge_conflicts += 1;
                        fail = FailCause::Link;
                        st.protocol.on_hop_result(src, target, false);
                    } else {
                        // Reception costs the head energy even if its
                        // queue then refuses the packet.
                        st.breakdown.head_rx += st
                            .net
                            .node_mut(h)
                            .battery
                            .consume(radio.rx_energy(cfg.packet_bits));
                        let q = &mut st.queues[h_slot as usize];
                        match q.offer(pkt, attempt_time + cfg.hop_delay) {
                            Offer::Accepted { .. } => {
                                st.protocol.on_hop_result(src, target, true);
                                resolved = true;
                            }
                            Offer::Dropped(reason) => {
                                // A planned hop refused by the live
                                // queue state — stage 1 could not
                                // have known.
                                merge_conflicts += 1;
                                fail = match reason {
                                    QueueDrop::Full => FailCause::QueueFull,
                                    QueueDrop::Deadline => FailCause::Deadline,
                                };
                                st.protocol.on_hop_result(src, target, false);
                            }
                        }
                    }
                }
            }
            attempt += 1;
            if resolved {
                break;
            }
        }

        // Live continuation: the plan ended on a contingency stage 1
        // could not resolve — a queue refusal or a head that died
        // mid-merge. The remaining retries re-decide against the
        // live network (the MDP's self-loop semantics), drawing from
        // the master RNG; the walk is sequential, so this stays
        // identical at every thread count.
        if !resolved && !matches!(fail, FailCause::Dead) {
            if attempt <= cfg.member_retries {
                merge_retargets += 1;
            }
            while attempt <= cfg.member_retries {
                if !st.net.node(src).is_alive() {
                    fail = FailCause::Dead;
                    break;
                }
                if attempt > 0 {
                    st.counters.retried += 1;
                    if st.obs.is_active() {
                        st.obs.emit(Event::PacketRetried {
                            round,
                            src: src.0,
                            attempt,
                        });
                    }
                }
                let attempt_time = time + attempt as f64 * cfg.hop_delay;
                let target = st
                    .protocol
                    .choose_target(st.net, src, plan.heads, &mut *st.rng);
                let d = match target {
                    Target::Bs => st.net.dist_to_bs(src),
                    Target::Head(h) => st.net.distance(src, h),
                };
                let e = radio.tx_energy(cfg.packet_bits, d);
                let sender = st.net.node_mut(src);
                if !sender.battery.can_supply(e) {
                    st.breakdown.member_tx += sender.battery.consume(e);
                    st.protocol.on_hop_result(src, target, false);
                    fail = FailCause::Dead;
                    break;
                }
                sender.battery.consume(e);
                st.breakdown.member_tx += e;
                match target {
                    Target::Bs => {
                        if sample_hop(st.faults, &link, &mut *st.rng, d, src.0, None) {
                            st.counters.delivered += 1;
                            let lat = attempt_time + cfg.hop_delay - pkt.created_at;
                            st.latency.push(lat);
                            if st.obs.is_active() {
                                st.obs.emit(Event::PacketOutcome {
                                    round,
                                    src: src.0,
                                    fate: PacketFate::Delivered { latency_slots: lat },
                                });
                            }
                            st.protocol.on_hop_result(src, target, true);
                            resolved = true;
                        } else {
                            fail = FailCause::Link;
                            st.protocol.on_hop_result(src, target, false);
                        }
                    }
                    Target::Head(h) => {
                        let head_alive = st.net.node(h).is_alive();
                        let radio_ok =
                            sample_hop(st.faults, &link, &mut *st.rng, d, src.0, Some(h.0));
                        let h_slot = plan.head_slot[h.index()];
                        if !radio_ok || !head_alive || h_slot < 0 {
                            fail = FailCause::Link;
                            st.protocol.on_hop_result(src, target, false);
                        } else {
                            st.breakdown.head_rx += st
                                .net
                                .node_mut(h)
                                .battery
                                .consume(radio.rx_energy(cfg.packet_bits));
                            let q = &mut st.queues[h_slot as usize];
                            match q.offer(pkt, attempt_time + cfg.hop_delay) {
                                Offer::Accepted { .. } => {
                                    st.protocol.on_hop_result(src, target, true);
                                    resolved = true;
                                }
                                Offer::Dropped(reason) => {
                                    fail = match reason {
                                        QueueDrop::Full => FailCause::QueueFull,
                                        QueueDrop::Deadline => FailCause::Deadline,
                                    };
                                    st.protocol.on_hop_result(src, target, false);
                                }
                            }
                        }
                    }
                }
                attempt += 1;
                if resolved {
                    break;
                }
            }
        }

        if !resolved {
            let fate = match fail {
                FailCause::Dead => {
                    st.counters.dropped_dead += 1;
                    PacketFate::DroppedDead
                }
                FailCause::Link => {
                    st.counters.dropped_link += 1;
                    PacketFate::DroppedLink
                }
                FailCause::QueueFull => {
                    st.counters.dropped_queue_full += 1;
                    PacketFate::DroppedQueueFull
                }
                FailCause::Deadline => {
                    st.counters.dropped_deadline += 1;
                    PacketFate::DroppedDeadline
                }
            };
            if st.obs.is_active() {
                st.obs.emit(Event::PacketOutcome {
                    round,
                    src: src.0,
                    fate,
                });
            }
        }
    }

    (merge_conflicts, merge_retargets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::GreedyEnergyProtocol;
    use crate::sim::Simulator;
    use qlec_obs::{JsonLinesSink, ObserverSet};
    use qlec_radio::link::DistanceLossLink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A `Write` target the test can read back after the `ObserverSet`
    /// clones holding the sink are gone.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// One observed run at the given thread count: the deterministic
    /// JSON-lines event stream plus the serialized report.
    fn run_observed(threads: usize) -> (String, String) {
        let mut rng = StdRng::seed_from_u64(11);
        let net = NetworkBuilder::new()
            .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)))
            .uniform_cube(&mut rng, 60, 200.0, 5.0);
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(buf.clone())
            .expect("in-memory sink")
            .deterministic();
        let mut obs = ObserverSet::new();
        obs.attach(Arc::new(Mutex::new(sink)));
        let mut cfg = SimConfig::paper(1.0);
        cfg.rounds = 6;
        cfg.threads = threads;
        let mut protocol = GreedyEnergyProtocol::new(4);
        let mut run_rng = StdRng::seed_from_u64(12);
        let report = Simulator::builder(net)
            .config(cfg)
            .observers(obs.clone())
            .build()
            .run(&mut protocol, &mut run_rng);
        obs.flush().expect("sink flush");
        let stream = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 stream");
        // `report.threads` records the *resolved* worker count — the one
        // field whose value legitimately tracks the knob under test — so
        // the equivalence diff compares the report without it.
        assert_eq!(report.threads, threads.max(1), "resolved count recorded");
        let mut value = serde_json::to_value(&report).expect("report serializes");
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "threads");
        }
        let report_json = serde_json::to_string(&value).expect("report serializes");
        (stream, report_json)
    }

    /// The two commit paths produce identical reports and identical
    /// event streams — the structural byte-identity the module
    /// guarantees, checked end to end through the round engine (the
    /// only place `commit_sharded` is reachable from).
    #[test]
    fn sharded_commit_matches_sequential_commit() {
        let (seq_stream, seq_report) = run_observed(1);
        assert!(
            seq_stream.lines().count() > 100,
            "baseline must carry real traffic"
        );
        for threads in [2, 4] {
            let (stream, report) = run_observed(threads);
            assert!(
                stream == seq_stream,
                "event stream diverged at threads={threads}"
            );
            assert_eq!(seq_report, report, "report diverged at threads={threads}");
        }
    }

    /// The sharded pre-pass groups packets by their *terminal* head —
    /// BS deliveries and all-failed plans belong to no shard.
    #[test]
    fn shard_counts_group_by_terminal_head() {
        let mut head_slot = vec![-1i32; 4];
        head_slot[0] = 0;
        head_slot[1] = 1;
        let mk = |h: u32| -> PacketPlan {
            vec![
                PlannedAttempt::Failed {
                    target: Target::Bs,
                    e: 0.1,
                },
                PlannedAttempt::ToHead {
                    h: NodeId(h),
                    e: 0.1,
                },
            ]
        };
        let node_a = vec![mk(0), mk(1)];
        let node_b = vec![
            vec![PlannedAttempt::DeliveredBs { e: 0.1 }],
            mk(1),
            vec![PlannedAttempt::Failed {
                target: Target::Head(NodeId(0)),
                e: 0.1,
            }],
        ];
        let jobs: Vec<&[PacketPlan]> = vec![&node_a, &node_b];
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("test pool");
        let counts = shard_counts(&pool, &jobs, &head_slot, 2);
        assert_eq!(counts, vec![1, 2]);
    }
}
