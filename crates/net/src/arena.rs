//! Struct-of-arrays node storage.
//!
//! The round engine's hot loops each touch *one* field of every node —
//! the election scans battery and rotation bookkeeping, grid maintenance
//! scans positions, liveness masks scan `online` + battery. With the
//! array-of-structs [`Node`] layout each of those scans dragged the
//! whole ~80-byte record through cache for one field; at 1M nodes that
//! is the difference between streaming a few MB and streaming the whole
//! arena per phase. [`NodeArena`] stores each field in its own parallel
//! `Vec`, and the [`NodeRef`]/[`NodeMut`] views keep call sites reading
//! like the old struct (`net.node(id).is_alive()`,
//! `net.node_mut(id).battery.consume(e)`).
//!
//! [`Node`] itself survives as the *snapshot* type: builders assemble
//! deployments from `Node` values, serialization round-trips through
//! them, and [`NodeArena::snapshot`] materializes one on demand. The
//! per-round queue handle (a cluster head's slot in the current round's
//! roster) deliberately does **not** live here — it is round-scoped
//! scratch owned by the simulator, rebuilt from the head roster each
//! round (see `sim.rs`), so the arena only holds state with cross-round
//! lifetime.

use crate::node::{Node, NodeId, Role};
use qlec_geom::Vec3;
use qlec_radio::Battery;

/// Parallel per-field storage for all nodes, indexed by [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct NodeArena {
    pos: Vec<Vec3>,
    battery: Vec<Battery>,
    role: Vec<Role>,
    last_head_round: Vec<Option<u32>>,
    head_count: Vec<u32>,
    online: Vec<bool>,
}

/// Immutable view of one node — field-compatible with [`Node`] reads.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'a> {
    pub id: NodeId,
    pub pos: Vec3,
    pub battery: &'a Battery,
    pub role: Role,
    pub last_head_round: Option<u32>,
    pub head_count: u32,
    pub online: bool,
}

/// Mutable view of one node. Plain-field writes become `*view.field = v`;
/// method calls (`view.battery.consume(e)`, `view.promote_to_head(r)`)
/// read exactly as they did on `&mut Node`.
#[derive(Debug)]
pub struct NodeMut<'a> {
    pub id: NodeId,
    pub pos: &'a mut Vec3,
    pub battery: &'a mut Battery,
    pub role: &'a mut Role,
    pub last_head_round: &'a mut Option<u32>,
    pub head_count: &'a mut u32,
    pub online: &'a mut bool,
}

impl NodeArena {
    /// Build the arena from snapshot records (consumes them field-wise).
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        let n = nodes.len();
        let mut arena = NodeArena {
            pos: Vec::with_capacity(n),
            battery: Vec::with_capacity(n),
            role: Vec::with_capacity(n),
            last_head_round: Vec::with_capacity(n),
            head_count: Vec::with_capacity(n),
            online: Vec::with_capacity(n),
        };
        for node in nodes {
            arena.push(node);
        }
        arena
    }

    /// Append one node; its [`NodeId`] must equal the current length
    /// (ids are dense indices).
    pub fn push(&mut self, node: Node) {
        debug_assert_eq!(
            node.id.index(),
            self.pos.len(),
            "node ids must be dense and in order"
        );
        self.pos.push(node.pos);
        self.battery.push(node.battery);
        self.role.push(node.role);
        self.last_head_round.push(node.last_head_round);
        self.head_count.push(node.head_count);
        self.online.push(node.online);
    }

    /// Number of node slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the arena holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Immutable view of node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> NodeRef<'_> {
        NodeRef {
            id: NodeId(i as u32),
            pos: self.pos[i],
            battery: &self.battery[i],
            role: self.role[i],
            last_head_round: self.last_head_round[i],
            head_count: self.head_count[i],
            online: self.online[i],
        }
    }

    /// Mutable view of node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> NodeMut<'_> {
        NodeMut {
            id: NodeId(i as u32),
            pos: &mut self.pos[i],
            battery: &mut self.battery[i],
            role: &mut self.role[i],
            last_head_round: &mut self.last_head_round[i],
            head_count: &mut self.head_count[i],
            online: &mut self.online[i],
        }
    }

    /// Materialize node `i` as an owned snapshot record.
    pub fn snapshot(&self, i: usize) -> Node {
        Node {
            id: NodeId(i as u32),
            pos: self.pos[i],
            battery: self.battery[i],
            role: self.role[i],
            last_head_round: self.last_head_round[i],
            head_count: self.head_count[i],
            online: self.online[i],
        }
    }

    /// Iterate immutable views in id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeRef<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    // Column accessors: the hot loops that motivated the SoA layout read
    // exactly one field for all nodes — give them the bare column.

    /// All positions, in id order.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        &self.pos
    }

    /// All batteries, in id order.
    #[inline]
    pub fn batteries(&self) -> &[Battery] {
        &self.battery
    }

    /// All batteries, mutable, in id order.
    #[inline]
    pub fn batteries_mut(&mut self) -> &mut [Battery] {
        &mut self.battery
    }

    /// All roles, mutable, in id order (role reset sweeps this).
    #[inline]
    pub fn roles_mut(&mut self) -> &mut [Role] {
        &mut self.role
    }

    /// Whether node `i` can participate: hardware up and battery
    /// non-empty. Column-local, so liveness sweeps touch only two arrays.
    #[inline]
    pub fn is_alive(&self, i: usize) -> bool {
        self.online[i] && !self.battery[i].is_empty()
    }
}

impl<'a> NodeRef<'a> {
    /// Residual energy `E_i(r)`.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.battery.residual()
    }

    /// Whether the node can still participate: hardware up *and* a
    /// non-empty battery.
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.online && !self.battery.is_empty()
    }

    /// Whether the node is below the §5.1 death line.
    #[inline]
    pub fn below_death_line(&self, death_line: f64) -> bool {
        self.battery.depleted(death_line)
    }

    /// Whether the node has served as head within the last `n_i` rounds
    /// before (and including) round `r` — the DEEC candidacy exclusion.
    pub fn was_head_recently(&self, r: u32, n_i: u32) -> bool {
        match self.last_head_round {
            None => false,
            Some(last) => r.saturating_sub(last) < n_i,
        }
    }

    /// Owned snapshot of this view.
    pub fn to_node(&self) -> Node {
        Node {
            id: self.id,
            pos: self.pos,
            battery: *self.battery,
            role: self.role,
            last_head_round: self.last_head_round,
            head_count: self.head_count,
            online: self.online,
        }
    }
}

impl<'a> NodeMut<'a> {
    /// Residual energy `E_i(r)`.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.battery.residual()
    }

    /// Whether the node can still participate.
    #[inline]
    pub fn is_alive(&self) -> bool {
        *self.online && !self.battery.is_empty()
    }

    /// Mark the node as this round's cluster head.
    pub fn promote_to_head(&mut self, round: u32) {
        *self.role = Role::ClusterHead;
        *self.last_head_round = Some(round);
        *self.head_count += 1;
    }

    /// Demote back to member (does not erase rotation bookkeeping). Used
    /// both between rounds and by Algorithm 3 when a redundant head
    /// withdraws; a withdrawal also takes back the head-count increment.
    pub fn demote_to_member(&mut self, withdraw: bool) {
        *self.role = Role::Member;
        if withdraw {
            *self.head_count = self.head_count.saturating_sub(1);
            // `last_head_round` is kept — same conservative choice as the
            // snapshot type's method documents.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> NodeArena {
        NodeArena::from_nodes(
            (0..4)
                .map(|i| Node::new(NodeId(i), Vec3::splat(i as f64), 5.0))
                .collect(),
        )
    }

    #[test]
    fn views_mirror_snapshot_fields() {
        let a = arena();
        let v = a.get(2);
        assert_eq!(v.id, NodeId(2));
        assert_eq!(v.pos, Vec3::splat(2.0));
        assert_eq!(v.role, Role::Member);
        assert_eq!(v.residual(), 5.0);
        assert!(v.is_alive());
        let snap = a.snapshot(2);
        assert_eq!(snap.id, v.id);
        assert_eq!(snap.pos, v.pos);
        assert_eq!(v.to_node().head_count, snap.head_count);
    }

    #[test]
    fn mutation_through_views() {
        let mut a = arena();
        {
            let mut m = a.get_mut(1);
            m.promote_to_head(3);
            m.battery.consume(1.5);
            *m.online = false;
        }
        let v = a.get(1);
        assert_eq!(v.role, Role::ClusterHead);
        assert_eq!(v.last_head_round, Some(3));
        assert_eq!(v.head_count, 1);
        assert_eq!(v.residual(), 3.5);
        assert!(!v.is_alive(), "offline overrides charge");
        assert!(!a.is_alive(1));
        assert!(a.is_alive(0));
    }

    #[test]
    fn withdrawal_reverses_head_count() {
        let mut a = arena();
        a.get_mut(0).promote_to_head(2);
        a.get_mut(0).demote_to_member(true);
        let v = a.get(0);
        assert_eq!(v.head_count, 0);
        assert_eq!(v.last_head_round, Some(2));
        assert_eq!(v.role, Role::Member);
    }

    #[test]
    fn columns_are_id_ordered() {
        let a = arena();
        assert_eq!(a.positions().len(), 4);
        assert_eq!(a.positions()[3], Vec3::splat(3.0));
        assert_eq!(a.batteries()[0].residual(), 5.0);
        let ids: Vec<NodeId> = a.iter().map(|v| v.id).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }
}
