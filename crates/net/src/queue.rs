//! Bounded FIFO cluster-head queue with deterministic service times.
//!
//! §4.2 motivates lossy links partly by "limited storage caches of cluster
//! heads", and §5.2 explains congestion loss as "the long queue at cluster
//! heads leads to discarding more packets". This module models each head
//! as an M/D/1/B queue over one round: packets arrive at Poisson times,
//! one server processes them FIFO at a fixed `service_time`, and a packet
//! is dropped when the system already holds `capacity` packets
//! (waiting + in service). Packets whose processing would not finish by
//! the round end miss the round's data-fusion deadline and are dropped
//! too — both mechanisms grow with offered load, which is what bends the
//! Fig. 3(a) curves downward as λ shrinks.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Why the queue refused or lost a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDrop {
    /// System full on arrival (capacity drop).
    Full,
    /// Accepted but service would complete after the fusion deadline.
    Deadline,
}

/// Outcome of offering a packet to the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Offer {
    /// Accepted; service will complete at the contained time.
    Accepted { completes_at: f64 },
    /// Dropped for the contained reason.
    Dropped(QueueDrop),
}

/// A cluster head's packet queue for one round.
#[derive(Debug, Clone)]
pub struct ChQueue {
    capacity: usize,
    service_time: f64,
    deadline: f64,
    /// Departure times of packets still in the system, ascending.
    in_system: VecDeque<f64>,
    /// Packets successfully processed this round with completion times.
    processed: Vec<(Packet, f64)>,
    drops_full: u64,
    drops_deadline: u64,
    peak_occupancy: usize,
}

impl ChQueue {
    /// A queue for one round ending at `deadline`.
    ///
    /// # Panics
    /// Panics on zero capacity or non-positive service time.
    pub fn new(capacity: usize, service_time: f64, deadline: f64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            service_time > 0.0 && service_time.is_finite(),
            "service time must be positive, got {service_time}"
        );
        ChQueue {
            capacity,
            service_time,
            deadline,
            in_system: VecDeque::new(),
            processed: Vec::new(),
            drops_full: 0,
            drops_deadline: 0,
            peak_occupancy: 0,
        }
    }

    /// Re-arm a used queue for a new round, clearing all per-round state
    /// while keeping the buffers' capacity — the round engine reuses one
    /// queue allocation per head slot across all rounds.
    ///
    /// # Panics
    /// Panics on zero capacity or non-positive service time.
    pub fn reset(&mut self, capacity: usize, service_time: f64, deadline: f64) {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            service_time > 0.0 && service_time.is_finite(),
            "service time must be positive, got {service_time}"
        );
        self.capacity = capacity;
        self.service_time = service_time;
        self.deadline = deadline;
        self.in_system.clear();
        self.processed.clear();
        self.drops_full = 0;
        self.drops_deadline = 0;
        self.peak_occupancy = 0;
    }

    /// Offer a packet arriving at `time` (must be non-decreasing across
    /// calls — the round engine processes events in time order).
    pub fn offer(&mut self, packet: Packet, time: f64) -> Offer {
        // Packets that have departed by `time` free their slots.
        while let Some(&dep) = self.in_system.front() {
            if dep <= time {
                self.in_system.pop_front();
            } else {
                break;
            }
        }
        if self.in_system.len() >= self.capacity {
            self.drops_full += 1;
            return Offer::Dropped(QueueDrop::Full);
        }
        // FIFO with deterministic service: start when the previous packet
        // departs (or immediately if the server is idle).
        let start = self.in_system.back().copied().unwrap_or(time).max(time);
        let completes_at = start + self.service_time;
        if completes_at > self.deadline {
            self.drops_deadline += 1;
            return Offer::Dropped(QueueDrop::Deadline);
        }
        self.in_system.push_back(completes_at);
        self.peak_occupancy = self.peak_occupancy.max(self.in_system.len());
        self.processed.push((packet, completes_at));
        Offer::Accepted { completes_at }
    }

    /// Packets processed this round (in completion order) — the inputs to
    /// the end-of-round data fusion.
    pub fn processed(&self) -> &[(Packet, f64)] {
        &self.processed
    }

    /// Total payload bits processed this round (pre-compression).
    pub fn processed_bits(&self) -> u64 {
        self.processed.iter().map(|(p, _)| p.bits).sum()
    }

    /// Number of capacity drops.
    pub fn drops_full(&self) -> u64 {
        self.drops_full
    }

    /// Number of deadline drops.
    pub fn drops_deadline(&self) -> u64 {
        self.drops_deadline
    }

    /// Packets currently in the system (waiting or in service) at the last
    /// offered time.
    pub fn occupancy(&self) -> usize {
        self.in_system.len()
    }

    /// Largest number of packets simultaneously in the system this round.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn pkt(id: u64, t: f64) -> Packet {
        Packet {
            id,
            src: NodeId(0),
            created_at: t,
            bits: 1000,
        }
    }

    #[test]
    fn idle_server_processes_immediately() {
        let mut q = ChQueue::new(4, 1.0, 100.0);
        match q.offer(pkt(0, 10.0), 10.0) {
            Offer::Accepted { completes_at } => assert_eq!(completes_at, 11.0),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(q.processed().len(), 1);
    }

    #[test]
    fn fifo_back_to_back_service() {
        let mut q = ChQueue::new(10, 2.0, 100.0);
        // Three packets arrive together: completions are 2, 4, 6.
        for (i, want) in [(0u64, 2.0), (1, 4.0), (2, 6.0)] {
            match q.offer(pkt(i, 0.0), 0.0) {
                Offer::Accepted { completes_at } => assert_eq!(completes_at, want),
                o => panic!("unexpected {o:?}"),
            }
        }
        assert_eq!(q.occupancy(), 3);
    }

    #[test]
    fn capacity_drop_when_full() {
        let mut q = ChQueue::new(2, 10.0, 1000.0);
        assert!(matches!(q.offer(pkt(0, 0.0), 0.0), Offer::Accepted { .. }));
        assert!(matches!(q.offer(pkt(1, 0.0), 0.0), Offer::Accepted { .. }));
        assert_eq!(q.offer(pkt(2, 0.0), 0.0), Offer::Dropped(QueueDrop::Full));
        assert_eq!(q.drops_full(), 1);
        // After the first departure (t = 10), one slot frees up.
        assert!(matches!(
            q.offer(pkt(3, 10.0), 10.0),
            Offer::Accepted { .. }
        ));
    }

    #[test]
    fn deadline_drop_near_round_end() {
        let mut q = ChQueue::new(10, 5.0, 20.0);
        // Arrives at 18, would complete at 23 > 20.
        assert_eq!(
            q.offer(pkt(0, 18.0), 18.0),
            Offer::Dropped(QueueDrop::Deadline)
        );
        assert_eq!(q.drops_deadline(), 1);
        assert!(q.processed().is_empty());
    }

    #[test]
    fn departures_free_slots_over_time() {
        let mut q = ChQueue::new(1, 1.0, 100.0);
        assert!(matches!(q.offer(pkt(0, 0.0), 0.0), Offer::Accepted { .. }));
        assert_eq!(q.offer(pkt(1, 0.5), 0.5), Offer::Dropped(QueueDrop::Full));
        // At t = 1.0 the first packet has departed.
        assert!(matches!(q.offer(pkt(2, 1.0), 1.0), Offer::Accepted { .. }));
        assert_eq!(q.drops_full(), 1);
    }

    #[test]
    fn processed_bits_sum() {
        let mut q = ChQueue::new(10, 1.0, 100.0);
        for i in 0..5 {
            q.offer(pkt(i, i as f64 * 2.0), i as f64 * 2.0);
        }
        assert_eq!(q.processed_bits(), 5000);
    }

    #[test]
    fn overload_drops_most_packets() {
        // Offered load 10x service capacity: most packets must drop —
        // this is the Fig. 3(a) congestion mechanism in isolation.
        let mut q = ChQueue::new(5, 1.0, 100.0);
        let mut accepted = 0;
        for i in 0..1000 {
            let t = i as f64 * 0.1; // 10 packets per slot vs capacity 1/slot
            if matches!(q.offer(pkt(i, t), t), Offer::Accepted { .. }) {
                accepted += 1;
            }
        }
        assert!(accepted <= 105, "accepted {accepted}, capacity ≈ 100");
        assert!(q.drops_full() + q.drops_deadline() >= 895);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        ChQueue::new(0, 1.0, 10.0);
    }

    #[test]
    fn reset_is_equivalent_to_new() {
        // A reused (reset) queue must be indistinguishable from a fresh
        // one: same offers, same counters, no state bleed-through.
        let mut used = ChQueue::new(2, 10.0, 50.0);
        for i in 0..5 {
            used.offer(pkt(i, 0.0), 0.0);
        }
        assert!(used.drops_full() > 0);
        used.reset(4, 1.0, 100.0);
        let mut fresh = ChQueue::new(4, 1.0, 100.0);
        for i in 0..8 {
            let t = i as f64 * 0.4;
            assert_eq!(used.offer(pkt(i, t), t), fresh.offer(pkt(i, t), t));
        }
        assert_eq!(used.processed(), fresh.processed());
        assert_eq!(used.drops_full(), fresh.drops_full());
        assert_eq!(used.drops_deadline(), fresh.drops_deadline());
        assert_eq!(used.peak_occupancy(), fresh.peak_occupancy());
    }
}
