//! Machine-readable run traces.
//!
//! A [`RunTrace`] captures the per-round evolution of a simulation —
//! head sets, per-node residual energies, packet counters — in a form
//! that serializes to JSON for external plotting (the Fig. 3/4 artifacts
//! are derived from exactly these quantities). Because snapshots hold a
//! residual per node per round, tracing is opt-in, two ways:
//!
//! * [`TraceRecorder`] wraps any [`Protocol`] and observes the
//!   simulation through the protocol hooks without perturbing it;
//! * [`TraceSink`] is a [`qlec_obs::SimObserver`] that rebuilds the same
//!   trace from the structured event stream ([`qlec_obs::Event::RoundEnded`]
//!   carries heads, residuals and the alive count), so tracing composes
//!   with the other sinks on one [`qlec_obs::ObserverSet`].

use crate::network::Network;
use crate::node::NodeId;
use crate::packet::Target;
use crate::protocol::Protocol;
use qlec_obs::{Event, ObsError, SimObserver};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One round's snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundSnapshot {
    pub round: u32,
    /// Ids of this round's cluster heads.
    pub heads: Vec<u32>,
    /// Residual energy per node (id order) at the *end* of the round.
    pub residuals: Vec<f64>,
    /// Alive nodes at the end of the round.
    pub alive: usize,
}

/// A full run trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunTrace {
    pub protocol: String,
    pub rounds: Vec<RoundSnapshot>,
}

impl RunTrace {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, ObsError> {
        serde_json::to_string_pretty(self).map_err(ObsError::from)
    }

    /// Parse a trace back from JSON.
    pub fn from_json(text: &str) -> Result<RunTrace, ObsError> {
        serde_json::from_str(text).map_err(ObsError::from)
    }

    /// How many times each node served as head over the trace (head-duty
    /// histogram — rotation fairness in one vector).
    pub fn head_duty_counts(&self, n_nodes: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n_nodes];
        for r in &self.rounds {
            for &h in &r.heads {
                if let Some(c) = counts.get_mut(h as usize) {
                    *c += 1;
                }
            }
        }
        counts
    }
}

/// Wraps a protocol and records a [`RunTrace`] as the simulation drives
/// it. All hooks are forwarded verbatim.
pub struct TraceRecorder<P> {
    inner: P,
    trace: RunTrace,
    pending_heads: Vec<u32>,
}

impl<P: Protocol> TraceRecorder<P> {
    /// Wrap `inner`.
    pub fn new(inner: P) -> Self {
        TraceRecorder {
            inner,
            trace: RunTrace::default(),
            pending_heads: Vec::new(),
        }
    }

    /// Finish and take the trace (and the wrapped protocol back).
    pub fn into_parts(self) -> (P, RunTrace) {
        (self.inner, self.trace)
    }

    /// The trace so far.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }
}

impl<P: Protocol> Protocol for TraceRecorder<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        if self.trace.protocol.is_empty() {
            self.trace.protocol = self.inner.name().to_string();
        }
        let heads = self.inner.on_round_start(net, round, rng);
        self.pending_heads = heads.iter().map(|h| h.0).collect();
        heads
    }

    fn on_packet_start(&mut self, src: NodeId) {
        self.inner.on_packet_start(src);
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target {
        self.inner.choose_target(net, src, heads, rng)
    }

    fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        self.inner.on_hop_result(src, target, success);
    }

    fn aggregate_route(&mut self, net: &Network, head: NodeId, heads: &[NodeId]) -> Vec<Target> {
        self.inner.aggregate_route(net, head, heads)
    }

    fn on_round_end(&mut self, net: &mut Network, round: u32, heads: &[NodeId]) {
        self.inner.on_round_end(net, round, heads);
        self.trace.rounds.push(RoundSnapshot {
            round,
            heads: std::mem::take(&mut self.pending_heads),
            residuals: net.iter().map(|n| n.residual()).collect(),
            alive: net.alive_count(),
        });
    }

    // Deliberately NOT forwarding `planner()`: the recorder's job is a
    // faithful per-decision trace, so it keeps the engine on the
    // `choose_target` path (the default `None`) even when the wrapped
    // protocol could plan.

    fn configure_threads(&mut self, threads: usize) {
        self.inner.configure_threads(threads);
    }
}

/// Rebuilds a [`RunTrace`] from the structured event stream.
///
/// [`qlec_obs::Event::RoundEnded`] carries everything a
/// [`RoundSnapshot`] needs (heads, per-node residuals, alive count), so
/// attaching this sink to a [`qlec_obs::ObserverSet`] yields the same
/// trace a [`TraceRecorder`] would — without wrapping the protocol.
#[derive(Debug, Default)]
pub struct TraceSink {
    trace: RunTrace,
}

impl TraceSink {
    /// A sink labelled with the protocol's name.
    pub fn new(protocol: &str) -> Self {
        TraceSink {
            trace: RunTrace {
                protocol: protocol.to_string(),
                rounds: Vec::new(),
            },
        }
    }

    /// The trace so far.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Consume the sink, returning the accumulated trace.
    pub fn into_trace(self) -> RunTrace {
        self.trace
    }
}

impl SimObserver for TraceSink {
    fn on_event(&mut self, event: &Event) {
        if let Event::RoundEnded {
            round,
            alive,
            heads,
            residuals_j,
            ..
        } = event
        {
            self.trace.rounds.push(RoundSnapshot {
                round: *round,
                heads: heads.clone(),
                residuals: residuals_j.clone(),
                alive: *alive,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::GreedyEnergyProtocol;
    use crate::sim::{SimConfig, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn traced_run(rounds: u32) -> (RunTrace, usize) {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, 30, 200.0, 5.0);
        let n = net.len();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = rounds;
        let mut recorder = TraceRecorder::new(GreedyEnergyProtocol::new(3));
        let _ = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut recorder, &mut rng);
        let (_, trace) = recorder.into_parts();
        (trace, n)
    }

    #[test]
    fn records_every_round() {
        let (trace, n) = traced_run(4);
        assert_eq!(trace.protocol, "greedy-energy");
        assert_eq!(trace.rounds.len(), 4);
        for (i, r) in trace.rounds.iter().enumerate() {
            assert_eq!(r.round, i as u32);
            assert_eq!(r.heads.len(), 3);
            assert_eq!(r.residuals.len(), n);
            assert!(r.alive <= n);
        }
    }

    #[test]
    fn residuals_are_non_increasing_per_node() {
        let (trace, n) = traced_run(5);
        for node in 0..n {
            for w in trace.rounds.windows(2) {
                assert!(
                    w[1].residuals[node] <= w[0].residuals[node] + 1e-12,
                    "node {node} gained energy"
                );
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let (trace, _) = traced_run(3);
        let json = trace.to_json().unwrap();
        let parsed = RunTrace::from_json(&json).unwrap();
        assert_eq!(parsed.rounds.len(), trace.rounds.len());
        assert_eq!(parsed.protocol, trace.protocol);
        assert_eq!(parsed.rounds[1].heads, trace.rounds[1].heads);
        assert!(RunTrace::from_json("not json").is_err());
    }

    #[test]
    fn trace_sink_matches_trace_recorder() {
        use qlec_obs::ObserverSet;
        use std::sync::{Arc, Mutex};

        let mk_net = |rng: &mut StdRng| NetworkBuilder::new().uniform_cube(rng, 30, 200.0, 5.0);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 4;

        // Recorder path.
        let mut rng = StdRng::seed_from_u64(9);
        let net = mk_net(&mut rng);
        let mut recorder = TraceRecorder::new(GreedyEnergyProtocol::new(3));
        let _ = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut recorder, &mut rng);
        let (_, recorded) = recorder.into_parts();

        // Sink path, same seed.
        let mut rng = StdRng::seed_from_u64(9);
        let net = mk_net(&mut rng);
        let sink = Arc::new(Mutex::new(TraceSink::new("greedy-energy")));
        let mut obs = ObserverSet::new();
        obs.attach(sink.clone());
        let mut p = GreedyEnergyProtocol::new(3);
        let _ = Simulator::builder(net)
            .config(cfg)
            .observers(obs)
            .build()
            .run(&mut p, &mut rng);
        let sunk = sink.lock().unwrap().trace().clone();

        assert_eq!(sunk.protocol, recorded.protocol);
        assert_eq!(sunk.rounds.len(), recorded.rounds.len());
        for (a, b) in sunk.rounds.iter().zip(recorded.rounds.iter()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.heads, b.heads);
            assert_eq!(a.alive, b.alive);
            assert_eq!(a.residuals, b.residuals);
        }
    }

    #[test]
    fn head_duty_histogram() {
        let (trace, n) = traced_run(6);
        let counts = trace.head_duty_counts(n);
        assert_eq!(counts.len(), n);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, 6 * 3, "3 heads per round for 6 rounds");
    }
}
