//! The clustering-protocol interface, plus simple reference protocols.
//!
//! QLEC (in `qlec-core`) and every baseline (in `qlec-clustering`)
//! implement [`Protocol`]; the round engine in [`crate::sim`] drives any of
//! them identically, so measured differences are attributable to the
//! algorithms alone. The hooks mirror the paper's structure:
//!
//! * [`Protocol::on_round_start`] — the *Cluster Head Selection Phase*
//!   (Algorithm 1 lines 5–9). The protocol receives `&mut Network` so it
//!   can charge control-message energy (HELLO broadcasts of Algorithm 3)
//!   and must install roles/rotation bookkeeping itself (helpers below).
//! * [`Protocol::choose_target`] — the per-packet decision of the *Data
//!   Transmission Phase* (`Send-Data`, Algorithm 4).
//! * [`Protocol::on_hop_result`] — the ACK feedback of §4.2 ("an ACK
//!   message will be delivered … indicating that the packet … is
//!   successfully received and processed"), from which QLEC estimates the
//!   link probabilities.
//! * [`Protocol::aggregate_route`] — how a head's fused data reaches the
//!   BS (direct for QLEC/k-means; hierarchy multi-hop for the FCM
//!   baseline).
//! * [`Protocol::on_round_end`] — Algorithm 1 line 15 (heads update their
//!   own V values) and any other per-round bookkeeping.

use crate::network::Network;
use crate::node::NodeId;
use crate::packet::Target;
use rand::RngCore;

/// Opaque per-node planning state produced by [`RoutePlanner::begin_node`]
/// and handed back to [`Protocol::absorb_plan`] once the round's
/// transmissions are merged. `Send` so node plans can be computed on
/// worker threads.
pub type PlanScratch = Box<dyn std::any::Any + Send>;

/// Immutable, thread-safe routing front-end for the parallel round engine.
///
/// A protocol that can decide per-packet targets from shared state (plus a
/// private per-node scratch) exposes one of these via
/// [`Protocol::planner`]; the engine then plans every member node's
/// packets independently — in node-id order sequentially, or fanned out
/// across threads — and commits the per-node results back through
/// [`Protocol::absorb_plan`] in stable node-id order. Because each node's
/// plan reads only the frozen post-election network, the shared `&self`
/// state, and its own scratch, the outcome is identical at every thread
/// count.
///
/// Within the planning pass the protocol's mutable state is *not*
/// consulted or updated: learning feedback reaches the real protocol via
/// the usual [`Protocol::on_hop_result`] replay during the sequential
/// merge, and per-node learned state (e.g. value updates) is committed in
/// `absorb_plan`.
pub trait RoutePlanner: Sync {
    /// Create the private scratch for planning `src`'s packets this round.
    fn begin_node(&self, net: &Network, src: NodeId) -> PlanScratch;

    /// A fresh packet from `src` is about to be planned (reset per-packet
    /// scratch state such as the NACK list).
    fn begin_packet(&self, src: NodeId, scratch: &mut PlanScratch);

    /// Plan the routing decision for one attempt of `src`'s current
    /// packet — the immutable counterpart of [`Protocol::choose_target`].
    /// `rng` is the node's private decision stream.
    fn plan_target(
        &self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
        scratch: &mut PlanScratch,
    ) -> Target;

    /// Radio-level outcome of the planned attempt (queue verdicts are
    /// only known at merge time and reach the protocol through
    /// [`Protocol::on_hop_result`] instead).
    fn plan_hop_result(
        &self,
        src: NodeId,
        target: Target,
        success: bool,
        scratch: &mut PlanScratch,
    );
}

/// A clustering/routing protocol under test.
pub trait Protocol {
    /// Human-readable name used in reports and experiment tables.
    fn name(&self) -> &str;

    /// Cluster-head selection for `round`. Returns the ids of the heads
    /// that will serve; must also promote them in the network (see
    /// [`install_heads`]). An empty return means no clustering this round
    /// (members will be asked to route anyway and should pick
    /// [`Target::Bs`]).
    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId>;

    /// Called once when member `src` starts trying to send a fresh packet
    /// (before the first `choose_target` for it). Lets learning protocols
    /// reset per-packet state such as the set of targets already NACKed
    /// for this packet.
    fn on_packet_start(&mut self, src: NodeId) {
        let _ = src;
    }

    /// Routing decision for one packet originated by member `src`.
    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target;

    /// ACK feedback for the member-hop attempt (`success == false` covers
    /// link loss, queue refusal, and deadline misses — the paper's ACK
    /// semantics is "received *and processed*").
    fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        let _ = (src, target, success);
    }

    /// Hop sequence for `head`'s fused aggregate. The last element must be
    /// [`Target::Bs`]; intermediate [`Target::Head`] entries are relay
    /// heads (the FCM baseline's hierarchy routing). Default: direct.
    fn aggregate_route(&mut self, net: &Network, head: NodeId, heads: &[NodeId]) -> Vec<Target> {
        let _ = (net, head, heads);
        vec![Target::Bs]
    }

    /// End-of-round hook (after aggregates are sent).
    fn on_round_end(&mut self, net: &mut Network, round: u32, heads: &[NodeId]) {
        let _ = (net, round, heads);
    }

    /// The protocol's immutable planning front-end, if it has one. `None`
    /// (the default) makes the engine fall back to sequential per-node
    /// [`Protocol::choose_target`] calls — still deterministic at every
    /// thread count, just never fanned out.
    fn planner(&self) -> Option<&dyn RoutePlanner> {
        None
    }

    /// Commit the per-node scratch produced through [`Protocol::planner`]
    /// this round. Called once per planned member node, in ascending
    /// node-id order, after the transmission merge.
    fn absorb_plan(&mut self, src: NodeId, scratch: PlanScratch) {
        let _ = (src, scratch);
    }

    /// The engine's resolved worker-thread count for this run (called once
    /// before the first round). Protocols may size internal fan-out
    /// (e.g. batched value refreshes) accordingly.
    fn configure_threads(&mut self, threads: usize) {
        let _ = threads;
    }
}

/// Boxed protocols are protocols (lets `Box<dyn Protocol>` flow through
/// generic wrappers like `TraceRecorder`).
impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        (**self).on_round_start(net, round, rng)
    }

    fn on_packet_start(&mut self, src: NodeId) {
        (**self).on_packet_start(src)
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target {
        (**self).choose_target(net, src, heads, rng)
    }

    fn on_hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        (**self).on_hop_result(src, target, success)
    }

    fn aggregate_route(&mut self, net: &Network, head: NodeId, heads: &[NodeId]) -> Vec<Target> {
        (**self).aggregate_route(net, head, heads)
    }

    fn on_round_end(&mut self, net: &mut Network, round: u32, heads: &[NodeId]) {
        (**self).on_round_end(net, round, heads)
    }

    fn planner(&self) -> Option<&dyn RoutePlanner> {
        (**self).planner()
    }

    fn absorb_plan(&mut self, src: NodeId, scratch: PlanScratch) {
        (**self).absorb_plan(src, scratch)
    }

    fn configure_threads(&mut self, threads: usize) {
        (**self).configure_threads(threads)
    }
}

/// Promote `heads` in the network for `round` (role + rotation
/// bookkeeping). Call from `on_round_start` implementations.
pub fn install_heads(net: &mut Network, round: u32, heads: &[NodeId]) {
    for &h in heads {
        net.node_mut(h).promote_to_head(round);
    }
}

/// Members pick the geometrically nearest alive head; heads are the `k`
/// alive nodes with the highest residual energy (ties to lower id). A
/// deterministic, energy-greedy reference protocol used by the engine's
/// own tests and as an extra comparison point.
#[derive(Debug, Clone)]
pub struct GreedyEnergyProtocol {
    /// Number of heads to elect.
    pub k: usize,
}

impl GreedyEnergyProtocol {
    /// Create with the given head count.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "head count must be positive");
        GreedyEnergyProtocol { k }
    }
}

impl Protocol for GreedyEnergyProtocol {
    fn name(&self) -> &str {
        "greedy-energy"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let mut alive: Vec<NodeId> = net.alive_ids().collect();
        alive.sort_by(|&a, &b| {
            net.node(b)
                .residual()
                .total_cmp(&net.node(a).residual())
                .then(a.cmp(&b))
        });
        alive.truncate(self.k);
        install_heads(net, round, &alive);
        alive
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
    }

    fn planner(&self) -> Option<&dyn RoutePlanner> {
        Some(self)
    }
}

/// Nearest-head routing is a pure function of the frozen network, so the
/// planner needs no scratch at all.
impl RoutePlanner for GreedyEnergyProtocol {
    fn begin_node(&self, _net: &Network, _src: NodeId) -> PlanScratch {
        Box::new(())
    }

    fn begin_packet(&self, _src: NodeId, _scratch: &mut PlanScratch) {}

    fn plan_target(
        &self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
        _scratch: &mut PlanScratch,
    ) -> Target {
        nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
    }

    fn plan_hop_result(
        &self,
        _src: NodeId,
        _target: Target,
        _success: bool,
        _scratch: &mut PlanScratch,
    ) {
    }
}

/// Every node transmits straight to the base station — the no-clustering
/// strawman that clustering protocols are supposed to beat.
#[derive(Debug, Clone, Default)]
pub struct DirectToBsProtocol;

impl Protocol for DirectToBsProtocol {
    fn name(&self) -> &str {
        "direct-to-bs"
    }

    fn on_round_start(
        &mut self,
        _net: &mut Network,
        _round: u32,
        _rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        Vec::new()
    }

    fn choose_target(
        &mut self,
        _net: &Network,
        _src: NodeId,
        _heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        Target::Bs
    }

    fn planner(&self) -> Option<&dyn RoutePlanner> {
        Some(self)
    }
}

impl RoutePlanner for DirectToBsProtocol {
    fn begin_node(&self, _net: &Network, _src: NodeId) -> PlanScratch {
        Box::new(())
    }

    fn begin_packet(&self, _src: NodeId, _scratch: &mut PlanScratch) {}

    fn plan_target(
        &self,
        _net: &Network,
        _src: NodeId,
        _heads: &[NodeId],
        _rng: &mut dyn RngCore,
        _scratch: &mut PlanScratch,
    ) -> Target {
        Target::Bs
    }

    fn plan_hop_result(
        &self,
        _src: NodeId,
        _target: Target,
        _success: bool,
        _scratch: &mut PlanScratch,
    ) {
    }
}

/// The geometrically nearest *alive* head to `src`, if any.
pub fn nearest_head(net: &Network, src: NodeId, heads: &[NodeId]) -> Option<NodeId> {
    heads
        .iter()
        .copied()
        .filter(|&h| net.node(h).is_alive())
        .min_by(|&a, &b| {
            net.distance(src, a)
                .total_cmp(&net.distance(src, b))
                .then(a.cmp(&b))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::node::Role;
    use qlec_geom::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_network() -> Network {
        // Nodes at x = 0, 10, 20, 30 with distinct energies.
        let spec: Vec<(Vec3, f64)> = (0..4)
            .map(|i| (Vec3::new(i as f64 * 10.0, 0.0, 0.0), 1.0 + i as f64))
            .collect();
        NetworkBuilder::new().from_nodes(&spec)
    }

    #[test]
    fn greedy_energy_picks_highest_residual() {
        let mut net = line_network();
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = GreedyEnergyProtocol::new(2);
        let heads = p.on_round_start(&mut net, 0, &mut rng);
        // Energies are 1,2,3,4 → heads are nodes 3 and 2.
        assert_eq!(heads, vec![NodeId(3), NodeId(2)]);
        assert_eq!(net.node(NodeId(3)).role, Role::ClusterHead);
        assert_eq!(net.node(NodeId(3)).last_head_round, Some(0));
    }

    #[test]
    fn greedy_energy_skips_dead_nodes() {
        let mut net = line_network();
        net.node_mut(NodeId(3)).battery.consume(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = GreedyEnergyProtocol::new(2);
        let heads = p.on_round_start(&mut net, 0, &mut rng);
        assert_eq!(heads, vec![NodeId(2), NodeId(1)]);
    }

    #[test]
    fn members_choose_nearest_head() {
        let net = line_network();
        let heads = [NodeId(0), NodeId(3)];
        assert_eq!(nearest_head(&net, NodeId(1), &heads), Some(NodeId(0)));
        assert_eq!(nearest_head(&net, NodeId(2), &heads), Some(NodeId(3)));
        assert_eq!(nearest_head(&net, NodeId(1), &[]), None);
    }

    #[test]
    fn nearest_head_ignores_dead_heads() {
        let mut net = line_network();
        net.node_mut(NodeId(0)).battery.consume(10.0);
        let heads = [NodeId(0), NodeId(3)];
        assert_eq!(nearest_head(&net, NodeId(1), &heads), Some(NodeId(3)));
    }

    #[test]
    fn direct_protocol_never_clusters() {
        let mut net = line_network();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = DirectToBsProtocol;
        assert!(p.on_round_start(&mut net, 0, &mut rng).is_empty());
        assert_eq!(p.choose_target(&net, NodeId(1), &[], &mut rng), Target::Bs);
    }

    #[test]
    fn default_aggregate_route_is_direct() {
        let net = line_network();
        let mut p = GreedyEnergyProtocol::new(1);
        assert_eq!(
            p.aggregate_route(&net, NodeId(0), &[NodeId(0)]),
            vec![Target::Bs]
        );
    }
}
