//! Poisson traffic generation.
//!
//! §5.2: "The packet generation time in the network follows the poisson
//! distribution. λ is the average packet inter-arrival time for the
//! network. The smaller λ is, the more congested the network is." Each
//! sensing node therefore generates packets whose inter-arrival times are
//! exponential with mean λ (in slots); within a round of duration `T` the
//! expected per-node packet count is `T / λ`.

use qlec_geom::randx;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Poisson packet-generation process for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonTraffic {
    /// Mean packet inter-arrival time λ, in slots. Smaller = more
    /// congested (the x-axis of Fig. 3).
    pub mean_interarrival: f64,
}

impl PoissonTraffic {
    /// Construct with validation.
    pub fn new(mean_interarrival: f64) -> Self {
        assert!(
            mean_interarrival > 0.0 && mean_interarrival.is_finite(),
            "mean inter-arrival must be positive, got {mean_interarrival}"
        );
        PoissonTraffic { mean_interarrival }
    }

    /// Arrival times in `[start, start + duration)`, strictly increasing.
    ///
    /// Standard homogeneous-Poisson simulation: cumulative sums of
    /// exponential gaps, truncated at the window end.
    pub fn arrivals_in<R: Rng + ?Sized>(&self, rng: &mut R, start: f64, duration: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.for_each_arrival(rng, start, duration, |t| out.push(t));
        out
    }

    /// Visit the arrival times of [`PoissonTraffic::arrivals_in`] in order
    /// without allocating — the round engine's per-node hot path (one call
    /// per alive node per round). Draws exactly the same RNG sequence as
    /// the allocating variant.
    pub fn for_each_arrival<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: f64,
        duration: f64,
        mut visit: impl FnMut(f64),
    ) {
        assert!(duration >= 0.0, "duration must be non-negative");
        let end = start + duration;
        let mut t = start + randx::exponential(rng, self.mean_interarrival);
        while t < end {
            visit(t);
            t += randx::exponential(rng, self.mean_interarrival);
        }
    }

    /// Expected number of arrivals in a window of the given duration.
    pub fn expected_count(&self, duration: f64) -> f64 {
        duration / self.mean_interarrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_in_window_and_sorted() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = PoissonTraffic::new(2.0);
        let arr = t.arrivals_in(&mut rng, 100.0, 50.0);
        for w in arr.windows(2) {
            assert!(w[0] < w[1], "arrivals must be strictly increasing");
        }
        for &a in &arr {
            assert!((100.0..150.0).contains(&a));
        }
    }

    #[test]
    fn mean_rate_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = PoissonTraffic::new(2.0);
        let trials = 2_000;
        let total: usize = (0..trials)
            .map(|_| t.arrivals_in(&mut rng, 0.0, 100.0).len())
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean arrivals {mean}, want ≈ 50");
        assert_eq!(t.expected_count(100.0), 50.0);
    }

    #[test]
    fn smaller_lambda_means_more_packets() {
        // The congestion knob of Fig. 3: halving λ doubles traffic.
        let mut rng = StdRng::seed_from_u64(3);
        let congested: usize = (0..500)
            .map(|_| {
                PoissonTraffic::new(1.0)
                    .arrivals_in(&mut rng, 0.0, 100.0)
                    .len()
            })
            .sum();
        let idle: usize = (0..500)
            .map(|_| {
                PoissonTraffic::new(10.0)
                    .arrivals_in(&mut rng, 0.0, 100.0)
                    .len()
            })
            .sum();
        assert!(congested > 8 * idle, "congested {congested} vs idle {idle}");
    }

    #[test]
    fn zero_duration_yields_no_arrivals() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(PoissonTraffic::new(1.0)
            .arrivals_in(&mut rng, 5.0, 0.0)
            .is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_lambda() {
        PoissonTraffic::new(0.0);
    }
}
