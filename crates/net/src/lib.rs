//! Packet-level 3-D wireless sensor network simulator.
//!
//! This crate is the experimental substrate of §5 of the QLEC paper: `N`
//! battery-powered nodes in an `M × M × M` cube, a base station at the
//! centre, Poisson packet generation ("the packet generation time in the
//! network follows the poisson distribution", §5.2), bounded queues at
//! cluster heads ("the long queue at cluster heads leads to discarding more
//! packets"), data fusion with a 50 % compression ratio (Table 2), and the
//! death-line lifespan rule of §5.1.
//!
//! The simulator is *protocol-agnostic*: QLEC and every baseline implement
//! the [`protocol::Protocol`] trait (head election, per-packet routing,
//! aggregate routing, ACK feedback), and [`sim::Simulator`] runs any of
//! them over successive rounds, producing a [`metrics::SimReport`] with the
//! exact quantities Fig. 3 plots — packet delivery rate, total energy
//! consumption, network lifespan — plus per-packet latency and per-node
//! energy-consumption rates (Fig. 4).
//!
//! Module map:
//!
//! * [`node`] — node identity, role, position, battery,
//! * [`arena`] — struct-of-arrays node storage with `NodeRef`/`NodeMut`
//!   views (the hot-path layout behind [`network::Network`]),
//! * [`network`] — the deployment (nodes + BS + radio/link models),
//! * [`packet`] — packets and routing targets,
//! * [`traffic`] — Poisson arrival-time generation,
//! * [`queue`] — the bounded FIFO cluster-head queue with service times,
//! * [`protocol`] — the protocol trait and simple reference protocols,
//! * [`metrics`] — round metrics, lifespan tracking, report aggregation,
//! * [`sim`] — the round engine tying everything together (stage-1
//!   planning; the stage-2 merge lives in the crate-private `merge`
//!   module with an explicit `MergePlan`/`MergeOutcome` API),
//! * [`trace`] — opt-in per-round JSON traces for external plotting.

pub mod arena;
pub(crate) mod merge;
pub mod metrics;
pub mod network;
pub mod node;
pub mod packet;
pub mod protocol;
pub mod queue;
pub mod sim;
pub mod trace;
pub mod traffic;

pub use arena::{NodeArena, NodeMut, NodeRef};
pub use merge::MergeOutcome;
pub use metrics::{RoundMetrics, SimReport};
pub use network::{Network, NetworkBuilder};
pub use node::{Node, NodeId, Role};
pub use packet::{Packet, Target};
pub use protocol::Protocol;
pub use qlec_fault::{FaultDriver, FaultEvent, FaultPlan};
pub use sim::{SimBuilder, SimConfig, Simulator};
