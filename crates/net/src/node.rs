//! Sensor nodes.
//!
//! Each node `b_i` carries the state the paper's algorithms read: its 3-D
//! position, residual energy (via [`Battery`]), its current role, and the
//! rotation bookkeeping DEEC needs — the round it last served as a cluster
//! head, which drives the "has not been selected as the cluster head in the
//! recent `n_i` rounds" candidacy condition of Algorithm 2.

use qlec_geom::Vec3;
use qlec_radio::Battery;
use serde::{Deserialize, Serialize};

/// Dense node identifier (index into [`crate::network::Network`] storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A node's role in the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Role {
    /// Ordinary sensing node (sends to a cluster head).
    #[default]
    Member,
    /// Cluster head for this round (aggregates and forwards to the BS).
    ClusterHead,
}

/// One sensor node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub pos: Vec3,
    pub battery: Battery,
    pub role: Role,
    /// Round at which this node last became a cluster head (`None` if
    /// never). DEEC's rotating-epoch rule compares the gap against `n_i`.
    pub last_head_round: Option<u32>,
    /// How many times the node has served as a cluster head (diagnostics
    /// and rotation-fairness tests).
    pub head_count: u32,
    /// Whether the node's hardware is up. Fault injection (`qlec-fault`)
    /// clears this for crashed/blacked-out nodes; a node with charge but
    /// `online == false` is as dead to the protocol stack as an empty
    /// battery, except that a blackout may later restore it.
    pub online: bool,
}

impl Node {
    /// A fresh member node.
    pub fn new(id: NodeId, pos: Vec3, initial_energy: f64) -> Self {
        Node {
            id,
            pos,
            battery: Battery::new(initial_energy),
            role: Role::Member,
            last_head_round: None,
            head_count: 0,
            online: true,
        }
    }

    /// Residual energy `E_i(r)`.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.battery.residual()
    }

    /// Whether the node can still participate: hardware up *and* a
    /// non-empty battery.
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.online && !self.battery.is_empty()
    }

    /// Whether the node is below the §5.1 death line.
    #[inline]
    pub fn below_death_line(&self, death_line: f64) -> bool {
        self.battery.depleted(death_line)
    }

    /// Whether the node has served as head within the last `n_i` rounds
    /// before (and including) round `r` — the DEEC candidacy exclusion.
    pub fn was_head_recently(&self, r: u32, n_i: u32) -> bool {
        match self.last_head_round {
            None => false,
            Some(last) => r.saturating_sub(last) < n_i,
        }
    }

    /// Mark the node as this round's cluster head.
    pub fn promote_to_head(&mut self, round: u32) {
        self.role = Role::ClusterHead;
        self.last_head_round = Some(round);
        self.head_count += 1;
    }

    /// Demote back to member (does not erase rotation bookkeeping). Used
    /// both between rounds and by Algorithm 3 when a redundant head
    /// withdraws; a withdrawal also takes back the head-count increment.
    pub fn demote_to_member(&mut self, withdraw: bool) {
        self.role = Role::Member;
        if withdraw {
            self.head_count = self.head_count.saturating_sub(1);
            // A withdrawn head did not actually serve: restore eligibility
            // bookkeeping only if this round was its only service. We keep
            // `last_head_round` — the paper is silent, and keeping it is
            // the conservative choice (slightly fewer repeat candidacies).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(3), Vec3::splat(1.0), 5.0)
    }

    #[test]
    fn fresh_node_state() {
        let n = node();
        assert_eq!(n.id.index(), 3);
        assert_eq!(n.role, Role::Member);
        assert_eq!(n.residual(), 5.0);
        assert!(n.is_alive());
        assert_eq!(n.last_head_round, None);
        assert_eq!(n.head_count, 0);
        assert_eq!(format!("{}", n.id), "b3");
    }

    #[test]
    fn offline_node_is_not_alive() {
        let mut n = node();
        assert!(n.online);
        n.online = false;
        assert!(!n.is_alive(), "offline overrides a charged battery");
        assert_eq!(n.residual(), 5.0, "battery state is preserved");
        n.online = true;
        assert!(n.is_alive(), "recovery restores the node");
    }

    #[test]
    fn death_line_vs_alive() {
        let mut n = node();
        n.battery.consume(4.95);
        assert!(n.is_alive());
        assert!(n.below_death_line(0.1));
        assert!(!n.below_death_line(0.01));
        n.battery.consume(1.0);
        assert!(!n.is_alive());
    }

    #[test]
    fn promotion_bookkeeping() {
        let mut n = node();
        n.promote_to_head(7);
        assert_eq!(n.role, Role::ClusterHead);
        assert_eq!(n.last_head_round, Some(7));
        assert_eq!(n.head_count, 1);
        n.demote_to_member(false);
        assert_eq!(n.role, Role::Member);
        assert_eq!(n.head_count, 1);
    }

    #[test]
    fn withdrawal_reverses_head_count() {
        let mut n = node();
        n.promote_to_head(2);
        n.demote_to_member(true);
        assert_eq!(n.head_count, 0);
        assert_eq!(n.last_head_round, Some(2));
    }

    #[test]
    fn recent_head_exclusion_window() {
        let mut n = node();
        assert!(!n.was_head_recently(10, 5), "never a head");
        n.promote_to_head(10);
        assert!(n.was_head_recently(10, 1), "same round counts");
        assert!(n.was_head_recently(13, 5));
        assert!(!n.was_head_recently(15, 5), "window of 5 expired at r=15");
        assert!(!n.was_head_recently(100, 5));
    }

    #[test]
    fn recent_head_never_underflows() {
        let mut n = node();
        n.promote_to_head(10);
        // Query at an earlier round than the promotion (protocol replays)
        // must not panic on underflow.
        assert!(n.was_head_recently(5, 3));
    }
}
