//! The round engine.
//!
//! One simulated round follows Algorithm 1's two phases:
//!
//! 1. **Cluster Head Selection** — the protocol elects heads (charging any
//!    control-message energy itself).
//! 2. **Data Transmission** — alive members generate packets at Poisson
//!    times (§5.2) and the protocol routes each to a head or the BS; heads
//!    run bounded FIFO queues ([`crate::queue`]); at the round end every
//!    head fuses what it processed (50 % compression, Table 2), pays the
//!    aggregation energy `E_DA` per bit, and forwards the fused payload
//!    along the protocol's aggregate route to the BS.
//!
//! Every radio interaction draws the first-order-radio-model energy from
//! the respective battery and samples the link model, so energy, delivery,
//! and latency all emerge from one consistent event sequence.
//!
//! **Latency convention.** A delivered packet's latency is the time from
//! its creation until its head finished processing it, plus one
//! `hop_delay` per radio hop on the way to the BS. Queueing delay at a
//! congested head and extra relay hops (the FCM baseline) therefore both
//! show up in the metric; the shared end-of-round fusion wait, identical
//! across protocols, does not.

use crate::merge::{
    self, sample_hop, MergeOutcome, MergePlan, MergeState, PacketMeta, PacketPlan, PlannedAttempt,
    PlannedNode,
};
use crate::metrics::{EnergyBreakdown, LifespanInfo, PacketCounters, RoundMetrics, SimReport};
use crate::network::Network;
use crate::node::NodeId;
use crate::packet::Target;
use crate::protocol::{PlanScratch, Protocol, RoutePlanner};
use crate::queue::ChQueue;
use crate::traffic::PoissonTraffic;
use qlec_fault::FaultDriver;
use qlec_geom::randx::{stream_tag, StreamRng};
use qlec_geom::stats::Welford;
use qlec_obs::{Event, ObserverSet, PacketFate, Phase};
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Simulation parameters. Defaults mirror §5.1/Table 2 where the paper
/// specifies them; the queueing/timing constants the paper leaves implicit
/// are documented on each field.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Rounds to simulate — the paper's `R = 20`.
    pub rounds: u32,
    /// Slots per round (the round duration `T`).
    pub slots_per_round: f64,
    /// Packet payload in bits (the paper's `L`).
    pub packet_bits: u64,
    /// Mean packet inter-arrival time λ in slots (Fig. 3's x-axis;
    /// smaller = more congested).
    pub mean_interarrival: f64,
    /// Cluster-head queue capacity ("limited storage caches", §4.2).
    pub queue_capacity: usize,
    /// Head service time per packet, slots.
    pub service_time: f64,
    /// Per-radio-hop forwarding delay, slots.
    pub hop_delay: f64,
    /// Data-fusion compression ratio at heads (Table 2: 50 %).
    pub compression: f64,
    /// Energy death line (J), §5.1.
    pub death_line: f64,
    /// Stop simulating once the death line is crossed (lifespan runs);
    /// otherwise run all `rounds` (PDR/energy runs — §5.1 "we lower the
    /// energy death line while measuring … energy … and packet delivery").
    pub stop_when_dead: bool,
    /// Extra attempts for each aggregate hop after the first fails.
    pub aggregate_retries: u32,
    /// Extra attempts for a member's packet after the first fails. The
    /// QLEC MDP's failure transition is a *self-loop* (`S_{t+1} = b_i`,
    /// §4.2) — the node still holds the packet and acts again, possibly
    /// toward a different head — so the simulator re-asks the protocol
    /// for a target on every retry. All protocols get the same retry
    /// budget. Each attempt costs transmit energy.
    pub member_retries: u32,
    /// Whether heads sense and contribute their own packets (fed straight
    /// into their queue, no radio hop).
    pub heads_generate: bool,
    /// Worker threads for the data-parallel phases of the round engine
    /// (`0` = use every available core). Pure throughput knob: traffic
    /// generation and member routing draw from per-(seed, round, node)
    /// RNG streams and are merged in stable node order, so event streams
    /// and reports are byte-identical at every setting.
    pub threads: usize,
}

impl SimConfig {
    /// Paper-shaped defaults at a given congestion level λ.
    pub fn paper(mean_interarrival: f64) -> Self {
        SimConfig {
            rounds: 20,
            slots_per_round: 100.0,
            packet_bits: 2_000,
            mean_interarrival,
            queue_capacity: 60,
            service_time: 0.2,
            hop_delay: 0.5,
            compression: 0.5,
            death_line: 0.0,
            stop_when_dead: false,
            aggregate_retries: 2,
            member_retries: 2,
            heads_generate: true,
            threads: 1,
        }
    }

    /// Validate invariants (positive durations, ratio in range, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.slots_per_round <= 0.0 {
            return Err("slots_per_round must be positive".into());
        }
        if self.mean_interarrival <= 0.0 {
            return Err("mean_interarrival must be positive".into());
        }
        if self.service_time <= 0.0 {
            return Err("service_time must be positive".into());
        }
        if self.hop_delay < 0.0 {
            return Err("hop_delay must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.compression) {
            return Err("compression must be in [0, 1]".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be positive".into());
        }
        if self.packet_bits == 0 {
            return Err("packet_bits must be positive".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper(2.0)
    }
}

/// Per-round scratch buffers, reused across rounds so the hot loop
/// allocates O(1) per round instead of O(nodes + packets): at 10k nodes
/// the event list alone is tens of thousands of entries per round, and
/// the former per-head `HashMap` rebuild hashed every queue access.
#[derive(Default)]
struct RoundScratch {
    /// (arrival time, source) packet-generation events, time-ordered.
    events: Vec<(f64, NodeId)>,
    /// node index → this round's queue slot (`-1` = not a head).
    head_slot: Vec<i32>,
    /// One queue per head, in head order (buffers reused via
    /// [`ChQueue::reset`]).
    queues: Vec<ChQueue>,
    /// Per-queue-slot overflow ratio for relayed aggregates.
    relay_overflow: Vec<f64>,
    /// Alive bitmap at round start (observed runs only).
    alive_before: Vec<bool>,
    /// node index → position in this round's member-plan list (`-1` =
    /// not a planned member: a head, a dead node, or no arrivals).
    plan_index: Vec<i32>,
}

/// Runs a [`Protocol`] over a [`Network`] for the configured rounds.
pub struct Simulator {
    net: Network,
    cfg: SimConfig,
    next_packet_id: u64,
    obs: ObserverSet,
    faults: Option<FaultDriver>,
    scratch: RoundScratch,
    /// Worker pool for the data-parallel phases (`None` when the
    /// resolved thread count is 1).
    pool: Option<rayon::ThreadPool>,
    /// Root of the per-(round, node) RNG stream derivation, drawn once
    /// from the caller's RNG at the start of [`Simulator::run`].
    stream_seed: u64,
    /// Whole-run merge totals, accumulated round by round — returned by
    /// [`Simulator::run_with_outcome`].
    merge_totals: MergeOutcome,
}

/// Fluent assembly of a [`Simulator`] — network, configuration, faults,
/// observers, and threads in one place, mirroring `QlecBuilder`:
///
/// ```
/// use qlec_net::{NetworkBuilder, SimConfig, Simulator};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let net = NetworkBuilder::new().uniform_cube(&mut rng, 50, 200.0, 5.0);
/// let sim = Simulator::builder(net)
///     .config(SimConfig::paper(2.0))
///     .threads(2)
///     .build();
/// ```
///
/// Replaces the former `Simulator::builder(net).config(cfg).faults(..)
/// .observed(..)` chain (deprecated shims remain for this release).
pub struct SimBuilder {
    net: Network,
    cfg: SimConfig,
    faults: Option<FaultDriver>,
    obs: ObserverSet,
}

impl SimBuilder {
    /// Replace the full simulation configuration (validated at
    /// [`Self::build`]). Defaults to [`SimConfig::default`].
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Override the worker-thread count (`0` = use every available
    /// core) on top of whatever [`Self::config`] set — the common case
    /// where the config is paper-shaped and only the throughput knob
    /// varies.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Attach a fault driver (`qlec-fault`): its plan's scheduled events
    /// — node crashes, battery drains, link degradations, region
    /// blackouts, BS outages — are applied at the start of each round and
    /// during that round's transmissions. The driver is bound to the
    /// network's node positions at [`Self::build`], so region blackouts
    /// resolve against the actual deployment.
    pub fn faults(mut self, driver: FaultDriver) -> Self {
        self.faults = Some(driver);
        self
    }

    /// Attach an observer set; every structured event of the run is
    /// fanned out to its sinks. An empty set (the default) costs one
    /// predictable branch per emission site.
    pub fn observers(mut self, obs: ObserverSet) -> Self {
        self.obs = obs;
        self
    }

    /// Validate the configuration and assemble the simulator.
    ///
    /// # Panics
    ///
    /// If the configuration fails [`SimConfig::validate`].
    pub fn build(self) -> Simulator {
        if let Err(e) = self.cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        let mut sim = Simulator {
            net: self.net,
            cfg: self.cfg,
            next_packet_id: 0,
            obs: self.obs,
            faults: None,
            scratch: RoundScratch::default(),
            pool: None,
            stream_seed: 0,
            merge_totals: MergeOutcome::default(),
        };
        if let Some(mut driver) = self.faults {
            driver.bind(&sim.net.positions());
            sim.faults = Some(driver);
        }
        sim
    }
}

impl Simulator {
    /// Start configuring a simulator over a deployed network — see
    /// [`SimBuilder`].
    pub fn builder(net: Network) -> SimBuilder {
        SimBuilder {
            net,
            cfg: SimConfig::default(),
            faults: None,
            obs: ObserverSet::new(),
        }
    }

    /// Create a simulator. Panics on invalid configuration.
    #[deprecated(note = "use Simulator::builder(net).config(cfg).build()")]
    pub fn new(net: Network, cfg: SimConfig) -> Self {
        Simulator::builder(net).config(cfg).build()
    }

    /// Attach a fault driver — see [`SimBuilder::faults`].
    #[deprecated(note = "use SimBuilder::faults before build()")]
    pub fn with_faults(mut self, mut driver: FaultDriver) -> Self {
        driver.bind(&self.net.positions());
        self.faults = Some(driver);
        self
    }

    /// Attach an observer set — see [`SimBuilder::observers`].
    #[deprecated(note = "use SimBuilder::observers before build()")]
    pub fn observed(mut self, obs: ObserverSet) -> Self {
        self.obs = obs;
        self
    }

    /// The network in its current (possibly partially drained) state.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Run the full simulation, consuming the simulator.
    pub fn run<P: Protocol + ?Sized>(self, protocol: &mut P, rng: &mut dyn RngCore) -> SimReport {
        self.run_with_outcome(protocol, rng).0
    }

    /// Run the full simulation and also return the whole-run
    /// [`MergeOutcome`] totals: merge conflicts and retargets split by
    /// cause (thread-invariant), plus the reservation pre-pass's
    /// clean-commit/residue classification and shard shape (pool path
    /// only — zero when `threads = 1`).
    pub fn run_with_outcome<P: Protocol + ?Sized>(
        mut self,
        protocol: &mut P,
        rng: &mut dyn RngCore,
    ) -> (SimReport, MergeOutcome) {
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.cfg.threads
        };
        if threads > 1 {
            self.pool = Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("worker pool"),
            );
        }
        protocol.configure_threads(threads);
        if let Some(prof) = self.obs.profiler() {
            prof.set_threads(threads);
        }
        // Root all per-(round, node) streams in one draw so the caller's
        // RNG advances identically at every thread count.
        self.stream_seed = rng.next_u64();

        let mut rounds_out = Vec::with_capacity(self.cfg.rounds as usize);
        let mut totals = PacketCounters::default();
        let mut latency_all = Welford::new();
        let mut lifespan = LifespanInfo::default();

        for round in 0..self.cfg.rounds {
            let (metrics, round_latency) = self.run_round(protocol, rng, round);
            totals.add(&metrics.packets);
            latency_all.merge(&round_latency);
            let completed = round + 1;

            // Lifespan milestones (evaluated at round end).
            if lifespan.death_line_round.is_none() && metrics.min_residual < self.cfg.death_line {
                lifespan.death_line_round = Some(completed);
            }
            let dead = self.net.len() - metrics.alive_end;
            if lifespan.first_node_dead.is_none() && dead >= 1 {
                lifespan.first_node_dead = Some(completed);
            }
            if lifespan.half_nodes_dead.is_none() && dead * 2 >= self.net.len() {
                lifespan.half_nodes_dead = Some(completed);
            }
            if lifespan.last_node_dead.is_none() && dead == self.net.len() {
                lifespan.last_node_dead = Some(completed);
            }

            rounds_out.push(metrics);

            if self.cfg.stop_when_dead && lifespan.death_line_round.is_some() {
                break;
            }
        }

        let consumption_rates = self
            .net
            .arena()
            .batteries()
            .iter()
            .map(|b| b.consumption_rate())
            .collect();

        let report = SimReport {
            protocol: protocol.name().to_string(),
            rounds: rounds_out,
            totals,
            latency: latency_all,
            lifespan,
            consumption_rates,
            horizon: self.cfg.rounds,
            threads,
        };
        (report, self.merge_totals)
    }

    /// Execute one round; returns its metrics and latency accumulator.
    fn run_round<P: Protocol + ?Sized>(
        &mut self,
        protocol: &mut P,
        rng: &mut dyn RngCore,
        round: u32,
    ) -> (RoundMetrics, Welford) {
        let cfg = self.cfg;
        // Out-of-band phase profiling: busy/wall accounting goes to the
        // shared profiler directly, never into the event stream, so the
        // deterministic `--events` bytes are identical with and without
        // a profiler attached.
        let prof = self.obs.profiler().cloned();
        let round_t0 = prof.as_ref().map(|p| p.now_ns());

        // ---- Phase 0: scheduled fault injection ----------------------
        // Applied before anything else so crashed/blacked-out nodes are
        // invisible to election and traffic generation, and exogenous
        // battery drains stay out of the round's protocol energy ledger
        // (they are visible in per-node consumption rates). The driver is
        // moved into a local so the hop loops below can query it without
        // borrowing `self`.
        let mut faults = self.faults.take();
        let injected = if let Some(driver) = faults.as_mut() {
            let directives = driver.begin_round(round);
            for i in 0..self.net.len() {
                *self.net.node_mut(NodeId(i as u32)).online = true;
            }
            for &id in &directives.offline {
                if (id as usize) < self.net.len() {
                    *self.net.node_mut(NodeId(id)).online = false;
                }
            }
            for &(id, joules) in &directives.drains {
                if (id as usize) < self.net.len() {
                    self.net.node_mut(NodeId(id)).battery.consume(joules);
                }
            }
            directives.injected
        } else {
            Vec::new()
        };

        let energy_before = self.net.total_consumed();
        let round_start = round as f64 * cfg.slots_per_round;
        let deadline = round_start + cfg.slots_per_round;

        // ---- Phase 1: cluster-head selection -------------------------
        // Observability bookkeeping is gated on `is_active()` so an
        // unobserved run never constructs an event (or the alive bitmap).
        self.scratch.alive_before.clear();
        if self.obs.is_active() {
            self.obs.set_sim_time(round_start);
            self.obs.emit(Event::RoundStarted {
                round,
                alive: self.net.alive_count(),
                sim_time: round_start,
            });
            for f in &injected {
                self.obs.emit(Event::FaultInjected {
                    round,
                    kind: f.kind.to_string(),
                    nodes: f.nodes.clone(),
                });
            }
            self.scratch
                .alive_before
                .extend(self.net.iter().map(|n| n.is_alive()));
        }
        self.net.reset_roles();
        let election_span = self.obs.span_start();
        let heads = protocol.on_round_start(&mut self.net, round, rng);
        let election_wall = self.obs.span_end(election_span, round, Phase::Election);
        if let Some(p) = &prof {
            // Election runs on the simulation thread: busy == wall.
            p.record_busy("election", 0, election_wall);
        }
        if self.obs.is_active() {
            for &h in &heads {
                self.obs.emit(Event::HeadElected {
                    round,
                    node: h.0,
                    residual_j: self.net.node(h).residual(),
                });
            }
        }
        // One queue slot per head; `head_slot` gives O(1) unhashed lookup
        // and the queue buffers carry over from round to round.
        self.scratch.head_slot.clear();
        self.scratch.head_slot.resize(self.net.len(), -1);
        let mut queues = std::mem::take(&mut self.scratch.queues);
        queues.truncate(heads.len());
        for q in queues.iter_mut() {
            q.reset(cfg.queue_capacity, cfg.service_time, deadline);
        }
        while queues.len() < heads.len() {
            queues.push(ChQueue::new(cfg.queue_capacity, cfg.service_time, deadline));
        }
        for (si, &h) in heads.iter().enumerate() {
            debug_assert_eq!(self.scratch.head_slot[h.index()], -1, "duplicate head {h}");
            self.scratch.head_slot[h.index()] = si as i32;
        }

        // ---- Phase 2: packet generation ------------------------------
        // Arrival times come from per-(seed, round, node) RNG streams,
        // not the master RNG, so every node's traffic is independent of
        // iteration order and thread count. Members with arrivals get a
        // plan slot for stage 1 below; heads' own packets skip planning
        // and are resolved live during the merge.
        let traffic_t0 = prof.as_ref().map(|p| p.now_ns());
        let traffic = PoissonTraffic::new(cfg.mean_interarrival);
        let mut events = std::mem::take(&mut self.scratch.events);
        events.clear();
        self.scratch.plan_index.clear();
        self.scratch.plan_index.resize(self.net.len(), -1);
        let mut planned: Vec<PlannedNode> = Vec::new();
        for idx in 0..self.net.len() {
            let id = NodeId(idx as u32);
            let node = self.net.node(id);
            if !node.is_alive() {
                continue;
            }
            let is_head = self.scratch.head_slot[idx] >= 0;
            if is_head && !cfg.heads_generate {
                continue;
            }
            let mut trng =
                StreamRng::for_node(self.stream_seed, round, idx as u32, stream_tag::TRAFFIC);
            if is_head {
                traffic.for_each_arrival(&mut trng, round_start, cfg.slots_per_round, |t| {
                    events.push((t, id));
                });
            } else {
                let mut arrivals = Vec::new();
                traffic.for_each_arrival(&mut trng, round_start, cfg.slots_per_round, |t| {
                    arrivals.push(t);
                    events.push((t, id));
                });
                if !arrivals.is_empty() {
                    self.scratch.plan_index[idx] = planned.len() as i32;
                    planned.push(PlannedNode {
                        src: id,
                        arrivals,
                        packets: Vec::new(),
                        meta: Vec::new(),
                        scratch: None,
                        cursor: 0,
                    });
                }
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if let (Some(p), Some(t0)) = (&prof, traffic_t0) {
            let dt = p.now_ns().saturating_sub(t0);
            p.record_wall("traffic", dt);
            p.record_busy("traffic", 0, dt);
        }

        // ---- Phase 2: member hops and head queues --------------------
        //
        // Two stages, one semantics at every thread count.
        //
        // *Stage 1 — plan.* Every member's packets are routed against the
        // frozen post-election network: target choices (PROTOCOL stream),
        // radio samples (LINK stream), and the sender's battery
        // trajectory, tracked locally with exact `Battery::consume`
        // arithmetic — exact because a member's battery is drained only
        // by its own transmissions. Protocols exposing a [`RoutePlanner`]
        // fan the member nodes out across the worker pool; the rest plan
        // sequentially through `choose_target`.
        //
        // *Stage 2 — merge.* Plans replay in global (time, node) order:
        // packet ids, battery consumes, head receptions, queue offers,
        // counters, latency, events, and the per-hop protocol hooks —
        // all sequential and deterministic. Queue verdicts and head
        // aliveness are decided here (a head's battery evolves with the
        // merged receptions): a planned hop onto a head that died
        // mid-merge is a link drop, and a refused queue offer is
        // terminal. Planner scratch is absorbed back in ascending node
        // order.
        let mut counters = PacketCounters::default();
        let mut latency = Welford::new();
        let mut breakdown = EnergyBreakdown::default();
        // Direct-to-BS deliveries complete immediately; queued packets
        // resolve at round end with their head's aggregate.
        let link = self.net.link;
        let radio = self.net.radio;

        let tx_span = self.obs.span_start();
        let has_planner = protocol.planner().is_some();
        let prof_ref = prof.as_deref();
        let plan_t0 = prof_ref.map(|p| p.now_ns());
        {
            let net = &self.net;
            let head_slot = self.scratch.head_slot.as_slice();
            let stream_seed = self.stream_seed;
            let faults_ref = faults.as_ref();
            let heads_ref = heads.as_slice();
            if has_planner {
                let planner = protocol.planner().expect("planner() just returned Some");
                // `PlanScratch` is `Send` but not `Sync`, so the fan-out
                // iterates Sync job tuples rather than the nodes proper.
                let jobs: Vec<(NodeId, &[f64])> = planned
                    .iter()
                    .map(|pn| (pn.src, pn.arrivals.as_slice()))
                    .collect();
                let plan_one = |job: &(NodeId, &[f64])| {
                    // Worker-local busy measurement: clock reads only,
                    // no shared state touched from the fan-out.
                    let t0 = prof_ref.map(|p| p.now_ns());
                    let (src, arrivals) = *job;
                    let mut t = PlannerTargeter {
                        planner,
                        scratch: planner.begin_node(net, src),
                    };
                    let (packets, meta) = plan_member_packets(
                        net,
                        &cfg,
                        faults_ref,
                        heads_ref,
                        head_slot,
                        stream_seed,
                        round,
                        src,
                        arrivals,
                        &mut t,
                    );
                    let busy_ns = match (prof_ref, t0) {
                        (Some(p), Some(t0)) => p.now_ns().saturating_sub(t0),
                        _ => 0,
                    };
                    (packets, meta, t.scratch, busy_ns)
                };
                type PlanJob = (Vec<PacketPlan>, Vec<PacketMeta>, PlanScratch, u64);
                let results: Vec<PlanJob> = match self.pool.as_ref() {
                    Some(pool) if jobs.len() > 1 => {
                        pool.install(|| jobs.par_iter().map(&plan_one).collect())
                    }
                    _ => jobs.iter().map(&plan_one).collect(),
                };
                drop(jobs);
                if let Some(p) = prof_ref {
                    // Attribute each job's busy time to the worker slot
                    // that ran it. The vendored rayon splits jobs into
                    // contiguous chunks of ceil(J / W) with
                    // W = current_num_threads().min(J), so job i runs on
                    // slot i / chunk_len; the sequential path is slot 0.
                    let n_jobs = results.len();
                    let workers = match self.pool.as_ref() {
                        Some(pool) if n_jobs > 1 => pool.current_num_threads().min(n_jobs),
                        _ => 1,
                    };
                    let chunk_len = n_jobs.div_ceil(workers.max(1)).max(1);
                    for (i, (_, _, _, busy_ns)) in results.iter().enumerate() {
                        p.record_busy("transmission/plan", i / chunk_len, *busy_ns);
                    }
                }
                for (pn, (packets, meta, scratch, _)) in planned.iter_mut().zip(results) {
                    pn.packets = packets;
                    pn.meta = meta;
                    pn.scratch = Some(scratch);
                }
            } else {
                for pn in planned.iter_mut() {
                    let mut t = ChooseTargeter {
                        protocol: &mut *protocol,
                    };
                    let (packets, meta) = plan_member_packets(
                        net,
                        &cfg,
                        faults_ref,
                        heads_ref,
                        head_slot,
                        stream_seed,
                        round,
                        pn.src,
                        &pn.arrivals,
                        &mut t,
                    );
                    pn.packets = packets;
                    pn.meta = meta;
                }
            }
        }
        if let (Some(p), Some(t0)) = (&prof, plan_t0) {
            let dt = p.now_ns().saturating_sub(t0);
            p.record_wall("transmission/plan", dt);
            if !has_planner {
                // The choose_target fallback plans on the simulation
                // thread; the planner path recorded per-job busy above.
                p.record_busy("transmission/plan", 0, dt);
            }
        }

        // ---- Stage 2: the merge (crate::merge) -----------------------
        // One explicit API: the immutable round inputs (MergePlan), the
        // mutable simulation state (MergeState), and the outcome counters
        // the profiler and the equivalence tests consume (MergeOutcome).
        // The pool path adds the parallel per-head shard pre-pass; both
        // paths run the same ordered commit walk, so the event stream is
        // byte-identical by construction.
        let merge_t0 = prof.as_ref().map(|p| p.now_ns());
        let outcome = {
            let mplan = MergePlan {
                events: &events,
                plan_index: &self.scratch.plan_index,
                head_slot: &self.scratch.head_slot,
                heads: &heads,
                round,
                cfg: &cfg,
            };
            let mut st = MergeState {
                net: &mut self.net,
                protocol,
                rng,
                faults: faults.as_ref(),
                queues: &mut queues,
                obs: &self.obs,
                counters: &mut counters,
                latency: &mut latency,
                breakdown: &mut breakdown,
                next_packet_id: &mut self.next_packet_id,
            };
            match self.pool.as_ref() {
                Some(pool) => merge::commit_sharded(pool, &mplan, &mut planned, &mut st),
                None => merge::commit_sequential(&mplan, &mut planned, &mut st),
            }
        };

        self.merge_totals.accumulate(&outcome);

        if let (Some(p), Some(t0)) = (&prof, merge_t0) {
            let dt = p.now_ns().saturating_sub(t0);
            p.record_wall("transmission/merge", dt);
            p.record_busy("transmission/merge", 0, dt);
            p.inc("merge.conflicts", outcome.conflicts);
            p.inc("merge.retargets", outcome.retargets);
            p.inc("merge.conflict_dead_head", outcome.conflict_dead_head);
            p.inc("merge.conflict_queue_full", outcome.conflict_queue_full);
            p.inc("merge.conflict_deadline", outcome.conflict_deadline);
            if self.pool.is_some() {
                p.inc("merge.shards", outcome.shards);
                p.inc("merge.shard_max", outcome.largest_shard);
                p.inc("merge.clean_commits", outcome.clean_commits);
                p.inc("merge.residue", outcome.residue);
            }
        }

        // Absorb planner scratch (Q-value writes, link-table overlays)
        // back into the protocol, in stable ascending node order.
        for pn in planned.iter_mut() {
            if let Some(scratch) = pn.scratch.take() {
                protocol.absorb_plan(pn.src, scratch);
            }
        }
        self.obs.span_end(tx_span, round, Phase::Transmission);

        // ---- Phase 2: data fusion and aggregate forwarding -----------
        // A relay head's buffer pressure carries over to forwarded
        // aggregates: a head whose own queue overflowed this round
        // refuses a relayed aggregate with probability equal to its
        // overflow ratio ("limited storage caches of cluster heads",
        // §4.2 — this is the congestion mechanism behind the FCM
        // baseline's multi-hop losses in Fig. 3(a)).
        self.obs.set_sim_time(deadline);
        let agg_span = self.obs.span_start();
        let mut relay_overflow = std::mem::take(&mut self.scratch.relay_overflow);
        relay_overflow.clear();
        relay_overflow.extend(queues.iter().map(|q| {
            let refused = q.drops_full();
            let accepted = q.processed().len() as u64;
            let total = refused + accepted;
            if total == 0 {
                0.0
            } else {
                refused as f64 / total as f64
            }
        }));
        let mut head_loads = Vec::with_capacity(heads.len());
        for (si, &head) in heads.iter().enumerate() {
            let q = &queues[si];
            head_loads.push(crate::metrics::HeadLoad {
                head: head.0,
                accepted: q.processed().len() as u64,
                drops_full: q.drops_full(),
                drops_deadline: q.drops_deadline(),
                peak_occupancy: q.peak_occupancy(),
            });
            let processed = q.processed();
            if processed.is_empty() {
                continue;
            }
            let processed_bits = q.processed_bits();
            let agg_bits = ((processed_bits as f64 * cfg.compression).ceil() as u64).max(1);

            // Aggregation cost at the head (E_DA per incoming bit).
            let mut ok = self.net.node(head).is_alive();
            if ok {
                let e = radio.aggregation_energy(processed_bits);
                let b = &mut self.net.node_mut(head).battery;
                if b.can_supply(e) {
                    b.consume(e);
                    breakdown.aggregation += e;
                } else {
                    breakdown.aggregation += b.consume(e);
                    ok = false;
                }
            }

            // Forward the fused payload along the protocol's route.
            let route = if ok {
                let r = protocol.aggregate_route(&self.net, head, &heads);
                debug_assert_eq!(r.last(), Some(&Target::Bs), "route must end at the BS");
                r
            } else {
                Vec::new()
            };
            let mut cur = head;
            let mut hops_done = 0u32;
            for hop in route {
                if !ok {
                    break;
                }
                let (d, dst) = match hop {
                    Target::Bs => (self.net.dist_to_bs(cur), None),
                    Target::Head(h) => (self.net.distance(cur, h), Some(h.0)),
                };
                // Each attempt costs transmit energy; retries re-send.
                let mut hop_ok = false;
                for attempt in 0..=cfg.aggregate_retries {
                    if attempt > 0 {
                        counters.retried += 1;
                        if self.obs.is_active() {
                            self.obs.emit(Event::PacketRetried {
                                round,
                                src: cur.0,
                                attempt,
                            });
                        }
                    }
                    let e = radio.tx_energy(agg_bits, d);
                    let b = &mut self.net.node_mut(cur).battery;
                    if !b.can_supply(e) {
                        breakdown.aggregate_tx += b.consume(e);
                        break;
                    }
                    b.consume(e);
                    breakdown.aggregate_tx += e;
                    if sample_hop(faults.as_ref(), &link, rng, d, cur.0, dst) {
                        hop_ok = true;
                        break;
                    }
                }
                if !hop_ok {
                    ok = false;
                    break;
                }
                hops_done += 1;
                if let Target::Head(h) = hop {
                    if !self.net.node(h).is_alive() {
                        ok = false;
                        break;
                    }
                    // Congested relays refuse forwarded aggregates.
                    let overflow = match self.scratch.head_slot[h.index()] {
                        s if s >= 0 => relay_overflow[s as usize],
                        _ => 0.0,
                    };
                    if overflow > 0.0 && rng.gen::<f64>() < overflow {
                        ok = false;
                        break;
                    }
                    breakdown.aggregate_tx += self
                        .net
                        .node_mut(h)
                        .battery
                        .consume(radio.rx_energy(agg_bits));
                    cur = h;
                }
            }

            if ok {
                for (pkt, completed_at) in processed {
                    counters.delivered += 1;
                    let queueing = completed_at - pkt.created_at;
                    let lat = queueing + hops_done as f64 * cfg.hop_delay;
                    latency.push(lat);
                    if self.obs.is_active() {
                        self.obs.emit(Event::PacketOutcome {
                            round,
                            src: pkt.src.0,
                            fate: PacketFate::Delivered { latency_slots: lat },
                        });
                    }
                }
            } else {
                counters.dropped_aggregate += processed.len() as u64;
                if self.obs.is_active() {
                    for (pkt, _) in processed {
                        self.obs.emit(Event::PacketOutcome {
                            round,
                            src: pkt.src.0,
                            fate: PacketFate::DroppedAggregate,
                        });
                    }
                }
            }
        }
        let agg_wall = self.obs.span_end(agg_span, round, Phase::Aggregation);
        if let Some(p) = &prof {
            // Aggregation runs on the simulation thread: busy == wall.
            p.record_busy("aggregation", 0, agg_wall);
        }

        protocol.on_round_end(&mut self.net, round, &heads);

        debug_assert!(
            counters.is_conserved(),
            "packet conservation violated in round {round}: {counters:?}"
        );

        let energy_consumed = self.net.total_consumed() - energy_before;
        breakdown.other = (energy_consumed - breakdown.total()).max(0.0);
        let metrics = RoundMetrics {
            round,
            packets: counters,
            energy_consumed,
            energy_breakdown: breakdown,
            latency,
            head_count: heads.len(),
            alive_end: self.net.alive_count(),
            min_residual: self.net.min_residual().unwrap_or(0.0),
            head_loads,
        };
        if self.obs.is_active() {
            for (i, was_alive) in self.scratch.alive_before.iter().enumerate() {
                if *was_alive && !self.net.arena().is_alive(i) {
                    self.obs.emit(Event::NodeDied {
                        round,
                        node: i as u32,
                    });
                }
            }
            self.obs.emit(Event::RoundEnded {
                round,
                alive: metrics.alive_end,
                energy_j: energy_consumed,
                heads: heads.iter().map(|h| h.0).collect(),
                residuals_j: self.net.iter().map(|n| n.residual()).collect(),
            });
        }
        self.faults = faults;
        self.scratch.events = events;
        self.scratch.queues = queues;
        self.scratch.relay_overflow = relay_overflow;
        if let (Some(p), Some(t0)) = (&prof, round_t0) {
            p.record_round(p.now_ns().saturating_sub(t0));
        }
        (metrics, latency)
    }
}

/// Stage-1 front-end over the two planning paths: a [`RoutePlanner`]
/// (immutable, parallel-safe) or the bare `&mut Protocol` fallback.
trait PlanTargeter {
    fn begin_packet(&mut self, src: NodeId);
    fn target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target;
    fn hop_result(&mut self, src: NodeId, target: Target, success: bool);
}

struct PlannerTargeter<'a> {
    planner: &'a dyn RoutePlanner,
    scratch: PlanScratch,
}

impl PlanTargeter for PlannerTargeter<'_> {
    fn begin_packet(&mut self, src: NodeId) {
        self.planner.begin_packet(src, &mut self.scratch);
    }

    fn target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target {
        self.planner
            .plan_target(net, src, heads, rng, &mut self.scratch)
    }

    fn hop_result(&mut self, src: NodeId, target: Target, success: bool) {
        self.planner
            .plan_hop_result(src, target, success, &mut self.scratch);
    }
}

/// Fallback for protocols without a planner: only `choose_target` is
/// consulted while planning (always sequentially). The per-packet hook
/// runs here so `choose_target` sees the per-packet state reset of a
/// live call sequence; the merge replays it again, which is harmless
/// because the hook is a reset. Per-hop hooks are replayed at merge
/// time only, uniformly with the planner path.
struct ChooseTargeter<'a, P: Protocol + ?Sized> {
    protocol: &'a mut P,
}

impl<P: Protocol + ?Sized> PlanTargeter for ChooseTargeter<'_, P> {
    fn begin_packet(&mut self, src: NodeId) {
        self.protocol.on_packet_start(src);
    }

    fn target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        rng: &mut dyn RngCore,
    ) -> Target {
        self.protocol.choose_target(net, src, heads, rng)
    }

    fn hop_result(&mut self, _src: NodeId, _target: Target, _success: bool) {}
}

/// Plan one member's packets against the frozen post-election network
/// (stage 1 of the transmission phase). The sender's residual is tracked
/// locally with the exact `Battery::consume` arithmetic, so the merge
/// replay is bit-identical; head aliveness is frozen here and re-checked
/// at merge time. Target choices draw from the node's PROTOCOL stream
/// and radio samples from its LINK stream, making the plan independent
/// of scheduling and thread count.
///
/// Alongside each plan it emits the [`PacketMeta`] record the merge's
/// reservation pre-pass classifies against: the terminal kind, the
/// terminal reception time (computed with the walk's exact float
/// expressions), and whether a merge-time refusal would still have
/// retry budget.
#[allow(clippy::too_many_arguments)]
fn plan_member_packets(
    net: &Network,
    cfg: &SimConfig,
    faults: Option<&FaultDriver>,
    heads: &[NodeId],
    head_slot: &[i32],
    stream_seed: u64,
    round: u32,
    src: NodeId,
    arrivals: &[f64],
    targeter: &mut dyn PlanTargeter,
) -> (Vec<PacketPlan>, Vec<PacketMeta>) {
    let link = net.link;
    let radio = net.radio;
    let mut prng = StreamRng::for_node(stream_seed, round, src.0, stream_tag::PROTOCOL);
    let mut lrng = StreamRng::for_node(stream_seed, round, src.0, stream_tag::LINK);
    let mut residual = net.node(src).battery.residual();
    let mut packets = Vec::with_capacity(arrivals.len());
    let mut meta = Vec::with_capacity(arrivals.len());
    for &time in arrivals {
        // Mid-round, a member's `is_alive` reduces to battery state: the
        // `online` flag cannot change within a round, and it was online
        // when it generated this arrival.
        if residual <= 0.0 {
            packets.push(Vec::new());
            meta.push(PacketMeta::Skip);
            continue;
        }
        targeter.begin_packet(src);
        let mut attempts = Vec::new();
        let mut resolved = false;
        for _ in 0..=cfg.member_retries {
            if residual <= 0.0 {
                break;
            }
            let target = targeter.target(net, src, heads, &mut prng);
            let d = match target {
                Target::Bs => net.dist_to_bs(src),
                Target::Head(h) => net.distance(src, h),
            };
            let e = radio.tx_energy(cfg.packet_bits, d);
            if residual < e {
                // Partial supply: this draw drains the battery flat.
                residual = 0.0;
                attempts.push(PlannedAttempt::Failed { target, e });
                targeter.hop_result(src, target, false);
                break;
            }
            residual -= e;
            match target {
                Target::Bs => {
                    if sample_hop(faults, &link, &mut lrng, d, src.0, None) {
                        attempts.push(PlannedAttempt::DeliveredBs { e });
                        targeter.hop_result(src, target, true);
                        resolved = true;
                    } else {
                        attempts.push(PlannedAttempt::Failed { target, e });
                        targeter.hop_result(src, target, false);
                    }
                }
                Target::Head(h) => {
                    let head_alive = net.node(h).is_alive();
                    let radio_ok = sample_hop(faults, &link, &mut lrng, d, src.0, Some(h.0));
                    if !radio_ok || !head_alive || head_slot[h.index()] < 0 {
                        attempts.push(PlannedAttempt::Failed { target, e });
                        targeter.hop_result(src, target, false);
                    } else {
                        // Optimistic: the queue verdict lands at merge.
                        attempts.push(PlannedAttempt::ToHead { h, e });
                        targeter.hop_result(src, target, true);
                        resolved = true;
                    }
                }
            }
            if resolved {
                break;
            }
        }
        meta.push(match attempts.last() {
            None => PacketMeta::Skip,
            Some(PlannedAttempt::ToHead { h, .. }) => {
                // The walk offers at `attempt_time + hop_delay` with
                // `attempt_time = time + attempt * hop_delay` — replicate
                // the expressions exactly so the reservation replay's
                // offer times are bit-identical.
                let a = (attempts.len() - 1) as u32;
                let attempt_time = time + a as f64 * cfg.hop_delay;
                PacketMeta::Candidate {
                    h: *h,
                    offer_time: attempt_time + cfg.hop_delay,
                    exhausted: attempts.len() as u32 > cfg.member_retries,
                }
            }
            Some(_) => PacketMeta::Local,
        });
        packets.push(attempts);
    }
    (packets, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::{DirectToBsProtocol, GreedyEnergyProtocol};
    use qlec_radio::link::{AnyLink, DistanceLossLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64, link: AnyLink) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new()
            .link(link)
            .uniform_cube(&mut rng, 40, 200.0, 5.0)
    }

    fn run(net: Network, cfg: SimConfig, protocol: &mut dyn Protocol, seed: u64) -> SimReport {
        let mut rng = StdRng::seed_from_u64(seed);
        Simulator::builder(net)
            .config(cfg)
            .build()
            .run(protocol, &mut rng)
    }

    #[test]
    fn ideal_uncongested_run_delivers_nearly_everything() {
        let net = small_net(1, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(10.0); // idle network
        cfg.rounds = 5;
        let mut p = GreedyEnergyProtocol::new(4);
        let report = run(net, cfg, &mut p, 2);
        assert!(report.totals.generated > 0);
        assert!(report.totals.is_conserved());
        // With ideal links and light load the only loss mechanism left is
        // the end-of-round fusion deadline (packets generated in the last
        // service-backlog window of a round). PDR must be ≈ 1.
        assert_eq!(report.totals.dropped_link, 0);
        assert_eq!(report.totals.dropped_queue_full, 0);
        assert!(
            report.pdr() > 0.97,
            "ideal links + light load must deliver almost all: {:?}",
            report.totals
        );
        assert!(report.mean_latency().unwrap() > 0.0);
    }

    #[test]
    fn congestion_reduces_pdr() {
        let idle = {
            let net = small_net(3, AnyLink::Ideal(IdealLink));
            let mut cfg = SimConfig::paper(10.0);
            cfg.rounds = 5;
            run(net, cfg, &mut GreedyEnergyProtocol::new(3), 4).pdr()
        };
        let congested = {
            let net = small_net(3, AnyLink::Ideal(IdealLink));
            let mut cfg = SimConfig::paper(0.5);
            cfg.rounds = 5;
            run(net, cfg, &mut GreedyEnergyProtocol::new(3), 4).pdr()
        };
        assert!(
            congested < idle - 0.05,
            "congested PDR {congested} should be well below idle PDR {idle}"
        );
    }

    #[test]
    fn congestion_increases_latency() {
        let mk = |lambda: f64| {
            let net = small_net(5, AnyLink::Ideal(IdealLink));
            let mut cfg = SimConfig::paper(lambda);
            cfg.rounds = 5;
            run(net, cfg, &mut GreedyEnergyProtocol::new(3), 6)
                .mean_latency()
                .unwrap()
        };
        let idle = mk(10.0);
        let congested = mk(1.0);
        assert!(
            congested > idle,
            "congested latency {congested} should exceed idle latency {idle}"
        );
    }

    #[test]
    fn lossy_links_drop_packets() {
        let net = small_net(
            7,
            AnyLink::DistanceLoss(DistanceLossLink::new(80.0, 2.0, 0.0)),
        );
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 3;
        let report = run(net, cfg, &mut GreedyEnergyProtocol::new(3), 8);
        assert!(
            report.totals.dropped_link > 0,
            "short-range links must lose packets"
        );
        assert!(report.totals.is_conserved());
        assert!(report.pdr() < 1.0);
    }

    #[test]
    fn energy_is_consumed_and_monotone_per_round() {
        let net = small_net(9, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 6;
        let report = run(net, cfg, &mut GreedyEnergyProtocol::new(3), 10);
        assert!(report.total_energy() > 0.0);
        for r in &report.rounds {
            assert!(r.energy_consumed >= 0.0);
        }
        // Energy totals match the network's battery accounting.
        let sum: f64 = report.rounds.iter().map(|r| r.energy_consumed).sum();
        assert!((sum - report.total_energy()).abs() < 1e-12);
    }

    #[test]
    fn direct_to_bs_consumes_more_than_clustering_with_remote_bs() {
        // The clustering premise: when the BS is far away, the d⁴
        // multi-path term makes per-node direct transmission ruinous,
        // while clustering pays it only once per head on a compressed
        // aggregate. (With the BS at the cube centre the distances are too
        // short for clustering to win on raw energy — that regime is what
        // the intra-clustering comparisons of Fig. 3(b) are about.)
        let remote_bs = qlec_geom::Vec3::new(100.0, 100.0, 500.0);
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            NetworkBuilder::new()
                .link(AnyLink::Ideal(IdealLink))
                .bs_at(remote_bs)
                .uniform_cube(&mut rng, 40, 200.0, 50.0)
        };
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 5;
        let e_direct = run(mk(11), cfg, &mut DirectToBsProtocol, 12).total_energy();
        let e_clustered = run(mk(11), cfg, &mut GreedyEnergyProtocol::new(5), 12).total_energy();
        assert!(
            e_clustered < e_direct,
            "clustered {e_clustered} J should beat direct {e_direct} J"
        );
    }

    #[test]
    fn death_line_stops_lifespan_run() {
        let net = small_net(13, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(1.0);
        cfg.rounds = 500;
        cfg.death_line = 4.999; // absurdly high: dies in round 1
        cfg.stop_when_dead = true;
        let report = run(net, cfg, &mut GreedyEnergyProtocol::new(3), 14);
        assert_eq!(report.lifespan.death_line_round, Some(1));
        assert_eq!(report.rounds.len(), 1, "must stop immediately");
        assert_eq!(report.lifespan_rounds(), 0);
    }

    #[test]
    fn packet_ids_are_unique_across_rounds() {
        // Indirectly verified through conservation and monotone counter;
        // here we check the totals add up over a multi-round run.
        let net = small_net(15, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 4;
        let report = run(net, cfg, &mut GreedyEnergyProtocol::new(3), 16);
        let per_round: u64 = report.rounds.iter().map(|r| r.packets.generated).sum();
        assert_eq!(per_round, report.totals.generated);
    }

    #[test]
    fn zero_head_protocol_still_works() {
        let net = small_net(17, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 2;
        let report = run(net, cfg, &mut DirectToBsProtocol, 18);
        assert!(report.totals.generated > 0);
        assert_eq!(report.pdr(), 1.0);
        assert!(report.rounds.iter().all(|r| r.head_count == 0));
    }

    #[test]
    fn consumption_rates_have_network_size() {
        let net = small_net(19, AnyLink::Ideal(IdealLink));
        let n = net.len();
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 2;
        let report = run(net, cfg, &mut GreedyEnergyProtocol::new(3), 20);
        assert_eq!(report.consumption_rates.len(), n);
        assert!(report
            .consumption_rates
            .iter()
            .all(|&r| (0.0..=1.0).contains(&r)));
        // Someone consumed something.
        assert!(report.consumption_rates.iter().any(|&r| r > 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn invalid_config_rejected() {
        let net = small_net(21, AnyLink::Ideal(IdealLink));
        let mut cfg = SimConfig::paper(5.0);
        cfg.compression = 2.0;
        let _ = Simulator::builder(net).config(cfg).build();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::{DirectToBsProtocol, GreedyEnergyProtocol};
    use qlec_fault::{FaultEvent, FaultPlan};
    use qlec_radio::link::{AnyLink, DistanceLossLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, link: AnyLink) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new()
            .link(link)
            .uniform_cube(&mut rng, 30, 200.0, 5.0)
    }

    fn driver(events: Vec<FaultEvent>) -> FaultDriver {
        FaultDriver::new(FaultPlan::named("test", events)).unwrap()
    }

    #[test]
    fn crashed_node_stops_consuming_and_conservation_holds() {
        let crash_round = 2;
        let victim = NodeId(4);
        let mut cfg = SimConfig::paper(3.0);
        cfg.rounds = 6;
        let run = |faulted: bool| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut sim = Simulator::builder(net(31, AnyLink::Ideal(IdealLink))).config(cfg);
            if faulted {
                sim = sim.faults(driver(vec![FaultEvent::NodeCrash {
                    round: crash_round,
                    node: victim.0,
                }]));
            }
            sim.build().run(&mut GreedyEnergyProtocol::new(4), &mut rng)
        };
        let report = run(true);
        assert!(report.totals.is_conserved());
        // The victim consumed strictly less than in the fault-free run
        // (it was cut off after round 2 of 6).
        let baseline = run(false);
        let consumed = |r: &SimReport| r.consumption_rates[victim.index()];
        assert!(
            consumed(&report) < consumed(&baseline),
            "crashed node kept spending energy: faulted {} vs baseline {}",
            consumed(&report),
            consumed(&baseline)
        );
    }

    #[test]
    fn battery_drain_reduces_residual_outside_protocol_ledger() {
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 2;
        let mut rng = StdRng::seed_from_u64(11);
        let sim = Simulator::builder(net(33, AnyLink::Ideal(IdealLink)))
            .config(cfg)
            .faults(driver(vec![FaultEvent::BatteryDrain {
                round: 1,
                node: 0,
                joules: 3.0,
            }]));
        let report = sim.build().run(&mut GreedyEnergyProtocol::new(3), &mut rng);
        // The drain shows up in the node's consumption rate…
        assert!(
            report.consumption_rates[0] > 3.0 / 5.0,
            "drain missing from consumption rate {}",
            report.consumption_rates[0]
        );
        // …but not in the per-round protocol energy ledger (3 J would
        // dwarf a 2-round, 30-node run's radio budget).
        assert!(
            report.total_energy() < 3.0,
            "exogenous drain leaked into protocol energy: {} J",
            report.total_energy()
        );
        assert!(report.totals.is_conserved());
    }

    #[test]
    fn bs_outage_window_blocks_all_deliveries() {
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 3;
        let mut rng = StdRng::seed_from_u64(13);
        let sim = Simulator::builder(net(35, AnyLink::Ideal(IdealLink)))
            .config(cfg)
            .faults(driver(vec![FaultEvent::BsOutage {
                from_round: 1,
                to_round: 1,
            }]));
        let report = sim.build().run(&mut DirectToBsProtocol, &mut rng);
        assert!(report.totals.is_conserved());
        assert_eq!(report.rounds[0].packets.pdr(), 1.0, "before the outage");
        assert_eq!(
            report.rounds[1].packets.delivered, 0,
            "nothing reaches a dark BS"
        );
        assert!(report.rounds[1].packets.retried > 0, "retries were spent");
        assert_eq!(report.rounds[2].packets.pdr(), 1.0, "after recovery");
    }

    #[test]
    fn link_degradation_raises_retries_and_stays_conserved() {
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 4;
        cfg.member_retries = 3;
        let events = (0..30)
            .map(|n| FaultEvent::LinkDegrade {
                from_round: 0,
                to_round: 3,
                a: qlec_fault::LinkEnd::Node(n),
                b: qlec_fault::LinkEnd::Bs,
                loss_multiplier: 40.0,
            })
            .collect();
        let link = AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0));
        let mut rng = StdRng::seed_from_u64(17);
        let faulted = Simulator::builder(net(37, link))
            .config(cfg)
            .faults(driver(events))
            .build()
            .run(&mut DirectToBsProtocol, &mut rng);
        let mut rng = StdRng::seed_from_u64(17);
        let clean = Simulator::builder(net(37, link))
            .config(cfg)
            .build()
            .run(&mut DirectToBsProtocol, &mut rng);
        assert!(faulted.totals.is_conserved());
        assert!(clean.totals.is_conserved());
        assert!(
            faulted.totals.retried > clean.totals.retried,
            "degraded links must force more retries: {} vs {}",
            faulted.totals.retried,
            clean.totals.retried
        );
        assert!(faulted.pdr() < clean.pdr());
    }

    #[test]
    fn empty_plan_matches_unfaulted_run_exactly() {
        let mut cfg = SimConfig::paper(4.0);
        cfg.rounds = 3;
        let link = AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0));
        let mut rng = StdRng::seed_from_u64(21);
        let with_empty = Simulator::builder(net(39, link))
            .config(cfg)
            .faults(driver(Vec::new()))
            .build()
            .run(&mut GreedyEnergyProtocol::new(4), &mut rng);
        let mut rng = StdRng::seed_from_u64(21);
        let without = Simulator::builder(net(39, link))
            .config(cfg)
            .build()
            .run(&mut GreedyEnergyProtocol::new(4), &mut rng);
        assert_eq!(
            serde_json::to_string(&with_empty.totals).unwrap(),
            serde_json::to_string(&without.totals).unwrap(),
            "an empty plan must not perturb the RNG sequence"
        );
        assert_eq!(with_empty.consumption_rates, without.consumption_rates);
    }
}

#[cfg(test)]
mod head_load_tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::protocol::GreedyEnergyProtocol;
    use qlec_radio::link::{AnyLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_loads_are_recorded_and_consistent() {
        let mut rng = StdRng::seed_from_u64(71);
        let net = NetworkBuilder::new()
            .link(AnyLink::Ideal(IdealLink))
            .uniform_cube(&mut rng, 40, 200.0, 5.0);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 3;
        let mut p = GreedyEnergyProtocol::new(4);
        let report = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        for r in &report.rounds {
            assert_eq!(r.head_loads.len(), r.head_count);
            let accepted: u64 = r.head_loads.iter().map(|h| h.accepted).sum();
            // Everything a head accepted is either delivered with its
            // aggregate or dropped with it.
            assert_eq!(
                accepted,
                r.packets.delivered + r.packets.dropped_aggregate,
                "round {}",
                r.round
            );
            for h in &r.head_loads {
                assert!(h.peak_occupancy <= cfg.queue_capacity);
                assert!(h.accepted == 0 || h.peak_occupancy > 0);
            }
        }
    }

    #[test]
    fn overload_shows_in_peak_occupancy() {
        let mut rng = StdRng::seed_from_u64(72);
        let net = NetworkBuilder::new()
            .link(AnyLink::Ideal(IdealLink))
            .uniform_cube(&mut rng, 40, 200.0, 5.0);
        let mut cfg = SimConfig::paper(0.5); // saturating traffic
        cfg.rounds = 2;
        let mut p = GreedyEnergyProtocol::new(2);
        let report = Simulator::builder(net)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        let peak = report
            .rounds
            .iter()
            .flat_map(|r| r.head_loads.iter())
            .map(|h| h.peak_occupancy)
            .max()
            .unwrap();
        assert_eq!(
            peak, cfg.queue_capacity,
            "saturated queues must hit capacity"
        );
        let full_drops: u64 = report
            .rounds
            .iter()
            .flat_map(|r| r.head_loads.iter())
            .map(|h| h.drops_full)
            .sum();
        assert!(full_drops > 0);
    }
}
