//! Streaming and batch statistics.
//!
//! The evaluation section reports means (packet delivery rate, energy,
//! latency) and the large-scale experiment reasons about the *spread* of
//! per-node energy-consumption rates (Fig. 4: "nodes with high energy
//! consumption rate … are evenly distributed"). [`Welford`] provides a
//! numerically-stable one-pass mean/variance; [`Summary`] computes batch
//! percentiles; [`pearson`] quantifies spatial evenness for the Fig. 4
//! harness.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable under long accumulation (millions of packet latencies
/// in the congestion sweeps) — naive sum-of-squares cancels catastrophically
/// there.
///
/// ```
/// use qlec_geom::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] { w.push(x); }
/// assert_eq!(w.mean(), Some(2.0));
/// assert_eq!(w.variance(), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    /// Same as [`Welford::new`] — the ±∞ min/max sentinels are part of
    /// the invariant (`derive(Default)`'s all-zero min/max would corrupt
    /// the first `push`).
    fn default() -> Self {
        Welford::new()
    }
}

// Hand-rolled: the empty accumulator's min/max sentinels are ±∞, which
// JSON cannot carry — they serialize as `null` (and deserialize back to
// the sentinels), so a report with a packet-free round (e.g. a BS-outage
// window suppressing every delivery) still serializes.
impl Serialize for Welford {
    fn to_value(&self) -> serde::Value {
        let bound = |x: f64| {
            if self.n == 0 {
                serde::Value::Null
            } else {
                serde::Value::Float(x)
            }
        };
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("m2".to_string(), self.m2.to_value()),
            ("min".to_string(), bound(self.min)),
            ("max".to_string(), bound(self.max)),
        ])
    }
}

impl Deserialize for Welford {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("Welford: missing field `{name}`")))
        };
        let bound = |name: &str, sentinel: f64| -> Result<f64, serde::Error> {
            match field(name)? {
                serde::Value::Null => Ok(sentinel),
                other => f64::from_value(other),
            }
        };
        Ok(Welford {
            n: u64::from_value(field("n")?)?,
            mean: f64::from_value(field("mean")?)?,
            m2: f64::from_value(field("m2")?)?,
            min: bound("min", f64::INFINITY)?,
            max: bound("max", f64::NEG_INFINITY)?,
        })
    }
}

impl Welford {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` with fewer than two observations).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction — the
    /// λ-sweep harness folds per-thread accumulators with this).
    pub fn merge(&mut self, o: &Welford) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        let n1 = self.n as f64;
        let n2 = o.n as f64;
        let delta = o.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += o.m2 + delta * delta * n1 * n2 / n;
        self.n += o.n;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// Batch summary with percentiles (sorts a copy of the data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub p95: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty slice; `None` when empty or containing
    /// non-finite values.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() || data.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut w = Welford::new();
        for &x in data {
            w.push(x);
        }
        Some(Summary {
            count: data.len(),
            mean: w.mean().unwrap(),
            std_dev: w.std_dev().unwrap_or(0.0),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.5),
            p75: percentile_sorted(&sorted, 0.75),
            p95: percentile_sorted(&sorted, 0.95),
            max: *sorted.last().unwrap(),
        })
    }

    /// Coefficient of variation (σ/μ); `None` when the mean is ~zero.
    /// Fig. 4's "evenly dissipated" claim is asserted as a low CV of
    /// per-node consumption rates.
    pub fn coeff_of_variation(&self) -> Option<f64> {
        (self.mean.abs() > f64::EPSILON).then(|| self.std_dev / self.mean)
    }
}

/// Linear-interpolated percentile of an already-sorted slice, `q ∈ [0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Pearson correlation coefficient of two equal-length samples; `None` when
/// either side has (near-)zero variance or lengths differ / are < 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Arithmetic mean of a slice; `None` when empty.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        // Population variance is 4; unbiased sample variance is 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min().unwrap(), 2.0);
        assert_eq!(w.max().unwrap(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), Some(3.0));
        assert_eq!(w1.variance(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &x in &data {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - seq.variance().unwrap()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op.
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
    }

    #[test]
    fn empty_welford_serializes_and_round_trips() {
        // An empty accumulator's ±∞ sentinels must not leak into JSON
        // (serde_json refuses non-finite floats): min/max become null.
        let empty = Welford::new();
        let v = empty.to_value();
        assert_eq!(v.get("min"), Some(&serde::Value::Null));
        assert_eq!(v.get("max"), Some(&serde::Value::Null));
        let back = Welford::from_value(&v).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), None);
        let mut w = back;
        w.push(-2.0);
        assert_eq!(w.min(), Some(-2.0));
        assert_eq!(w.max(), Some(-2.0));

        // Non-empty accumulators keep real numeric bounds.
        let mut full = Welford::new();
        full.push(1.0);
        full.push(4.0);
        let v = full.to_value();
        let back = Welford::from_value(&v).unwrap();
        assert_eq!(back.count(), 2);
        assert_eq!(back.min(), Some(1.0));
        assert_eq!(back.max(), Some(4.0));
        assert_eq!(back.mean(), full.mean());

        // `Default` must agree with `new()` — the all-zero derive would
        // poison the first push's min/max.
        let mut d = Welford::default();
        d.push(5.0);
        assert_eq!(d.min(), Some(5.0));
    }

    #[test]
    fn percentiles() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_sorted(&sorted, 0.25), 2.0);
        // Interpolation between ranks.
        assert!((percentile_sorted(&[0.0, 10.0], 0.3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        let cv = s.coeff_of_variation().unwrap();
        assert!((cv - s.std_dev / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
        // Zero variance on one side.
        assert!(pearson(&xs, &[5.0; 4]).is_none());
        // Length mismatch.
        assert!(pearson(&xs, &ys[..3]).is_none());
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
