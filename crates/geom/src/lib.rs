//! 3-D geometry substrate for the QLEC reproduction.
//!
//! The QLEC paper places sensor nodes in an `M × M × M` cube and reasons
//! about Euclidean distances in that volume: the distance from a node to its
//! cluster head (`d_toCH`, Lemma 1), from cluster heads to the base station
//! (`d_toBS`, Theorem 1), and the cluster coverage radius `d_c` (Eq. 5)
//! within which HELLO messages are broadcast. This crate provides:
//!
//! * [`Vec3`] — a small `f64` 3-vector with the usual operations,
//! * [`Aabb`] — axis-aligned boxes (the deployment cube and sub-volumes),
//! * [`sample`] — seeded uniform sampling in cubes, balls, and spheres,
//! * [`grid::UniformGrid`] — a uniform spatial hash for radius queries
//!   (the HELLO broadcast of Algorithm 3 touches every node within `d_c`),
//! * [`kdtree::KdTree`] — a k-d tree for nearest-neighbour queries on the
//!   2 896-node power-plant deployment,
//! * [`incremental::IncrementalKdIndex`] — a generation-stamped wrapper
//!   that absorbs per-round roster diffs instead of rebuilding the tree,
//! * [`stats`] — streaming and batch statistics used by the metrics code,
//! * [`randx`] — exponential / normal / log-normal sampling built on `rand`
//!   (kept local instead of adding a `rand_distr` dependency).
//!
//! All sampling is deterministic given an RNG, so every experiment in the
//! repository is reproducible from a seed.

pub mod aabb;
pub mod grid;
pub mod incremental;
pub mod kdtree;
pub mod randx;
pub mod sample;
pub mod stats;
pub mod vec3;

pub use aabb::Aabb;
pub use grid::UniformGrid;
pub use incremental::IncrementalKdIndex;
pub use kdtree::KdTree;
pub use vec3::Vec3;
