//! A static k-d tree over 3-D points.
//!
//! Used where the query pattern is dominated by nearest-neighbour lookups —
//! assigning 2 896 power-plant nodes to their closest of 272 cluster heads
//! each round (§5.3), and the k-means / FCM baselines' assignment steps.
//! Complements [`crate::grid::UniformGrid`], which is better for
//! fixed-radius queries.
//!
//! The tree is built once (median splits, `O(n log n)`) and is immutable.

use crate::vec3::Vec3;

#[derive(Debug, Clone)]
struct Node {
    /// Index into `points`.
    point: u32,
    /// Split axis (0, 1, 2).
    axis: u8,
    left: i32,
    right: i32,
}

const NIL: i32 = -1;

/// Immutable k-d tree for nearest-neighbour and k-nearest queries.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Vec3>,
    root: i32,
}

impl Default for KdTree {
    /// An empty tree (same as `KdTree::build(Vec::new())`).
    fn default() -> Self {
        KdTree::build(Vec::new())
    }
}

impl KdTree {
    /// Build a balanced tree over `points` (median splitting on the widest
    /// axis of each partition).
    pub fn build(points: Vec<Vec3>) -> Self {
        let n = points.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = Self::build_rec(&points, &mut idx[..], &mut nodes);
        KdTree {
            nodes,
            points,
            root,
        }
    }

    fn build_rec(points: &[Vec3], idx: &mut [u32], nodes: &mut Vec<Node>) -> i32 {
        if idx.is_empty() {
            return NIL;
        }
        // Pick the widest axis of this partition for better balance on
        // anisotropic data (the power-plant deployment is much wider in
        // longitude/latitude than in height).
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for &i in idx.iter() {
            lo = lo.min(points[i as usize]);
            hi = hi.max(points[i as usize]);
        }
        let ext = hi - lo;
        let axis = if ext.x >= ext.y && ext.x >= ext.z {
            0
        } else if ext.y >= ext.z {
            1
        } else {
            2
        };
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let point = idx[mid];
        let node_pos = nodes.len() as i32;
        nodes.push(Node {
            point,
            axis: axis as u8,
            left: NIL,
            right: NIL,
        });
        let (left_idx, rest) = idx.split_at_mut(mid);
        let right_idx = &mut rest[1..];
        let left = Self::build_rec(points, left_idx, nodes);
        let right = Self::build_rec(points, right_idx, nodes);
        nodes[node_pos as usize].left = left;
        nodes[node_pos as usize].right = right;
        node_pos
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in the order indices refer to.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Index of the nearest point to `q` and its squared distance.
    pub fn nearest(&self, q: Vec3) -> Option<(u32, f64)> {
        if self.root == NIL {
            return None;
        }
        let mut best = (u32::MAX, f64::INFINITY);
        self.nearest_rec(self.root, q, &mut best);
        Some(best)
    }

    fn nearest_rec(&self, ni: i32, q: Vec3, best: &mut (u32, f64)) {
        let node = &self.nodes[ni as usize];
        let p = self.points[node.point as usize];
        let d = p.dist_sq(q);
        if d < best.1 {
            *best = (node.point, d);
        }
        let axis = node.axis as usize;
        let delta = q[axis] - p[axis];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NIL {
            self.nearest_rec(near, q, best);
        }
        // Only descend the far side if the splitting plane is closer than
        // the current best — the classic branch-and-bound prune.
        if far != NIL && delta * delta < best.1 {
            self.nearest_rec(far, q, best);
        }
    }

    /// Indices of the `k` nearest points to `q`, sorted by ascending
    /// distance. Returns fewer when the tree holds fewer points.
    pub fn k_nearest(&self, q: Vec3, k: usize) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.k_nearest_into(q, k, &mut out);
        out
    }

    /// [`KdTree::k_nearest`] into a caller-provided buffer (cleared
    /// first) — the allocation-free variant for per-packet queries.
    pub fn k_nearest_into(&self, q: Vec3, k: usize, out: &mut Vec<(u32, f64)>) {
        out.clear();
        if self.root == NIL || k == 0 {
            return;
        }
        out.reserve(k + 1);
        self.knn_rec(self.root, q, k, out);
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
    }

    fn knn_rec(&self, ni: i32, q: Vec3, k: usize, heap: &mut Vec<(u32, f64)>) {
        let node = &self.nodes[ni as usize];
        let p = self.points[node.point as usize];
        let d = p.dist_sq(q);
        if heap.len() < k {
            heap.push((node.point, d));
            heap.sort_by(|a, b| b.1.total_cmp(&a.1)); // worst first
        } else if d < heap[0].1 {
            heap[0] = (node.point, d);
            heap.sort_by(|a, b| b.1.total_cmp(&a.1));
        }
        let axis = node.axis as usize;
        let delta = q[axis] - p[axis];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near != NIL {
            self.knn_rec(near, q, k, heap);
        }
        let worst = if heap.len() < k {
            f64::INFINITY
        } else {
            heap[0].1
        };
        if far != NIL && delta * delta < worst {
            self.knn_rec(far, q, k, heap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aabb::Aabb;
    use crate::sample::uniform_points_in_aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_tree() {
        let t = KdTree::build(Vec::new());
        assert!(t.is_empty());
        assert!(t.nearest(Vec3::ZERO).is_none());
        assert!(t.k_nearest(Vec3::ZERO, 3).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![Vec3::splat(1.0)]);
        let (i, d) = t.nearest(Vec3::ZERO).unwrap();
        assert_eq!(i, 0);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = Aabb::cube(200.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 1_000);
        let t = KdTree::build(pts.clone());
        for q in uniform_points_in_aabb(&mut rng, &b, 200) {
            let (gi, gd) = t.nearest(q).unwrap();
            let bd = pts
                .iter()
                .map(|p| p.dist_sq(q))
                .fold(f64::INFINITY, f64::min);
            assert!((gd - bd).abs() < 1e-9, "query {q:?}");
            assert!((pts[gi as usize].dist_sq(q) - bd).abs() < 1e-9);
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = Aabb::cube(50.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 300);
        let t = KdTree::build(pts.clone());
        for q in uniform_points_in_aabb(&mut rng, &b, 30) {
            for &k in &[1usize, 5, 17] {
                let got = t.k_nearest(q, k);
                assert_eq!(got.len(), k.min(pts.len()));
                let mut dists: Vec<f64> = pts.iter().map(|p| p.dist_sq(q)).collect();
                dists.sort_by(|a, b| a.total_cmp(b));
                for (j, (_, d)) in got.iter().enumerate() {
                    assert!((d - dists[j]).abs() < 1e-9, "k={k} j={j}");
                }
                // Results are sorted ascending.
                for w in got.windows(2) {
                    assert!(w[0].1 <= w[1].1);
                }
            }
        }
    }

    #[test]
    fn k_nearest_into_matches_allocating_variant() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = Aabb::cube(50.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 200);
        let t = KdTree::build(pts);
        let mut buf = Vec::new();
        for q in uniform_points_in_aabb(&mut rng, &b, 20) {
            t.k_nearest_into(q, 5, &mut buf);
            assert_eq!(buf, t.k_nearest(q, 5), "stale buffer state leaked");
        }
    }

    #[test]
    fn k_larger_than_n() {
        let pts = vec![Vec3::ZERO, Vec3::ONE, Vec3::splat(2.0)];
        let t = KdTree::build(pts);
        let got = t.k_nearest(Vec3::ZERO, 10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn anisotropic_data() {
        // Points spread only along x — widest-axis splitting must keep the
        // tree balanced enough to answer correctly.
        let pts: Vec<Vec3> = (0..1000).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let t = KdTree::build(pts);
        let (i, _) = t.nearest(Vec3::new(512.3, 0.0, 0.0)).unwrap();
        assert_eq!(i, 512);
    }

    #[test]
    fn duplicates_are_handled() {
        let pts = vec![Vec3::ONE; 32];
        let t = KdTree::build(pts);
        let got = t.k_nearest(Vec3::ONE, 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(_, d)| d == 0.0));
    }
}
