//! Seeded uniform sampling of points in 3-D regions.
//!
//! The paper deploys `N` nodes "randomly distributed in an `M × M × M`
//! cube" (§3.1); Lemma 1 assumes "cluster nodes are uniformly distributed in
//! the area of a ball centered on the cluster head". Both samplers live
//! here, together with Monte-Carlo helpers used to validate Lemma 1 and the
//! `d_toBS` approximation of Theorem 1.

use crate::aabb::Aabb;
use crate::vec3::Vec3;
use rand::Rng;

/// Uniform point inside an axis-aligned box.
pub fn uniform_in_aabb<R: Rng + ?Sized>(rng: &mut R, b: &Aabb) -> Vec3 {
    let lo = b.min();
    let hi = b.max();
    Vec3::new(
        rng.gen_range(lo.x..=hi.x),
        rng.gen_range(lo.y..=hi.y),
        rng.gen_range(lo.z..=hi.z),
    )
}

/// `n` uniform points inside an axis-aligned box.
pub fn uniform_points_in_aabb<R: Rng + ?Sized>(rng: &mut R, b: &Aabb, n: usize) -> Vec<Vec3> {
    (0..n).map(|_| uniform_in_aabb(rng, b)).collect()
}

/// Uniform point inside the cube `[0, m]³` — the paper's deployment.
pub fn uniform_in_cube<R: Rng + ?Sized>(rng: &mut R, m: f64) -> Vec3 {
    uniform_in_aabb(rng, &Aabb::cube(m))
}

/// Uniform point inside the ball of radius `radius` centred at `center`.
///
/// Uses the exact radial inverse-CDF (`r = R·U^{1/3}`) with a uniform
/// direction, rather than rejection sampling, so the cost is constant.
pub fn uniform_in_ball<R: Rng + ?Sized>(rng: &mut R, center: Vec3, radius: f64) -> Vec3 {
    assert!(radius >= 0.0, "ball radius must be non-negative");
    let dir = uniform_on_sphere(rng);
    let r = radius * rng.gen::<f64>().cbrt();
    center + dir * r
}

/// Uniform direction on the unit sphere (Marsaglia via normalized Gaussian
/// would also work; we use the standard cylinder-area-preserving map).
pub fn uniform_on_sphere<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    let z: f64 = rng.gen_range(-1.0..=1.0);
    let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(s * theta.cos(), s * theta.sin(), z)
}

/// Monte-Carlo estimate of `E[d²]` from a uniform point in a ball of radius
/// `radius` to its centre.
///
/// The closed form is `3R²/5`; Lemma 1 of the paper is this quantity with
/// `R = d_c` expressed through the cluster count `k`. The estimator is used
/// by tests and the `kopt_table` experiment binary to check the lemma.
pub fn mc_mean_sq_dist_ball<R: Rng + ?Sized>(rng: &mut R, radius: f64, samples: usize) -> f64 {
    assert!(samples > 0);
    let c = Vec3::ZERO;
    let sum: f64 = (0..samples)
        .map(|_| uniform_in_ball(rng, c, radius).dist_sq(c))
        .sum();
    sum / samples as f64
}

/// Monte-Carlo estimate of the mean distance from a uniform point in the
/// cube `[0, m]³` to the cube centre.
///
/// Theorem 1 approximates `d_toBS` by this quantity (following \[1\] in the
/// paper); the closed form for the unit cube is `≈ 0.480296·m`
/// (Robbins-type constant), which tests assert against.
pub fn mc_mean_dist_to_center<R: Rng + ?Sized>(rng: &mut R, m: f64, samples: usize) -> f64 {
    assert!(samples > 0);
    let b = Aabb::cube(m);
    let c = b.center();
    let sum: f64 = (0..samples).map(|_| uniform_in_aabb(rng, &b).dist(c)).sum();
    sum / samples as f64
}

/// Mean distance from a uniform point in the unit cube to the cube centre,
/// as a fraction of the side length (`≈ 0.4802959…`). Exposed so the
/// analytic `k_opt` computation can avoid Monte-Carlo in the common case.
pub const MEAN_DIST_TO_CENTER_UNIT_CUBE: f64 = 0.480_295_9;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn cube_points_are_inside() {
        let mut r = rng();
        let b = Aabb::cube(200.0);
        for p in uniform_points_in_aabb(&mut r, &b, 10_000) {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn cube_points_cover_all_octants() {
        let mut r = rng();
        let b = Aabb::cube(2.0);
        let c = b.center();
        let mut seen = [false; 8];
        for p in uniform_points_in_aabb(&mut r, &b, 5_000) {
            let idx = ((p.x > c.x) as usize)
                | (((p.y > c.y) as usize) << 1)
                | (((p.z > c.z) as usize) << 2);
            seen[idx] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "sampling misses an octant: {seen:?}"
        );
    }

    #[test]
    fn ball_points_are_inside_radius() {
        let mut r = rng();
        let c = Vec3::new(10.0, -5.0, 3.0);
        for _ in 0..10_000 {
            let p = uniform_in_ball(&mut r, c, 7.0);
            assert!(p.dist(c) <= 7.0 + 1e-12);
        }
    }

    #[test]
    fn sphere_points_are_unit_and_cover_hemispheres() {
        let mut r = rng();
        let mut up = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let p = uniform_on_sphere(&mut r);
            assert!((p.norm() - 1.0).abs() < 1e-12);
            if p.z > 0.0 {
                up += 1;
            }
        }
        let frac = up as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "hemisphere fraction {frac}");
    }

    #[test]
    fn ball_mean_sq_dist_matches_closed_form() {
        // E[d²] for a uniform point in a ball of radius R is 3R²/5.
        let mut r = rng();
        let radius = 5.0;
        let est = mc_mean_sq_dist_ball(&mut r, radius, 400_000);
        let exact = 3.0 * radius * radius / 5.0;
        assert!(
            (est - exact).abs() / exact < 0.01,
            "MC {est} vs exact {exact}"
        );
    }

    #[test]
    fn mean_dist_to_center_matches_constant() {
        let mut r = rng();
        let m = 200.0;
        let est = mc_mean_dist_to_center(&mut r, m, 400_000);
        let exact = MEAN_DIST_TO_CENTER_UNIT_CUBE * m;
        assert!(
            (est - exact).abs() / exact < 0.01,
            "MC {est} vs constant {exact}"
        );
    }

    #[test]
    fn radial_cdf_of_ball_sampling_is_cubic() {
        // P(d <= r) = (r/R)³ for uniform sampling in a ball.
        let mut r = rng();
        let radius = 1.0;
        let n = 100_000;
        let within_half = (0..n)
            .filter(|_| uniform_in_ball(&mut r, Vec3::ZERO, radius).norm() <= 0.5)
            .count();
        let frac = within_half as f64 / n as f64;
        assert!(
            (frac - 0.125).abs() < 0.01,
            "P(d<=R/2) = {frac}, want 0.125"
        );
    }
}
