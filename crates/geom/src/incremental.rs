//! Generation-stamped incremental k-nearest index over an id-keyed point
//! set.
//!
//! The Send-Data phase (Algorithm 4) prunes Q-routing candidates to the
//! `c` cluster heads nearest each member. The head roster changes every
//! round, so a naive implementation rebuilds a [`KdTree`] per round —
//! `O(k log k)` even when the diff against the previous roster is small.
//! [`IncrementalKdIndex`] instead keeps the last-built tree and absorbs
//! roster *diffs*: departed points are tombstoned inside the tree,
//! arrivals go to a brute-force side list, and a full rebuild happens only
//! when the accumulated slack (tombstones + side-list entries) exceeds a
//! configurable fraction of the tree — the same churn-threshold policy as
//! [`crate::UniformGrid`].
//!
//! Queries return the `k` nearest **by `(distance, id)` order**, which
//! makes results independent of tree shape: a freshly rebuilt index and an
//! incrementally maintained one answer identically for the same live point
//! set (up to exact distance ties at the cut-off, which have measure zero
//! for points in general position). That property is what lets the
//! protocol's rebuild-per-round and incremental modes produce byte-equal
//! event streams.

use crate::kdtree::KdTree;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// Default slack fraction that triggers a full rebuild on `sync`.
const DEFAULT_REBUILD_THRESHOLD: f64 = 0.25;

/// Where an id currently lives inside the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Index into the tree's point order.
    Tree(u32),
    /// Index into the `extras` side list.
    Extra(u32),
}

/// An incrementally maintained k-nearest index over `(id, position)`
/// pairs. See the module docs for the maintenance strategy.
///
/// ```
/// use qlec_geom::{IncrementalKdIndex, Vec3};
/// let mut idx = IncrementalKdIndex::new();
/// idx.rebuild_from(&[(7, Vec3::ZERO), (3, Vec3::splat(10.0))]);
/// // Roster changed: 7 left, 12 arrived — sync absorbs the diff.
/// idx.sync(&[(3, Vec3::splat(10.0)), (12, Vec3::ONE)]);
/// let mut scratch = Vec::new();
/// let mut out = Vec::new();
/// idx.k_nearest_into(Vec3::ZERO, 2, &mut scratch, &mut out);
/// assert_eq!(out.iter().map(|e| e.0).collect::<Vec<_>>(), vec![12, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalKdIndex {
    tree: KdTree,
    /// Tree point order → caller id.
    ids: Vec<u32>,
    /// Tombstoned tree slots (departed since the last rebuild).
    tombstone: Vec<bool>,
    /// Count of set bits in `tombstone`.
    dead: usize,
    /// Points tracked outside the tree (arrived since the last rebuild).
    extras: Vec<(u32, Vec3)>,
    /// id → current slot, for every live tracked id.
    slot: HashMap<u32, Slot>,
    /// Slack fraction of the tree size above which `sync` rebuilds.
    rebuild_threshold: f64,
    generation: u64,
    rebuilds: u64,
}

impl IncrementalKdIndex {
    /// An empty index; populate with [`rebuild_from`](Self::rebuild_from)
    /// or [`sync`](Self::sync).
    pub fn new() -> Self {
        IncrementalKdIndex {
            rebuild_threshold: DEFAULT_REBUILD_THRESHOLD,
            ..Default::default()
        }
    }

    /// Number of live tracked points.
    pub fn len(&self) -> usize {
        self.tree.len() - self.dead + self.extras.len()
    }

    /// Whether no live points are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotone counter bumped by every content change (`rebuild_from`,
    /// and `sync` when the roster actually differs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Full tree rebuilds performed, by either entry point.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Set the slack fraction (tombstones + side-list entries, relative to
    /// tree size) above which `sync` falls back to a full rebuild. Must be
    /// positive; default 0.25.
    pub fn set_rebuild_threshold(&mut self, t: f64) {
        assert!(t > 0.0, "rebuild threshold must be positive");
        self.rebuild_threshold = t;
    }

    /// Whether `id` is currently tracked (live).
    pub fn contains(&self, id: u32) -> bool {
        self.slot.contains_key(&id)
    }

    /// Discard all incremental state and rebuild the tree from `items`.
    /// Ids must be unique.
    pub fn rebuild_from(&mut self, items: &[(u32, Vec3)]) {
        self.tree = KdTree::build(items.iter().map(|&(_, p)| p).collect());
        self.ids.clear();
        self.ids.extend(items.iter().map(|&(id, _)| id));
        self.tombstone.clear();
        self.tombstone.resize(items.len(), false);
        self.dead = 0;
        self.extras.clear();
        self.slot.clear();
        for (ti, &(id, _)) in items.iter().enumerate() {
            let prev = self.slot.insert(id, Slot::Tree(ti as u32));
            assert!(prev.is_none(), "duplicate id {id} in rebuild_from");
        }
        self.rebuilds += 1;
        self.generation += 1;
    }

    /// Bring the index in line with `items` (the complete new roster) by
    /// absorbing the diff against the currently tracked set: departures
    /// tombstone or drop, arrivals join the side list, and a position
    /// change counts as departure + arrival. Falls back to
    /// [`rebuild_from`](Self::rebuild_from) when the accumulated slack
    /// exceeds the rebuild threshold. Ids must be unique.
    pub fn sync(&mut self, items: &[(u32, Vec3)]) {
        let mut changed = false;

        // Departures and moves: anything tracked that the new roster
        // doesn't hold at the same position.
        let new_pos: HashMap<u32, Vec3> = items.iter().copied().collect();
        assert_eq!(new_pos.len(), items.len(), "duplicate id in sync roster");
        let departed: Vec<u32> = self
            .slot
            .keys()
            .copied()
            .filter(|id| new_pos.get(id).is_none_or(|&p| p != self.position_of(*id)))
            .collect();
        for id in departed {
            match self.slot.remove(&id).expect("departed id was tracked") {
                Slot::Tree(ti) => {
                    self.tombstone[ti as usize] = true;
                    self.dead += 1;
                }
                Slot::Extra(xi) => {
                    self.extras.swap_remove(xi as usize);
                    if let Some(&(moved_id, _)) = self.extras.get(xi as usize) {
                        self.slot.insert(moved_id, Slot::Extra(xi));
                    }
                }
            }
            changed = true;
        }

        // Arrivals: roster entries not (or no longer) tracked.
        for &(id, p) in items {
            if !self.slot.contains_key(&id) {
                self.slot.insert(id, Slot::Extra(self.extras.len() as u32));
                self.extras.push((id, p));
                changed = true;
            }
        }

        if changed {
            self.generation += 1;
        }
        let slack = self.dead + self.extras.len();
        let budget = (self.rebuild_threshold * self.tree.len().max(1) as f64).ceil() as usize;
        if slack > budget {
            self.rebuild_from(items);
        }
    }

    fn position_of(&self, id: u32) -> Vec3 {
        match self.slot[&id] {
            Slot::Tree(ti) => self.tree.points()[ti as usize],
            Slot::Extra(xi) => self.extras[xi as usize].1,
        }
    }

    /// The `k` live points nearest `q`, written to `out` as `(id, squared
    /// distance)` sorted ascending by `(squared distance, id)` — the same
    /// distance convention as [`KdTree::k_nearest`]. `out` is cleared
    /// first; `scratch` is caller-owned so `&self` queries can run from
    /// parallel planners without interior mutation.
    pub fn k_nearest_into(
        &self,
        q: Vec3,
        k: usize,
        scratch: &mut Vec<(u32, f64)>,
        out: &mut Vec<(u32, f64)>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        if !self.tree.is_empty() {
            // Over-fetch by the tombstone count: of the (k + dead) nearest
            // tree points at most `dead` are tombstoned, so at least k
            // live ones survive the filter (or the tree is exhausted).
            let window = (k + self.dead).min(self.tree.len());
            self.tree.k_nearest_into(q, window, scratch);
            out.extend(
                scratch
                    .iter()
                    .filter(|&&(ti, _)| !self.tombstone[ti as usize])
                    .map(|&(ti, d)| (self.ids[ti as usize], d)),
            );
        }
        out.extend(self.extras.iter().map(|&(id, p)| (id, p.dist_sq(q))));
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aabb::Aabb;
    use crate::sample::uniform_points_in_aabb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_knn(items: &[(u32, Vec3)], q: Vec3, k: usize) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = items.iter().map(|&(id, p)| (id, p.dist_sq(q))).collect();
        v.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    fn query(idx: &IncrementalKdIndex, q: Vec3, k: usize) -> Vec<(u32, f64)> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        idx.k_nearest_into(q, k, &mut scratch, &mut out);
        out
    }

    #[test]
    fn empty_index_answers_nothing() {
        let idx = IncrementalKdIndex::new();
        assert!(idx.is_empty());
        assert!(query(&idx, Vec3::ZERO, 5).is_empty());
    }

    #[test]
    fn rebuild_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = Aabb::cube(100.0);
        let items: Vec<(u32, Vec3)> = uniform_points_in_aabb(&mut rng, &b, 200)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32 * 3 + 1, p)) // non-contiguous ids
            .collect();
        let mut idx = IncrementalKdIndex::new();
        idx.rebuild_from(&items);
        assert_eq!(idx.len(), items.len());
        for q in uniform_points_in_aabb(&mut rng, &b, 30) {
            for &k in &[1usize, 4, 17, 250] {
                assert_eq!(query(&idx, q, k), brute_knn(&items, q, k));
            }
        }
    }

    #[test]
    fn sync_absorbs_roster_churn() {
        let mut rng = StdRng::seed_from_u64(43);
        let b = Aabb::cube(100.0);
        let mut roster: Vec<(u32, Vec3)> = uniform_points_in_aabb(&mut rng, &b, 150)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let mut idx = IncrementalKdIndex::new();
        idx.set_rebuild_threshold(0.9); // keep the incremental path exercised
        idx.sync(&roster); // sync on empty == rebuild path via slack
        let mut next_id = roster.len() as u32;
        for round in 0..20 {
            // Drop a few, add a few, move one.
            for _ in 0..3 {
                let i = rng.gen_range(0..roster.len());
                roster.swap_remove(i);
            }
            for p in uniform_points_in_aabb(&mut rng, &b, 3) {
                roster.push((next_id, p));
                next_id += 1;
            }
            let i = rng.gen_range(0..roster.len());
            roster[i].1 = uniform_points_in_aabb(&mut rng, &b, 1)[0];
            idx.sync(&roster);
            assert_eq!(idx.len(), roster.len(), "round {round}");
            for q in uniform_points_in_aabb(&mut rng, &b, 10) {
                for &k in &[1usize, 5, 20] {
                    assert_eq!(
                        query(&idx, q, k),
                        brute_knn(&roster, q, k),
                        "round {round} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn low_threshold_forces_rebuilds() {
        let mut rng = StdRng::seed_from_u64(47);
        let b = Aabb::cube(80.0);
        let items: Vec<(u32, Vec3)> = uniform_points_in_aabb(&mut rng, &b, 100)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let mut idx = IncrementalKdIndex::new();
        idx.set_rebuild_threshold(0.05);
        idx.rebuild_from(&items);
        let before = idx.rebuilds();
        // Remove 20% of the roster: far above the 5% slack budget.
        let reduced: Vec<(u32, Vec3)> = items.iter().copied().skip(20).collect();
        idx.sync(&reduced);
        assert!(idx.rebuilds() > before);
        for q in uniform_points_in_aabb(&mut rng, &b, 10) {
            assert_eq!(query(&idx, q, 7), brute_knn(&reduced, q, 7));
        }
    }

    #[test]
    fn noop_sync_does_not_bump_generation() {
        let items = vec![(1, Vec3::ZERO), (2, Vec3::ONE)];
        let mut idx = IncrementalKdIndex::new();
        idx.rebuild_from(&items);
        let g = idx.generation();
        idx.sync(&items);
        assert_eq!(idx.generation(), g);
        idx.sync(&[(1, Vec3::ZERO)]);
        assert_eq!(idx.generation(), g + 1);
        assert!(!idx.contains(2));
        assert!(idx.contains(1));
    }
}
