//! Distribution sampling on top of `rand`.
//!
//! The simulator needs three non-uniform distributions:
//!
//! * **Exponential** — Poisson packet inter-arrival times (§5.2: "the packet
//!   generation time in the network follows the poisson distribution" with
//!   mean inter-arrival λ),
//! * **Normal** — log-normal capacities and noise terms (Box–Muller),
//! * **Log-normal** — synthetic power-plant capacities (§5.3 substitute) and
//!   the optional shadowing link model.
//!
//! They are implemented here (a few lines each, inverse-CDF / Box–Muller)
//! rather than adding a `rand_distr` dependency; see DESIGN.md §5.

use rand::Rng;

/// Sample an exponential random variable with the given **mean** (scale
/// parameter, i.e. `1/rate`).
///
/// Inverse-CDF method: `-mean · ln(1-U)` with `U ~ Uniform[0,1)`; `1-U` is
/// in `(0,1]` so the logarithm is finite.
///
/// # Panics
/// Panics if `mean` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "exponential mean must be positive, got {mean}"
    );
    let u: f64 = rng.gen::<f64>(); // in [0, 1)
    -mean * (1.0 - u).ln()
}

/// Sample a standard normal random variable via Box–Muller.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 from (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal random variable with the given mean and standard
/// deviation.
///
/// # Panics
/// Panics if `std_dev` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite());
    mean + std_dev * std_normal(rng)
}

/// Sample a log-normal random variable: `exp(N(mu, sigma))` where `mu` and
/// `sigma` are the mean and standard deviation *of the underlying normal*.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample a Poisson-distributed count with the given mean (Knuth's method
/// for small means, normal approximation above 30).
///
/// Used to decide how many packets a node generates in a fixed window when
/// an event-level arrival sequence is not required.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "poisson mean must be non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction; clamped at 0.
        let x = normal(rng, mean, mean.sqrt()) + 0.5;
        return x.max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample an index in `0..weights.len()` with probability proportional to
/// `weights[i]`. Returns `None` when the total weight is not positive.
///
/// The DEEC/LEACH election is threshold-based rather than roulette-based,
/// but the dataset generator and some tests use weighted choices.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if t < w {
            return Some(i);
        }
        t -= w;
    }
    // Floating-point slack: fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9E37_79B9)
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let n = 200_000;
        let mean = 2.5;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exponential(&mut r, mean);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let emp = sum / n as f64;
        assert!(
            (emp - mean).abs() < 0.03,
            "empirical mean {emp} far from {mean}"
        );
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_mean() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mu, sd) = (3.0, 2.0);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = normal(&mut r, mu, sd);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - mu).abs() < 0.03, "mean {mean}");
        assert!((var - sd * sd).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_correct_median() {
        let mut r = rng();
        let n = 100_000;
        let mut vals: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 1.0, 0.75)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        vals.sort_by(|a, b| a.total_cmp(b));
        let median = vals[n / 2];
        // Median of LogNormal(mu, sigma) is e^mu.
        assert!((median - 1f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for &mean in &[0.5, 4.0, 80.0] {
            let n = 50_000;
            let total: u64 = (0..n).map(|_| poisson_count(&mut r, mean)).sum();
            let emp = total as f64 / n as f64;
            assert!(
                (emp - mean).abs() < 0.05 * mean.max(1.0),
                "mean {mean} emp {emp}"
            );
        }
        assert_eq!(poisson_count(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 5.0]), Some(1));
    }
}
