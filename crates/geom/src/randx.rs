//! Distribution sampling on top of `rand`.
//!
//! The simulator needs three non-uniform distributions:
//!
//! * **Exponential** — Poisson packet inter-arrival times (§5.2: "the packet
//!   generation time in the network follows the poisson distribution" with
//!   mean inter-arrival λ),
//! * **Normal** — log-normal capacities and noise terms (Box–Muller),
//! * **Log-normal** — synthetic power-plant capacities (§5.3 substitute) and
//!   the optional shadowing link model.
//!
//! They are implemented here (a few lines each, inverse-CDF / Box–Muller)
//! rather than adding a `rand_distr` dependency; see DESIGN.md §5.

use rand::{Rng, RngCore};

/// Sample an exponential random variable with the given **mean** (scale
/// parameter, i.e. `1/rate`).
///
/// Inverse-CDF method: `-mean · ln(1-U)` with `U ~ Uniform[0,1)`; `1-U` is
/// in `(0,1]` so the logarithm is finite.
///
/// # Panics
/// Panics if `mean` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "exponential mean must be positive, got {mean}"
    );
    let u: f64 = rng.gen::<f64>(); // in [0, 1)
    -mean * (1.0 - u).ln()
}

/// Sample a standard normal random variable via Box–Muller.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 from (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal random variable with the given mean and standard
/// deviation.
///
/// # Panics
/// Panics if `std_dev` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite());
    mean + std_dev * std_normal(rng)
}

/// Sample a log-normal random variable: `exp(N(mu, sigma))` where `mu` and
/// `sigma` are the mean and standard deviation *of the underlying normal*.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample a Poisson-distributed count with the given mean (Knuth's method
/// for small means, normal approximation above 30).
///
/// Used to decide how many packets a node generates in a fixed window when
/// an event-level arrival sequence is not required.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "poisson mean must be non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction; clamped at 0.
        let x = normal(rng, mean, mean.sqrt()) + 0.5;
        return x.max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample an index in `0..weights.len()` with probability proportional to
/// `weights[i]`. Returns `None` when the total weight is not positive.
///
/// The DEEC/LEACH election is threshold-based rather than roulette-based,
/// but the dataset generator and some tests use weighted choices.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 || total.is_nan() {
        return None;
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if t < w {
            return Some(i);
        }
        t -= w;
    }
    // Floating-point slack: fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Splitmix64 golden-ratio increment. Part of the frozen stream-derivation
/// contract — see [`StreamRng`].
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Splitmix64 finalizer (Steele, Lea & Flood 2014). Part of the frozen
/// stream-derivation contract — see [`StreamRng`].
#[inline]
fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation tags for [`StreamRng::for_node`]. Each simulator
/// purpose gets its own tag so two streams for the same (seed, round,
/// node) never collide.
pub mod stream_tag {
    /// Poisson packet-generation draws (traffic phase).
    pub const TRAFFIC: u64 = 1;
    /// Protocol routing decisions (e.g. Q-routing exploration draws).
    pub const PROTOCOL: u64 = 2;
    /// Link success/failure sampling during member→head transmission.
    pub const LINK: u64 = 3;
    /// Per-node fault draws.
    pub const FAULT: u64 = 4;
}

/// Counter-based RNG with O(1) stream derivation.
///
/// A splitmix64 generator whose initial state is derived by absorbing
/// `(seed, round, node, tag)` one component at a time:
///
/// ```text
/// s ← seed
/// for c in [round, node, tag]:
///     s ← mix(s + GOLDEN + c)
/// ```
///
/// where `mix` is the splitmix64 finalizer and `GOLDEN` is the 64-bit
/// golden-ratio constant. Every (seed, round, node, tag) tuple therefore
/// names an *independent* stream whose draws do not depend on any global
/// draw order — the property that lets the round engine fan node work out
/// across threads while keeping event streams byte-identical at every
/// thread count.
///
/// The derivation constants are a **frozen contract**: changing them
/// silently reshuffles every seeded simulation. A regression test pins
/// them (`stream_derivation_constants_are_frozen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// Derive the stream for `(seed, round, node, tag)`.
    ///
    /// `tag` is one of the [`stream_tag`] constants (or any caller-chosen
    /// domain separator).
    pub fn for_node(seed: u64, round: u32, node: u32, tag: u64) -> Self {
        let mut s = seed;
        for c in [u64::from(round), u64::from(node), tag] {
            s = splitmix_mix(s.wrapping_add(GOLDEN).wrapping_add(c));
        }
        StreamRng { state: s }
    }

    /// Derive a run-level stream with no node component (round-scoped
    /// draws that still must not depend on per-node draw counts).
    pub fn for_round(seed: u64, round: u32, tag: u64) -> Self {
        Self::for_node(seed, round, u32::MAX, tag)
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        splitmix_mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9E37_79B9)
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let n = 200_000;
        let mean = 2.5;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exponential(&mut r, mean);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let emp = sum / n as f64;
        assert!(
            (emp - mean).abs() < 0.03,
            "empirical mean {emp} far from {mean}"
        );
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_mean() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let (mu, sd) = (3.0, 2.0);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = normal(&mut r, mu, sd);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - mu).abs() < 0.03, "mean {mean}");
        assert!((var - sd * sd).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_correct_median() {
        let mut r = rng();
        let n = 100_000;
        let mut vals: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 1.0, 0.75)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        vals.sort_by(|a, b| a.total_cmp(b));
        let median = vals[n / 2];
        // Median of LogNormal(mu, sigma) is e^mu.
        assert!((median - 1f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for &mean in &[0.5, 4.0, 80.0] {
            let n = 50_000;
            let total: u64 = (0..n).map(|_| poisson_count(&mut r, mean)).sum();
            let emp = total as f64 / n as f64;
            assert!(
                (emp - mean).abs() < 0.05 * mean.max(1.0),
                "mean {mean} emp {emp}"
            );
        }
        assert_eq!(poisson_count(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 5.0]), Some(1));
    }

    /// The stream derivation is a frozen contract: any change to the
    /// constants or the absorb order reshuffles every seeded simulation.
    /// These values were computed once from the documented recipe and
    /// must never change.
    #[test]
    fn stream_derivation_constants_are_frozen() {
        let mut s = StreamRng::for_node(0, 0, 0, 0);
        assert_eq!(s.next_u64(), 0x2130_748A_AAC8_0268);
        assert_eq!(s.next_u64(), 0x0CC7_8FB9_79CE_5090);
        assert_eq!(s.next_u64(), 0xAB9A_A3DA_FBA6_B4AC);
        let mut s = StreamRng::for_node(0xDEAD_BEEF, 7, 42, stream_tag::LINK);
        assert_eq!(s.next_u64(), 0x13B1_4B31_4A44_13F2);
        assert_eq!(s.next_u64(), 0x47EF_123E_AE7D_EF82);
        assert_eq!(s.next_u64(), 0x41B1_F48E_8D1B_E5EC);
    }

    #[test]
    fn stream_is_deterministic_and_tag_separated() {
        let a: Vec<u64> = {
            let mut s = StreamRng::for_node(9, 3, 17, stream_tag::TRAFFIC);
            (0..32).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = StreamRng::for_node(9, 3, 17, stream_tag::TRAFFIC);
            (0..32).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a, b, "same tuple must yield the same stream");
        for (round, node, tag) in [
            (4, 17, stream_tag::TRAFFIC), // differ in round
            (3, 18, stream_tag::TRAFFIC), // differ in node
            (3, 17, stream_tag::LINK),    // differ in tag
        ] {
            let mut s = StreamRng::for_node(9, round, node, tag);
            let c: Vec<u64> = (0..32).map(|_| s.next_u64()).collect();
            assert_ne!(a, c, "({round},{node},{tag}) must not alias (3,17,TRAFFIC)");
        }
    }

    /// Per-stream uniformity: `gen::<f64>()` over one stream should be
    /// uniform on [0,1) — mean 1/2, variance 1/12, balanced deciles.
    #[test]
    fn stream_outputs_are_uniform() {
        let mut s = StreamRng::for_node(0xA5A5, 11, 2, stream_tag::PROTOCOL);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut deciles = [0usize; 10];
        for _ in 0..n {
            let u: f64 = s.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            sum_sq += u * u;
            deciles[(u * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
        for (d, &count) in deciles.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "decile {d}: {frac}");
        }
    }

    /// No cross-stream correlation at lag 0: draws at the same position
    /// in adjacent node streams must look independent (Pearson r ≈ 0).
    #[test]
    fn adjacent_streams_are_uncorrelated_at_lag_zero() {
        let n = 50_000;
        for (na, nb) in [(0u32, 1u32), (5, 6), (1000, 1001)] {
            let mut sa = StreamRng::for_node(0xFEED, 2, na, stream_tag::LINK);
            let mut sb = StreamRng::for_node(0xFEED, 2, nb, stream_tag::LINK);
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for _ in 0..n {
                let x: f64 = sa.gen();
                let y: f64 = sb.gen();
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            let nf = n as f64;
            let cov = sxy / nf - (sx / nf) * (sy / nf);
            let vx = sxx / nf - (sx / nf) * (sx / nf);
            let vy = syy / nf - (sy / nf) * (sy / nf);
            let r = cov / (vx * vy).sqrt();
            assert!(r.abs() < 0.02, "nodes ({na},{nb}): lag-0 correlation {r}");
        }
    }

    #[test]
    fn round_stream_does_not_alias_node_streams() {
        let mut round = StreamRng::for_round(1, 1, stream_tag::FAULT);
        let mut node = StreamRng::for_node(1, 1, 0, stream_tag::FAULT);
        let a: Vec<u64> = (0..8).map(|_| round.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| node.next_u64()).collect();
        assert_ne!(a, b);
    }
}
