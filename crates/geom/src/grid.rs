//! Uniform-grid spatial index for fixed point sets.
//!
//! Algorithm 3 of the paper (redundancy reduction) requires, for every
//! freshly elected cluster head, the set of nodes within the cluster
//! coverage radius `d_c` — a classic fixed-radius neighbour query. With
//! `N = 2 896` nodes (§5.3) and up to `k = 272` heads per round, a naive
//! `O(N·k)` scan per round is affordable but wasteful; the grid makes each
//! query touch only the cells overlapping the query ball.
//!
//! The index is built once per deployment (node positions are static in the
//! paper's model) and queried many times per round.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// A uniform spatial hash over a fixed set of points.
///
/// ```
/// use qlec_geom::{UniformGrid, Vec3};
/// let points = vec![Vec3::ZERO, Vec3::splat(10.0), Vec3::splat(100.0)];
/// let grid = UniformGrid::build(points, 4);
/// let near_origin = grid.within_radius(Vec3::ZERO, 20.0);
/// assert_eq!(near_origin.len(), 2); // the origin and (10,10,10)
/// assert_eq!(grid.nearest(Vec3::splat(90.0)), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Aabb,
    /// Number of cells along each axis (at least 1).
    dims: [usize; 3],
    /// Side lengths of one cell.
    cell: Vec3,
    /// CSR-style layout: `starts[c]..starts[c+1]` indexes into `entries`
    /// for cell `c`. Avoids one `Vec` allocation per cell.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Vec3>,
}

impl UniformGrid {
    /// Build a grid over `points` with roughly `target_per_cell` points per
    /// cell on average. An empty point set yields a valid, empty index.
    ///
    /// Accepts any position iterator, so callers holding positions inside
    /// richer records (e.g. a network's nodes) can feed them straight in
    /// without materialising an intermediate `Vec`.
    pub fn build(points: impl IntoIterator<Item = Vec3>, target_per_cell: usize) -> Self {
        assert!(target_per_cell > 0, "target_per_cell must be positive");
        let points: Vec<Vec3> = points.into_iter().collect();
        let bounds = Aabb::enclosing(&points).unwrap_or_else(|| Aabb::new(Vec3::ZERO, Vec3::ZERO));
        let n = points.len().max(1);
        // Cube-root heuristic: total cells ≈ n / target_per_cell, split
        // evenly across the three axes.
        let cells_total = (n / target_per_cell).max(1);
        let per_axis = (cells_total as f64).cbrt().ceil().max(1.0) as usize;
        Self::build_with_dims(points, bounds, [per_axis; 3])
    }

    /// Build with explicit cell counts per axis (mainly for tests).
    pub fn build_with_dims(points: Vec<Vec3>, bounds: Aabb, dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        let ext = bounds.extent();
        let cell = Vec3::new(
            if ext.x > 0.0 {
                ext.x / dims[0] as f64
            } else {
                1.0
            },
            if ext.y > 0.0 {
                ext.y / dims[1] as f64
            } else {
                1.0
            },
            if ext.z > 0.0 {
                ext.z / dims[2] as f64
            } else {
                1.0
            },
        );
        let ncells = dims[0] * dims[1] * dims[2];

        // Counting sort of points into cells.
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Vec3| -> usize {
            let rel = p - bounds.min();
            let ix = ((rel.x / cell.x) as usize).min(dims[0] - 1);
            let iy = ((rel.y / cell.y) as usize).min(dims[1] - 1);
            let iz = ((rel.z / cell.z) as usize).min(dims[2] - 1);
            (iz * dims[1] + iy) * dims[0] + ix
        };
        for &p in &points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        UniformGrid {
            bounds,
            dims,
            cell,
            starts,
            entries,
            points,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in the order indices refer to.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    #[inline]
    fn axis_range(&self, lo: f64, hi: f64, axis: usize) -> (usize, usize) {
        let min = self.bounds.min()[axis];
        let c = self.cell[axis];
        let a = (((lo - min) / c).floor().max(0.0)) as usize;
        let b = (((hi - min) / c).floor().max(0.0)) as usize;
        (a.min(self.dims[axis] - 1), b.min(self.dims[axis] - 1))
    }

    /// Indices of all points within `radius` of `center` (inclusive),
    /// appended to `out` in unspecified order. `out` is cleared first.
    ///
    /// This is the HELLO-broadcast primitive of Algorithm 3.
    pub fn within_radius_into(&self, center: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let (x0, x1) = self.axis_range(center.x - radius, center.x + radius, 0);
        let (y0, y1) = self.axis_range(center.y - radius, center.y + radius, 1);
        let (z0, z1) = self.axis_range(center.z - radius, center.z + radius, 2);
        for iz in z0..=z1 {
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let c = (iz * self.dims[1] + iy) * self.dims[0] + ix;
                    let s = self.starts[c] as usize;
                    let e = self.starts[c + 1] as usize;
                    for &idx in &self.entries[s..e] {
                        if self.points[idx as usize].dist_sq(center) <= r_sq {
                            out.push(idx);
                        }
                    }
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh `Vec`.
    pub fn within_radius(&self, center: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_radius_into(center, radius, &mut out);
        out
    }

    /// Index of the point nearest to `q`, or `None` if empty.
    ///
    /// Expanding-ring search over grid shells; falls back to a full scan
    /// once the ring covers the whole grid (worst case, still correct).
    pub fn nearest(&self, q: Vec3) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        // Simple and robust: expanding radius doubling from one cell size.
        let mut radius = self.cell.x.max(self.cell.y).max(self.cell.z);
        let max_radius = self.bounds.diagonal() + radius + q.dist(self.bounds.closest_point(q));
        let mut buf = Vec::new();
        loop {
            self.within_radius_into(q, radius, &mut buf);
            if let Some(&best) = buf.iter().min_by(|&&a, &&b| {
                self.points[a as usize]
                    .dist_sq(q)
                    .total_cmp(&self.points[b as usize].dist_sq(q))
            }) {
                // A point found at distance d is only guaranteed nearest if
                // d <= radius (all closer candidates were inside the ball).
                let d = self.points[best as usize].dist(q);
                if d <= radius {
                    return Some(best);
                }
            }
            if radius > max_radius {
                // Exhaustive fallback (ring already covered everything).
                return (0..self.points.len() as u32).min_by(|&a, &b| {
                    self.points[a as usize]
                        .dist_sq(q)
                        .total_cmp(&self.points[b as usize].dist_sq(q))
                });
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::uniform_points_in_aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn brute_within(points: &[Vec3], c: Vec3, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(c) <= r * r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_grid_is_fine() {
        let g = UniformGrid::build(std::iter::empty(), 4);
        assert!(g.is_empty());
        assert!(g.within_radius(Vec3::ZERO, 10.0).is_empty());
        assert!(g.nearest(Vec3::ZERO).is_none());
    }

    #[test]
    fn single_point() {
        let g = UniformGrid::build(vec![Vec3::splat(5.0)], 4);
        assert_eq!(g.nearest(Vec3::ZERO), Some(0));
        assert_eq!(g.within_radius(Vec3::splat(5.0), 0.0), vec![0]);
        assert!(g.within_radius(Vec3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = Aabb::cube(200.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 800);
        let g = UniformGrid::build(pts.clone(), 8);
        for center in uniform_points_in_aabb(&mut rng, &b, 50) {
            for &r in &[0.0, 5.0, 30.0, 77.2, 250.0] {
                let mut got = g.within_radius(center, r);
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute_within(&pts, center, r),
                    "center {center:?} r {r}"
                );
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = Aabb::cube(100.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 500);
        let g = UniformGrid::build(pts.clone(), 8);
        // Include query points outside the bounds.
        let mut queries = uniform_points_in_aabb(&mut rng, &b, 40);
        queries.push(Vec3::splat(-50.0));
        queries.push(Vec3::splat(500.0));
        for q in queries {
            let got = g.nearest(q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist_sq(q).total_cmp(&b.dist_sq(q)))
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(
                pts[got as usize].dist(q),
                pts[best as usize].dist(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn degenerate_coplanar_points() {
        // All points on a plane (zero extent along z): grid must not panic
        // and queries must stay correct.
        let pts: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new(i as f64, (i * 7 % 13) as f64, 0.0))
            .collect();
        let g = UniformGrid::build(pts.clone(), 4);
        let got = g.within_radius(Vec3::new(50.0, 5.0, 0.0), 10.0);
        let want = brute_within(&pts, Vec3::new(50.0, 5.0, 0.0), 10.0);
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Vec3::ONE; 10];
        let g = UniformGrid::build(pts, 2);
        assert_eq!(g.within_radius(Vec3::ONE, 0.5).len(), 10);
    }
}
