//! Uniform-grid spatial index with incremental maintenance.
//!
//! Algorithm 3 of the paper (redundancy reduction) requires, for every
//! freshly elected cluster head, the set of nodes within the cluster
//! coverage radius `d_c` — a classic fixed-radius neighbour query. With
//! `N = 2 896` nodes (§5.3) and up to `k = 272` heads per round, a naive
//! `O(N·k)` scan per round is affordable but wasteful; the grid makes each
//! query touch only the cells overlapping the query ball.
//!
//! The index is built once per deployment and queried many times per round.
//! At 100k nodes a full rebuild every round costs `O(N)` even when only a
//! handful of nodes died, so the grid also supports *incremental*
//! maintenance: [`UniformGrid::insert`], [`UniformGrid::remove`] and
//! [`UniformGrid::move_point`] update the index in `O(1)` amortised time
//! per mutation, stamped by a [generation counter](UniformGrid::generation).
//! Point indices are stable for the lifetime of the grid — removal leaves a
//! tombstone, it never renumbers — so callers that identify points by index
//! (the protocol maps grid index to `NodeId` directly) stay correct across
//! any mutation sequence. Once accumulated churn exceeds
//! [`rebuild_threshold`](UniformGrid::set_rebuild_threshold) × live points,
//! the grid re-bins itself in one `O(N)` pass, restoring pristine query
//! speed; the cell geometry (bounds, dims) is fixed at build time, and
//! points outside the original bounds clamp to edge cells — exactly how
//! queries clamp, so correctness is unaffected.
//!
//! Out-of-bounds (and non-finite) positions are therefore *legal but
//! observable*: every registration that had to clamp — at build, on
//! [`UniformGrid::insert`], or on [`UniformGrid::move_point`] — bumps a
//! counter exposed via [`UniformGrid::clamped_registrations`]. Callers
//! feeding drifting mobility traces can watch that counter instead of
//! discovering silently-misbinned points; query-side clamping (a search
//! ball poking past the boundary) is by design and is not counted.

use crate::aabb::Aabb;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// Sentinel for "this point has no CSR home cell" (inserted after build).
const NO_HOME: u32 = u32::MAX;

/// Default churn fraction that triggers a full re-bin.
const DEFAULT_REBUILD_THRESHOLD: f64 = 0.25;

/// A uniform spatial hash over a point set, with incremental updates.
///
/// ```
/// use qlec_geom::{UniformGrid, Vec3};
/// let points = vec![Vec3::ZERO, Vec3::splat(10.0), Vec3::splat(100.0)];
/// let mut grid = UniformGrid::build(points, 4);
/// let near_origin = grid.within_radius(Vec3::ZERO, 20.0);
/// assert_eq!(near_origin.len(), 2); // the origin and (10,10,10)
/// assert_eq!(grid.nearest(Vec3::splat(90.0)), Some(2));
///
/// // Incremental maintenance: indices are stable across mutations.
/// grid.remove(1);
/// assert_eq!(grid.within_radius(Vec3::ZERO, 20.0), vec![0]);
/// let idx = grid.insert(Vec3::splat(12.0));
/// assert_eq!(idx, 3);
/// assert_eq!(grid.nearest(Vec3::splat(11.0)), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Aabb,
    /// Number of cells along each axis (at least 1).
    dims: [usize; 3],
    /// Side lengths of one cell.
    cell: Vec3,
    /// CSR-style layout: `starts[c]..starts[c+1]` indexes into `entries`
    /// for cell `c`. Avoids one `Vec` allocation per cell.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Vec3>,
    /// Liveness per point slot; `remove` tombstones, never renumbers.
    alive: Vec<bool>,
    /// The CSR cell each point was binned into at the last (re)build, or
    /// [`NO_HOME`] for points inserted since.
    home: Vec<u32>,
    /// The cell each live point currently belongs to.
    cur_cell: Vec<u32>,
    /// Points currently registered outside their CSR home cell
    /// (inserted or moved since the last re-bin), keyed by current cell.
    overflow: HashMap<u32, Vec<u32>>,
    /// Total entries across `overflow` (fast skip when zero).
    overflow_len: usize,
    /// CSR entries that no longer reflect their point (dead or moved away).
    stale: usize,
    /// Live points.
    alive_count: usize,
    /// Mutations since the last re-bin; drives the rebuild threshold.
    churn: usize,
    /// Bumped on every successful mutation.
    generation: u64,
    /// Full re-bins performed since construction.
    rebuilds: u64,
    /// Registrations (build/insert/move) whose position fell outside the
    /// build-time bounds — or was non-finite — and clamped to an edge
    /// cell. See [`UniformGrid::clamped_registrations`].
    clamped: u64,
    /// Churn fraction (of live points) above which a mutation triggers a
    /// full re-bin.
    rebuild_threshold: f64,
}

impl UniformGrid {
    /// Build a grid over `points` with roughly `target_per_cell` points per
    /// cell on average. An empty point set yields a valid, empty index.
    ///
    /// Accepts any position iterator, so callers holding positions inside
    /// richer records (e.g. a network's nodes) can feed them straight in
    /// without materialising an intermediate `Vec`.
    pub fn build(points: impl IntoIterator<Item = Vec3>, target_per_cell: usize) -> Self {
        assert!(target_per_cell > 0, "target_per_cell must be positive");
        let points: Vec<Vec3> = points.into_iter().collect();
        let bounds = Aabb::enclosing(&points).unwrap_or_else(|| Aabb::new(Vec3::ZERO, Vec3::ZERO));
        let n = points.len().max(1);
        // Cube-root heuristic: total cells ≈ n / target_per_cell, split
        // evenly across the three axes.
        let cells_total = (n / target_per_cell).max(1);
        let per_axis = (cells_total as f64).cbrt().ceil().max(1.0) as usize;
        Self::build_with_dims(points, bounds, [per_axis; 3])
    }

    /// Build with explicit cell counts per axis (mainly for tests).
    pub fn build_with_dims(points: Vec<Vec3>, bounds: Aabb, dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        let ext = bounds.extent();
        let cell = Vec3::new(
            if ext.x > 0.0 {
                ext.x / dims[0] as f64
            } else {
                1.0
            },
            if ext.y > 0.0 {
                ext.y / dims[1] as f64
            } else {
                1.0
            },
            if ext.z > 0.0 {
                ext.z / dims[2] as f64
            } else {
                1.0
            },
        );

        let n = points.len();
        let mut grid = UniformGrid {
            bounds,
            dims,
            cell,
            starts: Vec::new(),
            entries: Vec::new(),
            points,
            alive: vec![true; n],
            home: vec![NO_HOME; n],
            cur_cell: vec![0; n],
            overflow: HashMap::new(),
            overflow_len: 0,
            stale: 0,
            alive_count: n,
            churn: 0,
            generation: 0,
            rebuilds: 0,
            clamped: 0,
            rebuild_threshold: DEFAULT_REBUILD_THRESHOLD,
        };
        for i in 0..n {
            grid.cur_cell[i] = grid.register_cell_of(grid.points[i]);
        }
        grid.rebin();
        grid.rebuilds = 0; // the initial binning is not a "rebuild"
        grid
    }

    /// Cell index for position `p`, clamping to the edge cells.
    ///
    /// The clamp is deliberate and double-ended: a negative or NaN axis
    /// value saturates to 0 through the `as usize` cast, an over-large
    /// one is capped at `dims - 1`, so *every* position maps to a valid
    /// cell — the same cell the clamped query walk inspects, which keeps
    /// out-of-bounds points findable. Mutation paths detect the clamp
    /// separately (see [`UniformGrid::register_cell_of`]) so it is
    /// counted, never silent.
    #[inline]
    fn cell_of(&self, p: Vec3) -> u32 {
        let rel = p - self.bounds.min();
        let ix = ((rel.x / self.cell.x) as usize).min(self.dims[0] - 1);
        let iy = ((rel.y / self.cell.y) as usize).min(self.dims[1] - 1);
        let iz = ((rel.z / self.cell.z) as usize).min(self.dims[2] - 1);
        ((iz * self.dims[1] + iy) * self.dims[0] + ix) as u32
    }

    /// [`Self::cell_of`] for registration paths: additionally bumps the
    /// clamp counter when `p` lies outside the build-time bounds.
    /// `Aabb::contains` is inclusive and rejects NaN (all comparisons
    /// fail), so non-finite positions are counted too.
    #[inline]
    fn register_cell_of(&mut self, p: Vec3) -> u32 {
        if !self.bounds.contains(p) {
            self.clamped += 1;
        }
        self.cell_of(p)
    }

    /// Whether `idx` is currently registered in an overflow list rather
    /// than (validly) in the CSR layout. Only meaningful for live points.
    #[inline]
    fn in_overflow(&self, idx: usize) -> bool {
        self.home[idx] == NO_HOME || self.cur_cell[idx] != self.home[idx]
    }

    fn overflow_remove(&mut self, cell: u32, idx: u32) {
        let v = self
            .overflow
            .get_mut(&cell)
            .expect("overflow list must exist for a registered point");
        let pos = v
            .iter()
            .position(|&e| e == idx)
            .expect("point must be present in its overflow cell");
        v.swap_remove(pos);
        if v.is_empty() {
            self.overflow.remove(&cell);
        }
        self.overflow_len -= 1;
    }

    /// Counting-sort re-bin of all live points at their current positions.
    /// Cell geometry (bounds, dims) is unchanged; dead slots are dropped
    /// from the CSR layout, so queries after a re-bin pay no filtering
    /// cost. Indices are unaffected.
    fn rebin(&mut self) {
        let ncells = self.dims[0] * self.dims[1] * self.dims[2];
        let mut counts = vec![0u32; ncells + 1];
        for i in 0..self.points.len() {
            if self.alive[i] {
                counts[self.cur_cell[i] as usize + 1] += 1;
            }
        }
        for c in 1..=ncells {
            counts[c] += counts[c - 1];
        }
        self.starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; self.alive_count];
        for i in 0..self.points.len() {
            if self.alive[i] {
                let c = self.cur_cell[i] as usize;
                entries[cursor[c] as usize] = i as u32;
                cursor[c] += 1;
                self.home[i] = self.cur_cell[i];
            }
        }
        self.entries = entries;
        self.overflow.clear();
        self.overflow_len = 0;
        self.stale = 0;
        self.churn = 0;
        self.rebuilds += 1;
    }

    #[inline]
    fn note_churn(&mut self) {
        self.churn += 1;
        self.generation += 1;
        let budget = (self.rebuild_threshold * self.alive_count.max(1) as f64).ceil() as usize;
        if self.churn > budget {
            self.rebin();
        }
    }

    /// Insert a point, returning its (stable) index. Positions outside the
    /// build-time bounds are legal: they bin into the clamped edge cell,
    /// which is exactly where queries look for them.
    pub fn insert(&mut self, p: Vec3) -> u32 {
        let idx = self.points.len() as u32;
        self.points.push(p);
        self.alive.push(true);
        self.home.push(NO_HOME);
        let c = self.register_cell_of(p);
        self.cur_cell.push(c);
        self.overflow.entry(c).or_default().push(idx);
        self.overflow_len += 1;
        self.alive_count += 1;
        self.note_churn();
        idx
    }

    /// Remove the point at `idx` (tombstone; indices of other points are
    /// unaffected). Returns `false` if it was already removed.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn remove(&mut self, idx: u32) -> bool {
        let i = idx as usize;
        if !self.alive[i] {
            return false;
        }
        if self.in_overflow(i) {
            self.overflow_remove(self.cur_cell[i], idx);
        } else {
            self.stale += 1; // its CSR entry now needs filtering
        }
        self.alive[i] = false;
        self.alive_count -= 1;
        self.note_churn();
        true
    }

    /// Move the live point at `idx` to position `p`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds or the point was removed.
    pub fn move_point(&mut self, idx: u32, p: Vec3) {
        let i = idx as usize;
        assert!(self.alive[i], "cannot move a removed point");
        self.points[i] = p;
        let new_c = self.register_cell_of(p);
        let old_c = self.cur_cell[i];
        if new_c != old_c {
            if self.in_overflow(i) {
                self.overflow_remove(old_c, idx);
            } else {
                self.stale += 1; // left its CSR home cell
            }
            if new_c == self.home[i] {
                self.stale -= 1; // back home: its CSR entry is valid again
            } else {
                self.overflow.entry(new_c).or_default().push(idx);
                self.overflow_len += 1;
            }
            self.cur_cell[i] = new_c;
        }
        self.note_churn();
    }

    /// Monotone counter bumped by every `insert` / `remove` / `move_point`.
    /// Callers caching derived state can compare generations instead of
    /// diffing point sets.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of full re-bins triggered by churn since construction.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// How many registrations (build-time binning, [`Self::insert`],
    /// [`Self::move_point`]) carried a position outside the build-time
    /// bounds — including NaN/infinite coordinates — and were clamped to
    /// an edge cell. The clamp itself is by design (the point stays
    /// findable, because queries clamp identically); the counter makes a
    /// drifting mobility trace observable instead of silently piling
    /// nodes into boundary cells. Monotone; never reset by re-bins.
    pub fn clamped_registrations(&self) -> u64 {
        self.clamped
    }

    /// Set the churn fraction (of live points) above which a mutation
    /// triggers a full re-bin. Must be positive; default 0.25.
    pub fn set_rebuild_threshold(&mut self, t: f64) {
        assert!(t > 0.0, "rebuild threshold must be positive");
        self.rebuild_threshold = t;
    }

    /// Number of live (non-removed) points.
    pub fn len(&self) -> usize {
        self.alive_count
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.alive_count == 0
    }

    /// The point slots, in the order indices refer to. Includes removed
    /// slots (their last position); check liveness out-of-band if needed.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    #[inline]
    fn axis_range(&self, lo: f64, hi: f64, axis: usize) -> (usize, usize) {
        let min = self.bounds.min()[axis];
        let c = self.cell[axis];
        let a = (((lo - min) / c).floor().max(0.0)) as usize;
        let b = (((hi - min) / c).floor().max(0.0)) as usize;
        (a.min(self.dims[axis] - 1), b.min(self.dims[axis] - 1))
    }

    /// Indices of all live points within `radius` of `center` (inclusive),
    /// appended to `out` in unspecified order. `out` is cleared first.
    ///
    /// This is the HELLO-broadcast primitive of Algorithm 3.
    pub fn within_radius_into(&self, center: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        if self.alive_count == 0 || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let (x0, x1) = self.axis_range(center.x - radius, center.x + radius, 0);
        let (y0, y1) = self.axis_range(center.y - radius, center.y + radius, 1);
        let (z0, z1) = self.axis_range(center.z - radius, center.z + radius, 2);
        for iz in z0..=z1 {
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let c = (iz * self.dims[1] + iy) * self.dims[0] + ix;
                    let s = self.starts[c] as usize;
                    let e = self.starts[c + 1] as usize;
                    if self.stale == 0 {
                        // Fast path: every CSR entry is live and at home.
                        for &idx in &self.entries[s..e] {
                            if self.points[idx as usize].dist_sq(center) <= r_sq {
                                out.push(idx);
                            }
                        }
                    } else {
                        for &idx in &self.entries[s..e] {
                            let i = idx as usize;
                            if self.alive[i]
                                && self.cur_cell[i] as usize == c
                                && self.points[i].dist_sq(center) <= r_sq
                            {
                                out.push(idx);
                            }
                        }
                    }
                    if self.overflow_len > 0 {
                        if let Some(v) = self.overflow.get(&(c as u32)) {
                            for &idx in v {
                                if self.points[idx as usize].dist_sq(center) <= r_sq {
                                    out.push(idx);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh `Vec`.
    pub fn within_radius(&self, center: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_radius_into(center, radius, &mut out);
        out
    }

    /// Index of the live point nearest to `q`, or `None` if empty.
    ///
    /// Expanding-ring search over grid shells; falls back to a full scan
    /// once the ring covers the whole grid (worst case, still correct).
    pub fn nearest(&self, q: Vec3) -> Option<u32> {
        if self.alive_count == 0 {
            return None;
        }
        // Simple and robust: expanding radius doubling from one cell size.
        let mut radius = self.cell.x.max(self.cell.y).max(self.cell.z);
        let max_radius = self.bounds.diagonal() + radius + q.dist(self.bounds.closest_point(q));
        let mut buf = Vec::new();
        loop {
            self.within_radius_into(q, radius, &mut buf);
            if let Some(&best) = buf.iter().min_by(|&&a, &&b| {
                self.points[a as usize]
                    .dist_sq(q)
                    .total_cmp(&self.points[b as usize].dist_sq(q))
            }) {
                // A point found at distance d is only guaranteed nearest if
                // d <= radius (all closer candidates were inside the ball).
                let d = self.points[best as usize].dist(q);
                if d <= radius {
                    return Some(best);
                }
            }
            if radius > max_radius {
                // Exhaustive fallback (ring already covered everything).
                return (0..self.points.len() as u32)
                    .filter(|&i| self.alive[i as usize])
                    .min_by(|&a, &b| {
                        self.points[a as usize]
                            .dist_sq(q)
                            .total_cmp(&self.points[b as usize].dist_sq(q))
                    });
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::uniform_points_in_aabb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_within(points: &[Vec3], alive: impl Fn(usize) -> bool, c: Vec3, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(i, p)| alive(*i) && p.dist_sq(c) <= r * r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_grid_is_fine() {
        let g = UniformGrid::build(std::iter::empty(), 4);
        assert!(g.is_empty());
        assert!(g.within_radius(Vec3::ZERO, 10.0).is_empty());
        assert!(g.nearest(Vec3::ZERO).is_none());
    }

    #[test]
    fn single_point() {
        let g = UniformGrid::build(vec![Vec3::splat(5.0)], 4);
        assert_eq!(g.nearest(Vec3::ZERO), Some(0));
        assert_eq!(g.within_radius(Vec3::splat(5.0), 0.0), vec![0]);
        assert!(g.within_radius(Vec3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = Aabb::cube(200.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 800);
        let g = UniformGrid::build(pts.clone(), 8);
        for center in uniform_points_in_aabb(&mut rng, &b, 50) {
            for &r in &[0.0, 5.0, 30.0, 77.2, 250.0] {
                let mut got = g.within_radius(center, r);
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute_within(&pts, |_| true, center, r),
                    "center {center:?} r {r}"
                );
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = Aabb::cube(100.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 500);
        let g = UniformGrid::build(pts.clone(), 8);
        // Include query points outside the bounds.
        let mut queries = uniform_points_in_aabb(&mut rng, &b, 40);
        queries.push(Vec3::splat(-50.0));
        queries.push(Vec3::splat(500.0));
        for q in queries {
            let got = g.nearest(q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist_sq(q).total_cmp(&b.dist_sq(q)))
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(
                pts[got as usize].dist(q),
                pts[best as usize].dist(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn degenerate_coplanar_points() {
        // All points on a plane (zero extent along z): grid must not panic
        // and queries must stay correct.
        let pts: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new(i as f64, (i * 7 % 13) as f64, 0.0))
            .collect();
        let g = UniformGrid::build(pts.clone(), 4);
        let got = g.within_radius(Vec3::new(50.0, 5.0, 0.0), 10.0);
        let want = brute_within(&pts, |_| true, Vec3::new(50.0, 5.0, 0.0), 10.0);
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Vec3::ONE; 10];
        let g = UniformGrid::build(pts, 2);
        assert_eq!(g.within_radius(Vec3::ONE, 0.5).len(), 10);
    }

    #[test]
    fn remove_tombstones_and_keeps_indices_stable() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = Aabb::cube(150.0);
        let pts = uniform_points_in_aabb(&mut rng, &b, 400);
        let mut g = UniformGrid::build(pts.clone(), 8);
        // Keep churn below the threshold so no re-bin hides filtering bugs.
        g.set_rebuild_threshold(0.9);
        let mut dead = vec![false; pts.len()];
        for i in (0..pts.len()).step_by(3) {
            assert!(g.remove(i as u32));
            assert!(!g.remove(i as u32), "double remove must report false");
            dead[i] = true;
        }
        assert_eq!(g.len(), pts.len() - dead.iter().filter(|&&d| d).count());
        for center in uniform_points_in_aabb(&mut rng, &b, 30) {
            for &r in &[10.0, 40.0, 200.0] {
                let mut got = g.within_radius(center, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, |i| !dead[i], center, r));
            }
            if let Some(n) = g.nearest(center) {
                assert!(!dead[n as usize], "nearest must skip removed points");
            }
        }
    }

    #[test]
    fn insert_and_move_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(29);
        let b = Aabb::cube(120.0);
        let base = uniform_points_in_aabb(&mut rng, &b, 300);
        let mut g = UniformGrid::build(base.clone(), 8);
        g.set_rebuild_threshold(0.9);
        let mut pts = base;
        // Insert some points, including out-of-bounds positions.
        for p in uniform_points_in_aabb(&mut rng, &Aabb::cube(200.0), 40) {
            let idx = g.insert(p);
            assert_eq!(idx as usize, pts.len());
            pts.push(p);
        }
        // Move a slice of points around, some back and forth.
        for i in (0..pts.len()).step_by(7) {
            let p = Vec3::new(
                rng.gen_range(-20.0..160.0),
                rng.gen_range(-20.0..160.0),
                rng.gen_range(-20.0..160.0),
            );
            g.move_point(i as u32, p);
            pts[i] = p;
        }
        for i in (0..pts.len()).step_by(14) {
            // Move back to the original-ish cell region.
            let p = Vec3::splat((i % 100) as f64);
            g.move_point(i as u32, p);
            pts[i] = p;
        }
        for center in uniform_points_in_aabb(&mut rng, &b, 25) {
            for &r in &[15.0, 60.0, 400.0] {
                let mut got = g.within_radius(center, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, |_| true, center, r));
            }
        }
    }

    #[test]
    fn churn_triggers_rebuild_and_queries_survive() {
        let mut rng = StdRng::seed_from_u64(31);
        let b = Aabb::cube(100.0);
        let base = uniform_points_in_aabb(&mut rng, &b, 200);
        let mut g = UniformGrid::build(base.clone(), 8);
        g.set_rebuild_threshold(0.1);
        assert_eq!(g.rebuilds(), 0);
        let gen0 = g.generation();
        let mut pts = base;
        let mut dead = vec![false; pts.len()];
        for i in 0..100 {
            if i % 2 == 0 {
                g.remove(i as u32);
                dead[i] = true;
            } else {
                let p = uniform_points_in_aabb(&mut rng, &b, 1)[0];
                g.move_point(i as u32, p);
                pts[i] = p;
            }
        }
        assert!(g.rebuilds() > 0, "10% threshold must have re-binned");
        assert_eq!(g.generation(), gen0 + 100);
        for center in uniform_points_in_aabb(&mut rng, &b, 20) {
            let mut got = g.within_radius(center, 30.0);
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, |i| !dead[i], center, 30.0));
        }
    }

    #[test]
    fn out_of_bounds_registrations_are_counted_and_findable() {
        // Build over a unit-ish box; in-bounds registrations never count.
        let base = vec![Vec3::ZERO, Vec3::splat(10.0)];
        let mut g = UniformGrid::build(base, 4);
        g.set_rebuild_threshold(0.9);
        assert_eq!(g.clamped_registrations(), 0);

        // Negative coordinates: clamped to the edge cell, counted once,
        // and still returned by queries covering that corner.
        let neg = g.insert(Vec3::new(-5.0, -1.0, -0.25));
        assert_eq!(g.clamped_registrations(), 1);
        assert!(g.within_radius(Vec3::ZERO, 6.0).contains(&neg));

        // Past the max corner: same deal.
        g.move_point(neg, Vec3::splat(25.0));
        assert_eq!(g.clamped_registrations(), 2);
        assert!(g.within_radius(Vec3::splat(10.0), 30.0).contains(&neg));

        // Moving back in-bounds does not count.
        g.move_point(neg, Vec3::splat(5.0));
        assert_eq!(g.clamped_registrations(), 2);

        // The counter survives a churn-triggered re-bin.
        g.set_rebuild_threshold(0.01);
        g.move_point(neg, Vec3::splat(6.0));
        assert!(g.rebuilds() > 0, "tiny threshold must have re-binned");
        assert_eq!(g.clamped_registrations(), 2);
    }

    #[test]
    fn nan_positions_clamp_without_panicking() {
        let mut g = UniformGrid::build(vec![Vec3::ZERO, Vec3::splat(10.0)], 4);
        g.set_rebuild_threshold(0.9);
        let nan = g.insert(Vec3::new(f64::NAN, 5.0, 5.0));
        assert_eq!(g.clamped_registrations(), 1);
        // A NaN coordinate fails every distance comparison, so the point
        // is unreachable by queries — but nothing panics, other points
        // stay correct, and the registration was counted.
        assert!(!g.within_radius(Vec3::splat(5.0), 1e9).contains(&nan));
        assert_eq!(g.nearest(Vec3::ZERO), Some(0));
        assert!(g.remove(nan));
        assert_eq!(g.nearest(Vec3::splat(9.0)), Some(1));
    }

    #[test]
    fn build_time_clamps_are_counted_with_explicit_bounds() {
        // build_with_dims takes caller-supplied bounds, so build-time
        // positions can fall outside them (UniformGrid::build computes
        // enclosing bounds and never clamps at build).
        let pts = vec![Vec3::splat(5.0), Vec3::splat(50.0), Vec3::splat(-3.0)];
        let g =
            UniformGrid::build_with_dims(pts, Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), [2, 2, 2]);
        assert_eq!(g.clamped_registrations(), 2);
        // Clamped points live in edge cells and remain findable.
        assert!(g.within_radius(Vec3::splat(10.0), 80.0).contains(&1));
        assert!(g.within_radius(Vec3::ZERO, 10.0).contains(&2));
    }

    #[test]
    fn generation_counts_every_mutation() {
        let mut g = UniformGrid::build(vec![Vec3::ZERO, Vec3::ONE], 4);
        assert_eq!(g.generation(), 0);
        let i = g.insert(Vec3::splat(2.0));
        g.move_point(i, Vec3::splat(3.0));
        g.remove(i);
        g.remove(i); // no-op: already removed
        assert_eq!(g.generation(), 3);
    }
}
