//! A minimal `f64` 3-vector.
//!
//! Positions, displacements, and centroids in the simulator are all `Vec3`.
//! The type is `Copy` (24 bytes) so it is passed by value everywhere; the
//! paper's distance quantities (`d_toCH`, `d_toBS`, `d_c`) are plain
//! Euclidean norms of differences of these vectors.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A point or displacement in 3-D Euclidean space.
///
/// ```
/// use qlec_geom::Vec3;
/// let a = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.dist(Vec3::ZERO), 5.0);
/// assert_eq!((a + Vec3::ONE) - Vec3::ONE, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Create a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean distance to `o`.
    ///
    /// Preferred in hot paths (candidate filtering, nearest-neighbour
    /// pruning) because it avoids the square root; the radio energy model's
    /// free-space term is itself proportional to `d²` (Eq. 18), so many
    /// callers never need the root at all.
    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Euclidean distance to `o`.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        self.dist_sq(o).sqrt()
    }

    /// Unit vector in the direction of `self`; `None` for (near-)zero input.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > f64::EPSILON {
            Some(self / n)
        } else {
            None
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Clamp every component into `[lo, hi]` (component-wise bounds).
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// `true` iff all three components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from(t: (f64, f64, f64)) -> Self {
        Vec3::new(t.0, t.1, t.2)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

/// Arithmetic mean of a non-empty slice of points (cluster centroid).
pub fn centroid(points: &[Vec3]) -> Option<Vec3> {
    if points.is_empty() {
        return None;
    }
    Some(points.iter().copied().sum::<Vec3>() / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        // Cross product is anti-commutative.
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        // Cross product is orthogonal to both operands.
        let u = Vec3::new(1.5, -2.0, 0.25);
        let v = Vec3::new(-0.5, 3.0, 7.0);
        let w = u.cross(v);
        assert!(w.dot(u).abs() < 1e-12);
        assert!(w.dot(v).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(a.dist(b), 12.0);
        assert_eq!(a.dist_sq(b), 144.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let a = Vec3::new(0.0, 0.0, 9.0);
        assert_eq!(a.normalized().unwrap(), Vec3::new(0.0, 0.0, 1.0));
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -4.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -4.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -3.0));
        let c = a.clamp(Vec3::ZERO, Vec3::splat(2.0));
        assert_eq!(c, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn indexing_and_conversions() {
        let a = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 8.0);
        assert_eq!(a[2], 9.0);
        assert_eq!(Vec3::from([7.0, 8.0, 9.0]), a);
        assert_eq!(Vec3::from((7.0, 8.0, 9.0)), a);
        assert_eq!(a.to_array(), [7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ONE[3];
    }

    #[test]
    fn centroid_of_points() {
        assert!(centroid(&[]).is_none());
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 2.0, 2.0)];
        assert_eq!(centroid(&pts).unwrap(), Vec3::splat(1.0));
    }

    #[test]
    fn sum_of_vectors() {
        let pts = [Vec3::splat(1.0), Vec3::splat(2.0), Vec3::splat(3.0)];
        let s: Vec3 = pts.iter().copied().sum();
        assert_eq!(s, Vec3::splat(6.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
