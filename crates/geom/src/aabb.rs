//! Axis-aligned bounding boxes.
//!
//! The deployment volume of the paper is the cube `[0, M]³`; the large-scale
//! experiment (§5.3) uses a geographic bounding box extruded to 3-D by a
//! random height. Both are represented as an [`Aabb`].

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[min, max]` in 3-D space.
///
/// Invariant: `min.c <= max.c` for every component `c` (enforced by the
/// constructors; [`Aabb::from_corners`] sorts the inputs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Box from already-ordered corners. Panics if any `min` component
    /// exceeds the corresponding `max` component.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb::new requires min <= max componentwise, got {min:?} > {max:?}"
        );
        Aabb { min, max }
    }

    /// Box spanning two arbitrary corner points (components are sorted).
    pub fn from_corners(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The paper's deployment volume: the cube `[0, m]³`.
    pub fn cube(m: f64) -> Self {
        assert!(
            m >= 0.0 && m.is_finite(),
            "cube side must be non-negative and finite"
        );
        Aabb {
            min: Vec3::ZERO,
            max: Vec3::splat(m),
        }
    }

    /// Smallest box containing all `points`; `None` if the slice is empty.
    pub fn enclosing(points: &[Vec3]) -> Option<Self> {
        let first = *points.first()?;
        let (min, max) = points
            .iter()
            .skip(1)
            .fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Geometric centre — where the paper places the sink/base station
    /// ("the green node in the center", Fig. 1).
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths along each axis.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Length of the space diagonal (an upper bound on any pairwise
    /// distance inside the box).
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }

    /// Whether `p` lies inside the box (inclusive on all faces).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Closest point of the box to `p` (`p` itself when inside).
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Squared distance from `p` to the box (0 when inside). Used by the
    /// k-d tree for branch-and-bound pruning.
    #[inline]
    pub fn dist_sq(&self, p: Vec3) -> f64 {
        self.closest_point(p).dist_sq(p)
    }

    /// Grow the box so it also contains `p`.
    pub fn expand_to(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Whether two boxes overlap (inclusive).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_properties() {
        let b = Aabb::cube(200.0);
        assert_eq!(b.center(), Vec3::splat(100.0));
        assert_eq!(b.extent(), Vec3::splat(200.0));
        assert_eq!(b.volume(), 8_000_000.0);
        assert!((b.diagonal() - 200.0 * 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn from_corners_sorts() {
        let b = Aabb::from_corners(Vec3::new(1.0, -2.0, 5.0), Vec3::new(-1.0, 2.0, 3.0));
        assert_eq!(b.min(), Vec3::new(-1.0, -2.0, 3.0));
        assert_eq!(b.max(), Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    #[should_panic]
    fn new_rejects_inverted() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }

    #[test]
    fn contains_boundary_and_outside() {
        let b = Aabb::cube(1.0);
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.0001, 0.5, 0.5)));
        assert!(!b.contains(Vec3::new(0.5, -0.0001, 0.5)));
    }

    #[test]
    fn closest_point_and_dist() {
        let b = Aabb::cube(1.0);
        let inside = Vec3::splat(0.25);
        assert_eq!(b.closest_point(inside), inside);
        assert_eq!(b.dist_sq(inside), 0.0);
        let outside = Vec3::new(2.0, 0.5, 0.5);
        assert_eq!(b.closest_point(outside), Vec3::new(1.0, 0.5, 0.5));
        assert_eq!(b.dist_sq(outside), 1.0);
    }

    #[test]
    fn enclosing_points() {
        assert!(Aabb::enclosing(&[]).is_none());
        let pts = [
            Vec3::new(1.0, 5.0, 2.0),
            Vec3::new(-1.0, 0.0, 7.0),
            Vec3::ZERO,
        ];
        let b = Aabb::enclosing(&pts).unwrap();
        assert_eq!(b.min(), Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max(), Vec3::new(1.0, 5.0, 7.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn expand_and_intersect() {
        let mut b = Aabb::cube(1.0);
        b.expand_to(Vec3::new(2.0, -1.0, 0.5));
        assert!(b.contains(Vec3::new(2.0, -1.0, 0.5)));

        let a = Aabb::cube(1.0);
        let c = Aabb::from_corners(Vec3::splat(0.5), Vec3::splat(2.0));
        let d = Aabb::from_corners(Vec3::splat(1.5), Vec3::splat(2.0));
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn zero_volume_box_is_valid() {
        let b = Aabb::new(Vec3::ONE, Vec3::ONE);
        assert_eq!(b.volume(), 0.0);
        assert!(b.contains(Vec3::ONE));
        assert!(!b.contains(Vec3::ZERO));
    }
}
