//! The in-memory aggregating sink.
//!
//! [`MemorySink`] folds the event stream into a [`Registry`] as it
//! arrives, so a run's summary is available immediately after the run
//! without replaying anything. The counters mirror the simulator's own
//! `PacketCounters` exactly (both are driven by the same emission
//! sites), which is what the integration tests assert.

use crate::event::{Event, PacketFate, Phase};
use crate::observer::SimObserver;
use crate::registry::Registry;
use std::fmt::Write as _;

/// Aggregates events into metrics; render with [`MemorySink::summary`].
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    registry: Registry,
    /// `(round, alive_at_end)` per completed round.
    alive_curve: Vec<(u32, usize)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The metrics accumulated so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Alive-node count at the end of each completed round.
    pub fn alive_curve(&self) -> &[(u32, usize)] {
        &self.alive_curve
    }

    /// Total wall nanoseconds spent in a phase.
    pub fn phase_wall_ns(&self, phase: Phase) -> u64 {
        self.registry
            .histogram(&format!("phase.{}.wall_ns", phase.name()))
            .map_or(0, |h| h.sum() as u64)
    }

    /// Packet delivery rate implied by the event stream.
    pub fn pdr(&self) -> f64 {
        let generated = self.registry.counter("packets.generated");
        if generated == 0 {
            return 0.0;
        }
        self.registry.counter("packets.delivered") as f64 / generated as f64
    }

    /// Render the run summary as a text table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== run summary (qlec-obs) ==");
        out.push_str(&self.registry.render_table());
        let _ = writeln!(out, "{:<24}  {:.4}", "derived.pdr", self.pdr());
        out
    }
}

impl SimObserver for MemorySink {
    fn on_event(&mut self, event: &Event) {
        let r = &mut self.registry;
        match event {
            Event::RoundStarted { .. } => r.inc("rounds.started", 1),
            Event::HeadElected {
                round: _,
                node: _,
                residual_j,
            } => {
                r.inc("heads.elected", 1);
                r.observe("heads.residual_j", *residual_j);
            }
            Event::HeadWithdrawn { .. } => r.inc("heads.withdrawn", 1),
            Event::PacketOutcome { fate, .. } => {
                r.inc("packets.generated", 1);
                r.inc(&format!("packets.{}", fate.metric_name()), 1);
                if let PacketFate::Delivered { latency_slots } = fate {
                    r.observe("latency.slots", *latency_slots);
                }
            }
            Event::QUpdate { delta, .. } => {
                r.inc("q.updates", 1);
                r.observe("q.delta_abs", delta.abs());
            }
            Event::NodeDied { .. } => r.inc("nodes.died", 1),
            Event::FaultInjected { kind, nodes, .. } => {
                r.inc("faults.injected", 1);
                r.inc(&format!("faults.{kind}"), 1);
                r.inc("faults.nodes_affected", nodes.len() as u64);
            }
            Event::PacketRetried { .. } => r.inc("packets.retried", 1),
            // Aggregate-mode digests of events this sink already counts
            // live — replaying one into a MemorySink must not double-count.
            Event::RoundSummary { .. } => {}
            Event::PhaseTimed { phase, wall_ns, .. } => {
                r.observe(&format!("phase.{}.wall_ns", phase.name()), *wall_ns as f64);
            }
            Event::RoundEnded {
                round,
                alive,
                energy_j,
                heads,
                ..
            } => {
                r.inc("rounds.ended", 1);
                r.set_gauge("alive.last", *alive as f64);
                r.observe("energy.round_j", *energy_j);
                r.observe("heads.per_round", heads.len() as f64);
                self.alive_curve.push((*round, *alive));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut MemorySink, events: &[Event]) {
        for e in events {
            sink.on_event(e);
        }
    }

    #[test]
    fn packet_counters_mirror_fates() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[
                Event::PacketOutcome {
                    round: 0,
                    src: 1,
                    fate: PacketFate::Delivered { latency_slots: 2.0 },
                },
                Event::PacketOutcome {
                    round: 0,
                    src: 2,
                    fate: PacketFate::Delivered { latency_slots: 4.0 },
                },
                Event::PacketOutcome {
                    round: 0,
                    src: 3,
                    fate: PacketFate::DroppedLink,
                },
                Event::PacketOutcome {
                    round: 0,
                    src: 4,
                    fate: PacketFate::DroppedQueueFull,
                },
                Event::PacketOutcome {
                    round: 0,
                    src: 5,
                    fate: PacketFate::DroppedAggregate,
                },
            ],
        );
        let r = sink.registry();
        assert_eq!(r.counter("packets.generated"), 5);
        assert_eq!(r.counter("packets.delivered"), 2);
        assert_eq!(r.counter("packets.dropped.link"), 1);
        assert_eq!(r.counter("packets.dropped.queue_full"), 1);
        assert_eq!(r.counter("packets.dropped.aggregate"), 1);
        assert_eq!(r.counter("packets.dropped.dead"), 0);
        assert_eq!(r.histogram("latency.slots").unwrap().mean(), Some(3.0));
        assert!((sink.pdr() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rounds_heads_and_deaths_aggregate() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[
                Event::RoundStarted {
                    round: 0,
                    alive: 10,
                    sim_time: 0.0,
                },
                Event::HeadElected {
                    round: 0,
                    node: 1,
                    residual_j: 5.0,
                },
                Event::HeadElected {
                    round: 0,
                    node: 2,
                    residual_j: 4.0,
                },
                Event::HeadWithdrawn { round: 0, node: 3 },
                Event::NodeDied { round: 0, node: 9 },
                Event::RoundEnded {
                    round: 0,
                    alive: 9,
                    energy_j: 0.25,
                    heads: vec![1, 2],
                    residuals_j: vec![],
                },
            ],
        );
        let r = sink.registry();
        assert_eq!(r.counter("rounds.started"), 1);
        assert_eq!(r.counter("rounds.ended"), 1);
        assert_eq!(r.counter("heads.elected"), 2);
        assert_eq!(r.counter("heads.withdrawn"), 1);
        assert_eq!(r.counter("nodes.died"), 1);
        assert_eq!(r.gauge("alive.last"), Some(9.0));
        assert_eq!(sink.alive_curve(), &[(0, 9)]);
        assert_eq!(r.histogram("heads.per_round").unwrap().mean(), Some(2.0));
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[
                Event::PhaseTimed {
                    round: 0,
                    phase: Phase::Election,
                    wall_ns: 100,
                    sim_time: 0.0,
                },
                Event::PhaseTimed {
                    round: 1,
                    phase: Phase::Election,
                    wall_ns: 150,
                    sim_time: 100.0,
                },
            ],
        );
        assert_eq!(sink.phase_wall_ns(Phase::Election), 250);
        assert_eq!(sink.phase_wall_ns(Phase::Transmission), 0);
    }

    #[test]
    fn faults_and_retries_are_counted() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[
                Event::FaultInjected {
                    round: 1,
                    kind: "region-blackout".to_string(),
                    nodes: vec![2, 5, 7],
                },
                Event::FaultInjected {
                    round: 2,
                    kind: "bs-outage".to_string(),
                    nodes: vec![],
                },
                Event::PacketRetried {
                    round: 1,
                    src: 4,
                    attempt: 1,
                },
                Event::PacketRetried {
                    round: 1,
                    src: 4,
                    attempt: 2,
                },
            ],
        );
        let r = sink.registry();
        assert_eq!(r.counter("faults.injected"), 2);
        assert_eq!(r.counter("faults.region-blackout"), 1);
        assert_eq!(r.counter("faults.bs-outage"), 1);
        assert_eq!(r.counter("faults.nodes_affected"), 3);
        assert_eq!(r.counter("packets.retried"), 2);
    }

    #[test]
    fn q_updates_feed_delta_histogram() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[
                Event::QUpdate {
                    round: 0,
                    node: 1,
                    delta: -2.0,
                },
                Event::QUpdate {
                    round: 0,
                    node: 2,
                    delta: 4.0,
                },
            ],
        );
        let h = sink.registry().histogram("q.delta_abs").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn pdr_is_zero_not_nan_when_no_packets_were_generated() {
        // A zero-traffic run (λ so sparse that no packet arrives inside
        // the horizon) must summarize cleanly: 0/0 is reported as 0.0.
        let mut sink = MemorySink::new();
        assert_eq!(sink.pdr(), 0.0);
        feed(
            &mut sink,
            &[
                Event::RoundStarted {
                    round: 0,
                    alive: 10,
                    sim_time: 0.0,
                },
                Event::RoundEnded {
                    round: 0,
                    alive: 10,
                    energy_j: 0.0,
                    heads: vec![1],
                    residuals_j: vec![5.0; 10],
                },
            ],
        );
        assert_eq!(sink.pdr(), 0.0, "still no packets generated");
        assert!(sink.pdr().is_finite());
        assert!(sink.summary().contains("derived.pdr"));
    }

    #[test]
    fn summary_mentions_key_metrics() {
        let mut sink = MemorySink::new();
        feed(
            &mut sink,
            &[Event::PacketOutcome {
                round: 0,
                src: 1,
                fate: PacketFate::Delivered { latency_slots: 1.0 },
            }],
        );
        let s = sink.summary();
        assert!(s.contains("packets.generated"));
        assert!(s.contains("packets.delivered"));
        assert!(s.contains("latency.slots"));
        assert!(s.contains("derived.pdr"));
    }
}
