//! The metric registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! Names are dotted lowercase paths (`packets.dropped.link`,
//! `phase.election.wall_ns`); the full vocabulary this repo emits is
//! documented in `crates/obs/README.md`. Histograms bucket by powers of
//! two so one small fixed structure covers nanosecond timings and joule
//! energies alike.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log₂-bucketed histogram with exact count/sum/min/max.
///
/// A sample `v` lands in bucket `floor(log2(v))`, i.e. the half-open
/// range `[2^i, 2^{i+1})`; non-positive samples share a dedicated
/// underflow bucket. The mean is exact (tracked as `sum / count`), the
/// spread is bucket-resolution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// bucket exponent → sample count; `i32::MIN` is the ≤0 bucket.
    buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// The underflow bucket index (samples ≤ 0).
    pub const UNDERFLOW: i32 = i32::MIN;

    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return; // NaN would poison min/max and serve no analysis
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v > 0.0 {
            v.log2().floor() as i32
        } else {
            Self::UNDERFLOW
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket (exponent, count) pairs in ascending exponent order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the log₂
    /// buckets: nearest-rank selection of the bucket, then linear
    /// interpolation across the bucket's `[2^i, 2^{i+1})` range by the
    /// rank's position among the bucket's samples. The estimate is
    /// clamped to the exact `[min, max]`, so the extreme quantiles are
    /// exact; interior ones carry bucket resolution (a factor-of-2
    /// band). `None` when the histogram is empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Nearest rank, 1-based: the smallest r with r ≥ q·count.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&bucket, &c) in &self.buckets {
            if seen + c < rank {
                seen += c;
                continue;
            }
            if bucket == Self::UNDERFLOW {
                // All samples here are ≤ 0; the bucket has no interior
                // structure, so report the exact minimum.
                return Some(self.min);
            }
            let lo = (bucket as f64).exp2();
            let hi = ((bucket + 1) as f64).exp2();
            let frac = (rank - seen) as f64 / c as f64;
            return Some((lo + frac * (hi - lo)).clamp(self.min, self.max));
        }
        Some(self.max)
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increment a counter (created at 0 on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one histogram sample.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render everything as a fixed-width text table (one metric per
    /// line; histograms show count/mean/min/max plus bucket-resolution
    /// p50/p90/p99 estimates).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name:<width$}  {v}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "{name:<width$}  {v:.6}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "{name:<width$}  count={} mean={:.6} min={:.6} max={:.6} p50={:.6} p90={:.6} p99={:.6}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.min().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
                h.p50().unwrap_or(0.0),
                h.p90().unwrap_or(0.0),
                h.p99().unwrap_or(0.0),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), None);
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16.0);
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10.0));
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::default();
        h.observe(1.0); // [1, 2) → exponent 0
        h.observe(1.5); // [1, 2) → exponent 0
        h.observe(4.0); // [4, 8) → exponent 2
        h.observe(7.9); // [4, 8) → exponent 2
        h.observe(0.25); // [0.25, 0.5) → exponent −2
        h.observe(0.0); // underflow
        h.observe(-3.0); // underflow
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(Histogram::UNDERFLOW, 2), (-2, 1), (0, 2), (2, 2)]
        );
    }

    #[test]
    fn histogram_ignores_nan() {
        let mut h = Histogram::default();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        h.observe(2.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn quantiles_are_empty_safe_and_range_checked() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::default();
        h.observe(4.0);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
        // A single sample is every quantile (clamped to min == max).
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.p50(), Some(4.0));
        assert_eq!(h.p99(), Some(4.0));
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        // 90 samples in [1, 2), 10 samples in [1024, 2048): p50 must sit
        // in the low band, p99 in the high band, both clamped to the
        // exact extremes.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(1.5);
        }
        for _ in 0..10 {
            h.observe(1500.0);
        }
        let p50 = h.p50().unwrap();
        assert!((1.0..2.0).contains(&p50), "p50 = {p50}");
        let p99 = h.p99().unwrap();
        assert!((1024.0..=1500.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), Some(1500.0), "max quantile is exact");
        assert_eq!(
            h.quantile(0.0),
            Some(1.5),
            "min-ward quantile clamps to min"
        );
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // 4 samples all in bucket [4, 8): ranks 1..4 interpolate across
        // the bucket at 1/4, 2/4, 3/4, 4/4 — monotone in q.
        let mut h = Histogram::default();
        for v in [4.0, 5.0, 6.0, 7.0] {
            h.observe(v);
        }
        let qs: Vec<f64> = [0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "monotone: {qs:?}");
        assert!(qs.iter().all(|&v| (4.0..=7.0).contains(&v)), "{qs:?}");
    }

    #[test]
    fn quantiles_report_min_for_the_underflow_bucket() {
        let mut h = Histogram::default();
        h.observe(-3.0);
        h.observe(0.0);
        h.observe(16.0);
        // Rank 1..2 fall in the underflow bucket → exact minimum.
        assert_eq!(h.quantile(0.3), Some(-3.0));
        assert_eq!(h.quantile(1.0), Some(16.0));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        assert_eq!(r.counter("packets.delivered"), 0);
        r.inc("packets.delivered", 2);
        r.inc("packets.delivered", 3);
        assert_eq!(r.counter("packets.delivered"), 5);
        r.set_gauge("alive.last", 97.0);
        r.set_gauge("alive.last", 96.0);
        assert_eq!(r.gauge("alive.last"), Some(96.0));
        assert_eq!(r.gauge("missing"), None);
        r.observe("latency.slots", 1.5);
        r.observe("latency.slots", 2.5);
        assert_eq!(r.histogram("latency.slots").unwrap().mean(), Some(2.0));
    }

    #[test]
    fn table_lists_every_metric() {
        let mut r = Registry::new();
        r.inc("a.count", 7);
        r.set_gauge("b.gauge", 1.25);
        r.observe("c.hist", 4.0);
        let t = r.render_table();
        assert!(t.contains("a.count"));
        assert!(t.contains('7'));
        assert!(t.contains("b.gauge"));
        assert!(t.contains("c.hist"));
        assert!(t.contains("count=1"));
    }
}
