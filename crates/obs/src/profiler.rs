//! The per-thread phase profiler.
//!
//! A [`PhaseProfiler`] is attached to an [`crate::ObserverSet`] with
//! [`crate::ObserverSet::with_profiler`] and collects, out-of-band from
//! the event stream:
//!
//! * **wall** time per hierarchical phase path (`"transmission/merge"`),
//!   fed automatically from every [`crate::Event::PhaseTimed`] emission
//!   and from explicit [`PhaseProfiler::record_wall`] calls,
//! * **busy** time per `(phase path, worker slot)` pair — the simulator
//!   measures each parallel plan job on its worker and attributes it to
//!   the worker slot, so `busy` reveals fan-out imbalance that a single
//!   wall number hides,
//! * named **counters** (`merge.conflicts`, `merge.retargets`), and
//! * a per-round latency [`Histogram`], from which the report derives
//!   p50/p90/p99.
//!
//! Everything is aggregated in place (one mutex-guarded accumulator
//! state, a handful of updates per round), so profiling a 100k-node run
//! costs clock reads, not memory proportional to rounds × nodes. The
//! profiler deliberately does **not** write events: the event stream
//! stays a pure function of the simulation, so `--events -` bytes are
//! identical with and without `--profile`.

use crate::clock::{Clock, WallClock};
use crate::registry::Histogram;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Version tag of the serialized [`ProfileReport`].
pub const PROFILE_SCHEMA: &str = "qlec-profile/v1";

/// Accumulator state behind the profiler's mutex.
#[derive(Debug, Default)]
struct ProfilerState {
    /// Worker slots the run fanned out over (1 = sequential).
    threads: usize,
    /// Phase path → total wall ns.
    wall: BTreeMap<String, u64>,
    /// (phase path, worker slot) → total busy ns.
    busy: BTreeMap<(String, usize), u64>,
    /// Named counters (`merge.conflicts`, `merge.retargets`, …).
    counters: BTreeMap<String, u64>,
    /// One sample per round: the round's wall ns.
    round_wall: Histogram,
    /// Total wall across recorded rounds (exact, not bucketized).
    total_wall_ns: u64,
}

/// Collects per-phase-per-thread busy/wall times, counters, and round
/// latency quantiles for one run. Shared via `Arc`; all methods take
/// `&self`.
pub struct PhaseProfiler {
    clock: Arc<dyn Clock>,
    state: Mutex<ProfilerState>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::new()
    }
}

impl PhaseProfiler {
    /// A profiler on the process [`WallClock`].
    pub fn new() -> Self {
        PhaseProfiler::with_clock(Arc::new(WallClock::new()))
    }

    /// A profiler on a supplied clock (deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        PhaseProfiler {
            clock,
            state: Mutex::new(ProfilerState {
                threads: 1,
                ..ProfilerState::default()
            }),
        }
    }

    /// Current time on the profiler's clock. Safe to call from worker
    /// threads (no lock taken).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Record how many worker slots the run fans out over.
    pub fn set_threads(&self, threads: usize) {
        self.lock().threads = threads.max(1);
    }

    /// Add wall time to a phase path.
    pub fn record_wall(&self, path: &str, wall_ns: u64) {
        let mut s = self.lock();
        *s.wall.entry(path.to_string()).or_insert(0) += wall_ns;
    }

    /// Add busy time to a `(phase path, worker slot)` pair.
    pub fn record_busy(&self, path: &str, thread: usize, busy_ns: u64) {
        let mut s = self.lock();
        *s.busy.entry((path.to_string(), thread)).or_insert(0) += busy_ns;
    }

    /// Add to a named counter.
    pub fn inc(&self, counter: &str, by: u64) {
        let mut s = self.lock();
        *s.counters.entry(counter.to_string()).or_insert(0) += by;
    }

    /// Record one completed round's wall time (drives the report's
    /// latency quantiles).
    pub fn record_round(&self, wall_ns: u64) {
        let mut s = self.lock();
        s.round_wall.observe(wall_ns as f64);
        s.total_wall_ns += wall_ns;
    }

    /// Snapshot the accumulated data as a serializable report.
    pub fn report(&self) -> ProfileReport {
        let s = self.lock();
        let h = &s.round_wall;
        let round_latency = RoundLatency {
            rounds: h.count(),
            mean_ns: h.mean().unwrap_or(0.0),
            p50_ns: h.p50().unwrap_or(0.0),
            p90_ns: h.p90().unwrap_or(0.0),
            p99_ns: h.p99().unwrap_or(0.0),
            max_ns: h.max().unwrap_or(0.0),
        };
        // Merge wall and busy keys so a phase with only one kind of
        // measurement still gets a row.
        let mut paths: Vec<&String> = s.wall.keys().collect();
        for (path, _) in s.busy.keys() {
            if !s.wall.contains_key(path) {
                paths.push(path);
            }
        }
        paths.sort();
        paths.dedup();
        let phases: Vec<PhaseRow> = paths
            .iter()
            .map(|&path| PhaseRow {
                path: path.clone(),
                wall_ns: s.wall.get(path).copied().unwrap_or(0),
                busy: s
                    .busy
                    .range((path.clone(), 0)..=(path.clone(), usize::MAX))
                    .map(|(&(_, thread), &busy_ns)| ThreadBusy { thread, busy_ns })
                    .collect(),
            })
            .collect();
        let counters = s
            .counters
            .iter()
            .map(|(name, &value)| CounterRow {
                name: name.clone(),
                value,
            })
            .collect();
        // Thread utilization: each slot's total busy over the total
        // round wall. Busy is only ever recorded for mutually exclusive
        // spans (wall-only phases like `transmission` or
        // `transmission/qrouting` overlap their children and contribute
        // nothing here), so a plain sum does not double-count.
        let mut busy_by_thread: BTreeMap<usize, u64> = BTreeMap::new();
        for ((_, thread), busy_ns) in s.busy.iter() {
            *busy_by_thread.entry(*thread).or_insert(0) += busy_ns;
        }
        let utilization = (0..s.threads)
            .map(|thread| {
                let busy_ns = busy_by_thread.get(&thread).copied().unwrap_or(0);
                ThreadUtil {
                    thread,
                    busy_ns,
                    share: if s.total_wall_ns > 0 {
                        busy_ns as f64 / s.total_wall_ns as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        ProfileReport {
            schema: PROFILE_SCHEMA.to_string(),
            threads: s.threads,
            total_wall_ns: s.total_wall_ns,
            round_latency,
            phases,
            counters,
            utilization,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfilerState> {
        self.state.lock().expect("profiler state poisoned")
    }
}

impl std::fmt::Debug for PhaseProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        f.debug_struct("PhaseProfiler")
            .field("threads", &s.threads)
            .field("phases", &s.wall.len())
            .field("rounds", &s.round_wall.count())
            .finish()
    }
}

/// Busy time one worker slot spent in one phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThreadBusy {
    /// Worker slot (chunk index of the parallel fan-out; 0 = the
    /// simulation thread for sequential phases).
    pub thread: usize,
    /// Total busy ns this slot spent in the phase.
    pub busy_ns: u64,
}

/// One phase of the hierarchical profile tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseRow {
    /// `/`-separated phase path (`"transmission/merge"`).
    pub path: String,
    /// Total wall ns across rounds (0 when only busy was recorded).
    pub wall_ns: u64,
    /// Per-worker-slot busy breakdown, ascending by slot.
    pub busy: Vec<ThreadBusy>,
}

/// A named profiler counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterRow {
    pub name: String,
    pub value: u64,
}

/// Round-latency quantiles (bucket-resolution estimates from the round
/// wall histogram; mean and max are exact).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoundLatency {
    pub rounds: u64,
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p90_ns: f64,
    pub p99_ns: f64,
    pub max_ns: f64,
}

/// One worker slot's share of the run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThreadUtil {
    pub thread: usize,
    /// Total busy ns over all phases. Busy is recorded only for
    /// mutually exclusive spans, so the sum does not double-count.
    pub busy_ns: u64,
    /// `busy_ns / total_wall_ns`.
    pub share: f64,
}

/// A serializable snapshot of one run's profile (see [`PROFILE_SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileReport {
    pub schema: String,
    pub threads: usize,
    pub total_wall_ns: u64,
    pub round_latency: RoundLatency,
    pub phases: Vec<PhaseRow>,
    pub counters: Vec<CounterRow>,
    pub utilization: Vec<ThreadUtil>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl ProfileReport {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Fraction of reservation-classified member packets the merge's
    /// pre-pass could *not* prove clean:
    /// `merge.residue / (merge.clean_commits + merge.residue)`.
    /// `None` when the reservation pre-pass never ran (sequential
    /// merge) or classified nothing.
    pub fn residue_fraction(&self) -> Option<f64> {
        let clean = self.counter("merge.clean_commits").unwrap_or(0);
        let residue = self.counter("merge.residue").unwrap_or(0);
        let classified = clean + residue;
        (classified > 0).then(|| residue as f64 / classified as f64)
    }

    /// Render the hierarchical phase tree, counters, and the
    /// thread-utilization table as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== phase profile: {} thread slot(s), {} round(s), {:.3} s wall ==",
            self.threads,
            self.round_latency.rounds,
            self.total_wall_ns as f64 / 1e9,
        );
        let r = &self.round_latency;
        let _ = writeln!(
            out,
            "round latency: p50={:.3} ms  p90={:.3} ms  p99={:.3} ms  mean={:.3} ms  max={:.3} ms",
            r.p50_ns / 1e6,
            r.p90_ns / 1e6,
            r.p99_ns / 1e6,
            r.mean_ns / 1e6,
            r.max_ns / 1e6,
        );
        let _ = writeln!(out, "{:<32} {:>12} {:>12}", "phase", "wall ms", "busy ms");
        for row in &self.phases {
            let depth = row.path.matches('/').count();
            let name = row.path.rsplit('/').next().unwrap_or(&row.path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let busy_total: u64 = row.busy.iter().map(|b| b.busy_ns).sum();
            let _ = writeln!(
                out,
                "{label:<32} {:>12.3} {:>12.3}",
                ms(row.wall_ns),
                ms(busy_total),
            );
            if row.busy.len() > 1 {
                for b in &row.busy {
                    let sub = format!("{}  [t{}]", "  ".repeat(depth), b.thread);
                    let _ = writeln!(out, "{sub:<32} {:>12} {:>12.3}", "", ms(b.busy_ns));
                }
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<30} {}", c.name, c.value);
            }
            if let Some(f) = self.residue_fraction() {
                // Derived from merge.residue / (merge.clean_commits +
                // merge.residue) — rendered beside the raw merge
                // counters rather than stored, so the counter map stays
                // integral.
                let _ = writeln!(out, "  {:<30} {f:.3}", "merge.residue_fraction");
            }
        }
        let _ = writeln!(out, "thread utilization (busy / total wall):");
        for u in &self.utilization {
            let _ = writeln!(
                out,
                "  t{:<3} {:>6.1}%  ({:.3} s)",
                u.thread,
                u.share * 100.0,
                u.busy_ns as f64 / 1e9,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, PhaseProfiler) {
        let clock = Arc::new(ManualClock::new());
        let prof = PhaseProfiler::with_clock(clock.clone());
        (clock, prof)
    }

    #[test]
    fn aggregates_wall_busy_counters_and_rounds() {
        let (_, prof) = manual();
        prof.set_threads(2);
        prof.record_wall("transmission", 100);
        prof.record_wall("transmission", 50);
        prof.record_wall("transmission/merge", 90);
        prof.record_busy("transmission/plan", 0, 30);
        prof.record_busy("transmission/plan", 1, 40);
        prof.record_busy("transmission", 0, 150);
        prof.inc("merge.conflicts", 3);
        prof.inc("merge.conflicts", 1);
        prof.record_round(200);
        prof.record_round(400);
        let report = prof.report();
        assert_eq!(report.schema, PROFILE_SCHEMA);
        assert_eq!(report.threads, 2);
        assert_eq!(report.total_wall_ns, 600);
        assert_eq!(report.round_latency.rounds, 2);
        assert_eq!(report.round_latency.mean_ns, 300.0);
        assert_eq!(report.round_latency.max_ns, 400.0);
        let tx = report
            .phases
            .iter()
            .find(|p| p.path == "transmission")
            .unwrap();
        assert_eq!(tx.wall_ns, 150);
        let plan = report
            .phases
            .iter()
            .find(|p| p.path == "transmission/plan")
            .unwrap();
        assert_eq!(plan.wall_ns, 0, "busy-only phase still gets a row");
        assert_eq!(
            plan.busy,
            vec![
                ThreadBusy {
                    thread: 0,
                    busy_ns: 30
                },
                ThreadBusy {
                    thread: 1,
                    busy_ns: 40
                }
            ]
        );
        assert_eq!(
            report.counters,
            vec![CounterRow {
                name: "merge.conflicts".to_string(),
                value: 4
            }]
        );
    }

    #[test]
    fn utilization_sums_busy_across_phases_per_slot() {
        let (_, prof) = manual();
        prof.set_threads(2);
        prof.record_busy("transmission/merge", 0, 70);
        prof.record_busy("transmission/plan", 0, 10);
        prof.record_busy("transmission/plan", 1, 20);
        prof.record_wall("transmission", 95); // wall-only: no effect
        prof.record_round(100);
        let report = prof.report();
        assert_eq!(report.utilization.len(), 2);
        assert_eq!(report.utilization[0].busy_ns, 80);
        assert_eq!(report.utilization[0].share, 0.8);
        assert_eq!(report.utilization[1].busy_ns, 20);
        assert_eq!(report.utilization[1].share, 0.2);
    }

    #[test]
    fn render_shows_tree_counters_and_utilization() {
        let (_, prof) = manual();
        prof.set_threads(2);
        prof.record_wall("transmission", 2_000_000);
        prof.record_wall("transmission/merge", 1_500_000);
        prof.record_busy("transmission/plan", 0, 200_000);
        prof.record_busy("transmission/plan", 1, 300_000);
        prof.inc("merge.retargets", 7);
        prof.record_round(2_500_000);
        let text = prof.report().render();
        assert!(text.contains("phase profile"), "{text}");
        assert!(text.contains("round latency"), "{text}");
        assert!(text.contains("transmission"), "{text}");
        assert!(text.contains("  merge"), "children are indented: {text}");
        assert!(text.contains("[t0]"), "{text}");
        assert!(text.contains("[t1]"), "{text}");
        assert!(text.contains("merge.retargets"), "{text}");
        assert!(text.contains("thread utilization"), "{text}");
        assert!(text.contains("t1"), "{text}");
    }

    #[test]
    fn residue_fraction_derives_from_merge_counters() {
        let (_, prof) = manual();
        prof.inc("merge.clean_commits", 30);
        prof.inc("merge.residue", 70);
        let report = prof.report();
        assert_eq!(report.counter("merge.residue"), Some(70));
        assert_eq!(report.counter("nope"), None);
        assert_eq!(report.residue_fraction(), Some(0.7));
        let text = report.render();
        assert!(text.contains("merge.residue_fraction"), "{text}");
        assert!(text.contains("0.700"), "{text}");

        // Sequential merges never classify: no derived line.
        let (_, seq) = manual();
        seq.inc("merge.conflicts", 5);
        let report = seq.report();
        assert_eq!(report.residue_fraction(), None);
        assert!(!report.render().contains("residue_fraction"));
    }

    #[test]
    fn empty_profiler_reports_zeros() {
        let (_, prof) = manual();
        let report = prof.report();
        assert_eq!(report.threads, 1);
        assert_eq!(report.round_latency.rounds, 0);
        assert_eq!(report.round_latency.p50_ns, 0.0);
        assert!(report.phases.is_empty());
        assert!(report.counters.is_empty());
        assert_eq!(report.utilization.len(), 1);
        assert_eq!(report.utilization[0].share, 0.0);
        // Still renders without panicking.
        assert!(report.render().contains("0 round(s)"));
    }

    #[test]
    fn report_serializes_with_ordered_fields() {
        let (_, prof) = manual();
        prof.record_wall("election", 10);
        prof.record_round(10);
        let json = serde_json::to_string(&prof.report()).unwrap();
        assert!(json.contains("\"schema\":\"qlec-profile/v1\""), "{json}");
        assert!(json.contains("\"round_latency\""), "{json}");
        assert!(json.contains("\"phases\""), "{json}");
        assert!(json.contains("\"utilization\""), "{json}");
    }

    #[test]
    fn now_ns_tracks_the_supplied_clock() {
        let (clock, prof) = manual();
        assert_eq!(prof.now_ns(), 0);
        clock.advance(42);
        assert_eq!(prof.now_ns(), 42);
    }
}
