//! Caller-supplied wall clocks for phase-timing spans.
//!
//! The simulator never reads the system clock directly: spans ask the
//! [`Clock`] installed on the [`crate::ObserverSet`]. Production code
//! uses [`WallClock`]; tests use [`ManualClock`] for deterministic
//! durations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// Real wall time, measured from the clock's creation.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        ManualClock {
            ns: AtomicU64::new(0),
        }
    }

    /// Advance by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(42);
        c.advance(8);
        assert_eq!(c.now_ns(), 50);
    }
}
