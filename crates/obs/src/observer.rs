//! The event bus: [`SimObserver`] and the fan-out [`ObserverSet`].
//!
//! The design goal is *zero cost when disabled*: the simulator and the
//! protocols hold an [`ObserverSet`] by value and guard every emission
//! site with [`ObserverSet::is_active`] — a single branch on an empty
//! `Vec` when nothing is attached; no event is even constructed.
//!
//! An `ObserverSet` is `Clone`: clones share their sinks, the wall
//! [`Clock`], and the *simulation-time hint* — the simulator advances
//! the hint at phase boundaries so that spans emitted from lower layers
//! (e.g. the Q-router inside `qlec-core`, which does not know the slot
//! length) still stamp the correct absolute simulation time.

use crate::clock::{Clock, WallClock};
use crate::event::{Event, Phase};
use crate::profiler::PhaseProfiler;
use crate::ObsError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A consumer of simulation events. Implementations must be `Send` so
/// observed runs can ride the bench harness's seed-parallelism.
pub trait SimObserver: Send {
    /// Handle one event. Called synchronously from the simulation loop;
    /// implementations should be cheap and must not panic on malformed
    /// data (buffer errors and report them from [`SimObserver::flush`]).
    fn on_event(&mut self, event: &Event);

    /// Flush buffered output and surface any deferred error.
    fn flush(&mut self) -> Result<(), ObsError> {
        Ok(())
    }
}

/// An open span; close it with [`ObserverSet::span_end`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a span only produces an event when closed with span_end"]
pub struct SpanToken {
    start_ns: u64,
}

/// Fan-out to any number of shared sinks, plus the run's clock and
/// simulation-time hint. The default set is empty and inert.
#[derive(Clone)]
pub struct ObserverSet {
    sinks: Vec<Arc<Mutex<dyn SimObserver>>>,
    clock: Arc<dyn Clock>,
    /// Current simulation time in slots, shared across clones
    /// (bit-cast `f64`).
    sim_time_bits: Arc<AtomicU64>,
    /// Out-of-band phase profiler; every [`Event::PhaseTimed`] that
    /// passes through [`ObserverSet::emit`] also lands here, and the
    /// simulator records per-worker busy times into it directly.
    profiler: Option<Arc<PhaseProfiler>>,
}

impl Default for ObserverSet {
    fn default() -> Self {
        ObserverSet::new()
    }
}

impl ObserverSet {
    /// An empty, inert set with a [`WallClock`].
    pub fn new() -> Self {
        ObserverSet {
            sinks: Vec::new(),
            clock: Arc::new(WallClock::new()),
            sim_time_bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
            profiler: None,
        }
    }

    /// Replace the wall clock (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attach a shared [`PhaseProfiler`]. The set becomes active (spans
    /// are timed and events constructed) even with no sinks, so a
    /// profile-only run still measures every phase; the profiler never
    /// writes to the event stream itself.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<PhaseProfiler>> {
        self.profiler.as_ref()
    }

    /// Attach a shared sink. The caller keeps its `Arc` to read results
    /// back after the run.
    pub fn attach(&mut self, sink: Arc<Mutex<dyn SimObserver>>) {
        self.sinks.push(sink);
    }

    /// Whether any sink or profiler is attached. Emission sites branch
    /// on this so a run without observers never constructs an event; a
    /// profiler counts because it consumes the `PhaseTimed` emissions.
    #[inline]
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty() || self.profiler.is_some()
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the set is empty (inert).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Fan an event out to every sink. No-op when inactive. Phase
    /// timings additionally feed the attached profiler's wall
    /// accumulator (keyed by [`Phase::path`]), so sub-phase spans
    /// emitted by lower layers show up in the profile tree without
    /// those layers knowing about the profiler.
    pub fn emit(&self, event: Event) {
        if let Some(prof) = &self.profiler {
            if let Event::PhaseTimed { phase, wall_ns, .. } = &event {
                prof.record_wall(phase.path(), *wall_ns);
            }
        }
        for sink in &self.sinks {
            sink.lock()
                .expect("observer sink poisoned")
                .on_event(&event);
        }
    }

    /// Set the shared simulation-time hint (slots). The simulator calls
    /// this at phase boundaries; protocol-layer emitters read it back.
    pub fn set_sim_time(&self, slots: f64) {
        self.sim_time_bits.store(slots.to_bits(), Ordering::Relaxed);
    }

    /// The current simulation-time hint (slots).
    pub fn sim_time(&self) -> f64 {
        f64::from_bits(self.sim_time_bits.load(Ordering::Relaxed))
    }

    /// Current wall time; 0 when inactive (the clock is not consulted).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.is_active() {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// Open a timing span (reads the clock only when active).
    #[inline]
    pub fn span_start(&self) -> SpanToken {
        SpanToken {
            start_ns: self.now_ns(),
        }
    }

    /// Close a span: emits [`Event::PhaseTimed`] with the elapsed wall
    /// time and the current simulation-time hint, and returns that wall
    /// time so callers can attribute it as busy time without a second
    /// clock read. No-op (returning 0) when inactive.
    pub fn span_end(&self, token: SpanToken, round: u32, phase: Phase) -> u64 {
        if !self.is_active() {
            return 0;
        }
        let wall_ns = self.clock.now_ns().saturating_sub(token.start_ns);
        self.emit(Event::PhaseTimed {
            round,
            phase,
            wall_ns,
            sim_time: self.sim_time(),
        });
        wall_ns
    }

    /// Flush every sink, returning the first error.
    pub fn flush(&self) -> Result<(), ObsError> {
        for sink in &self.sinks {
            sink.lock().expect("observer sink poisoned").flush()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSet")
            .field("sinks", &self.sinks.len())
            .field("sim_time", &self.sim_time())
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

/// Wraps a sink and measures the *hot-thread* cost of handing events to
/// it: `hot_ns` accumulates the wall time spent inside the inner sink's
/// `on_event` — serialization + I/O for a synchronous JSON sink, clone +
/// enqueue for an async one. This is the instrument behind the bench
/// harness's sink-pipeline comparison ("instrumentation cost is itself
/// measured").
#[derive(Debug)]
pub struct MeasuredSink<S: SimObserver> {
    inner: S,
    events: u64,
    hot_ns: u64,
}

impl<S: SimObserver> MeasuredSink<S> {
    /// Wrap a sink.
    pub fn new(inner: S) -> Self {
        MeasuredSink {
            inner,
            events: 0,
            hot_ns: 0,
        }
    }

    /// Events handed to the inner sink so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Cumulative wall ns the hot thread spent inside the inner sink's
    /// `on_event`.
    pub fn hot_ns(&self) -> u64 {
        self.hot_ns
    }

    /// Borrow the inner sink.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwrap the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SimObserver> SimObserver for MeasuredSink<S> {
    fn on_event(&mut self, event: &Event) {
        let t0 = std::time::Instant::now();
        self.inner.on_event(event);
        self.hot_ns += t0.elapsed().as_nanos() as u64;
        self.events += 1;
    }

    fn flush(&mut self) -> Result<(), ObsError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// Test sink: collects events.
    #[derive(Default)]
    struct Collector {
        events: Vec<Event>,
        flushed: bool,
    }

    impl SimObserver for Collector {
        fn on_event(&mut self, event: &Event) {
            self.events.push(event.clone());
        }

        fn flush(&mut self) -> Result<(), ObsError> {
            self.flushed = true;
            Ok(())
        }
    }

    #[test]
    fn empty_set_is_inert() {
        let obs = ObserverSet::new();
        assert!(!obs.is_active());
        assert!(obs.is_empty());
        assert_eq!(obs.now_ns(), 0, "inactive sets never read the clock");
        obs.emit(Event::NodeDied { round: 0, node: 0 }); // must not panic
        obs.span_end(obs.span_start(), 0, Phase::Election); // no-op
        assert!(obs.flush().is_ok());
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let a = Arc::new(Mutex::new(Collector::default()));
        let b = Arc::new(Mutex::new(Collector::default()));
        let mut obs = ObserverSet::new();
        obs.attach(a.clone());
        obs.attach(b.clone());
        assert_eq!(obs.len(), 2);
        obs.emit(Event::NodeDied { round: 1, node: 5 });
        obs.flush().unwrap();
        for sink in [&a, &b] {
            let s = sink.lock().unwrap();
            assert_eq!(s.events.len(), 1);
            assert!(s.flushed);
        }
    }

    #[test]
    fn spans_use_the_supplied_clock_and_sim_time_hint() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(Mutex::new(Collector::default()));
        let mut obs = ObserverSet::new().with_clock(clock.clone());
        obs.attach(sink.clone());
        obs.set_sim_time(300.0);
        let token = obs.span_start();
        clock.advance(1_500);
        obs.span_end(token, 3, Phase::QRouting);
        let events = &sink.lock().unwrap().events;
        assert_eq!(
            events[0],
            Event::PhaseTimed {
                round: 3,
                phase: Phase::QRouting,
                wall_ns: 1_500,
                sim_time: 300.0
            }
        );
    }

    #[test]
    fn a_profiler_activates_the_set_and_receives_span_walls() {
        let clock = Arc::new(ManualClock::new());
        let prof = Arc::new(crate::PhaseProfiler::with_clock(clock.clone()));
        let obs = ObserverSet::new()
            .with_clock(clock.clone())
            .with_profiler(prof.clone());
        // No sinks, but the profiler makes the set active: spans are
        // timed and their walls land in the profiler.
        assert!(obs.is_active());
        assert!(obs.is_empty(), "no sinks attached");
        let token = obs.span_start();
        clock.advance(250);
        let wall = obs.span_end(token, 0, Phase::Transmission);
        assert_eq!(wall, 250, "span_end returns the measured wall");
        // Hand-rolled PhaseTimed emissions (the qlec-core style) are
        // routed to the profiler too, under the hierarchical path.
        obs.emit(Event::PhaseTimed {
            round: 0,
            phase: Phase::IndexMaintenance,
            wall_ns: 40,
            sim_time: 0.0,
        });
        let report = prof.report();
        let paths: Vec<(&str, u64)> = report
            .phases
            .iter()
            .map(|p| (p.path.as_str(), p.wall_ns))
            .collect();
        assert_eq!(paths, vec![("election/index", 40), ("transmission", 250)]);
    }

    #[test]
    fn measured_sink_counts_events_and_forwards_flush() {
        let mut sink = MeasuredSink::new(Collector::default());
        sink.on_event(&Event::NodeDied { round: 0, node: 1 });
        sink.on_event(&Event::NodeDied { round: 0, node: 2 });
        assert_eq!(sink.events(), 2);
        assert!(sink.flush().is_ok());
        assert_eq!(sink.get_ref().events.len(), 2);
        let inner = sink.into_inner();
        assert!(inner.flushed);
    }

    #[test]
    fn clones_share_sinks_and_sim_time() {
        let sink = Arc::new(Mutex::new(Collector::default()));
        let mut obs = ObserverSet::new();
        obs.attach(sink.clone());
        let clone = obs.clone();
        obs.set_sim_time(42.0);
        assert_eq!(clone.sim_time(), 42.0);
        clone.emit(Event::NodeDied { round: 0, node: 1 });
        assert_eq!(sink.lock().unwrap().events.len(), 1);
    }
}
