//! Structured observability for the QLEC reproduction.
//!
//! This crate sits *below* `qlec-net` and `qlec-core` in the dependency
//! graph and gives them one shared vocabulary for what happens during a
//! simulation:
//!
//! * **Events** ([`Event`]) — typed records of round lifecycle, head
//!   election/withdrawal, per-packet fates, Q-value updates, node
//!   deaths, and timed phases.
//! * **The bus** ([`SimObserver`], [`ObserverSet`]) — fan-out from the
//!   simulator/protocols to any number of sinks, with zero cost when no
//!   sink is attached (emission sites guard on [`ObserverSet::is_active`]
//!   and never construct an event otherwise).
//! * **Metrics** ([`Registry`], [`Histogram`]) — named counters, gauges,
//!   and log₂-bucketed histograms.
//! * **Spans** ([`Clock`], [`ObserverSet::span_start`]) — wall-clock
//!   phase timings stamped with simulation time.
//! * **Sinks** — [`JsonLinesSink`] (versioned JSON-lines streams, see
//!   [`SCHEMA`]), [`AsyncJsonLinesSink`] (the same stream produced on a
//!   dedicated writer thread behind a bounded queue), and
//!   [`MemorySink`] (in-run aggregation + summary table).
//! * **Profiling** ([`PhaseProfiler`], [`ProfileReport`]) — per-phase,
//!   per-worker-slot busy/wall accounting with round-latency quantiles,
//!   collected out-of-band from the event stream.
//!
//! The event schema and metric-name vocabulary are documented in this
//! crate's `README.md`.

#![forbid(unsafe_code)]

mod async_sink;
mod clock;
mod error;
mod event;
mod json_sink;
mod memory_sink;
mod observer;
mod procinfo;
mod profiler;
mod registry;

pub use async_sink::{
    AsyncJsonLinesSink, Backpressure, SinkStats, BATCH_EVENTS, DEFAULT_QUEUE_CAPACITY,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use error::ObsError;
pub use event::{Event, PacketFate, Phase, SCHEMA};
pub use json_sink::{read_events, EventsMode, JsonLinesSink};
pub use memory_sink::MemorySink;
pub use observer::{MeasuredSink, ObserverSet, SimObserver, SpanToken};
pub use procinfo::peak_rss_bytes;
pub use profiler::{
    CounterRow, PhaseProfiler, PhaseRow, ProfileReport, RoundLatency, ThreadBusy, ThreadUtil,
    PROFILE_SCHEMA,
};
pub use registry::{Histogram, Registry};
