//! The JSON-lines file sink and its reader.
//!
//! Stream layout (one JSON value per line):
//!
//! ```text
//! {"schema":"qlec-obs/v1"}          ← versioned header, always first
//! {"RoundStarted":{"round":0,…}}    ← one externally-tagged Event per line
//! {"HeadElected":{"round":0,…}}
//! …
//! ```
//!
//! Writes happen inside the simulation loop, where [`SimObserver::on_event`]
//! cannot return an error — the sink therefore *latches* the first I/O
//! failure and reports it from [`SimObserver::flush`] (and stops writing,
//! so a full disk costs one failed write, not millions).

use crate::event::{Event, PacketFate, SCHEMA};
use crate::observer::SimObserver;
use crate::ObsError;
use std::io::Write;

/// How a [`JsonLinesSink`] treats the three high-volume per-packet
/// events ([`Event::PacketOutcome`], [`Event::PacketRetried`],
/// [`Event::QUpdate`]). Structural events — rounds, head elections,
/// faults, node deaths — are always written in every mode, so compact
/// streams still carry the full topology/lifespan story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventsMode {
    /// Write every event (the default).
    Full,
    /// Keep every `stride`-th high-volume event (one shared counter, so
    /// a `stride` of 10 keeps ~10% of the per-packet volume). Purely
    /// counter-based — no randomness — so sampled streams are exactly as
    /// deterministic as full ones.
    Sample {
        /// Keep one high-volume event out of every `stride` (≥ 1).
        stride: u64,
    },
    /// Suppress high-volume events entirely and write one
    /// [`Event::RoundSummary`] digest per round instead, just before the
    /// round's [`Event::RoundEnded`] line.
    Aggregate,
}

impl EventsMode {
    /// Sampling mode keeping approximately `rate` (in `(0, 1]`) of the
    /// high-volume events; `rate = 1.0` degenerates to [`EventsMode::Full`].
    pub fn sample(rate: f64) -> Result<EventsMode, String> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(format!("sample rate must be in (0, 1], got {rate}"));
        }
        let stride = (1.0 / rate).ceil() as u64;
        Ok(if stride <= 1 {
            EventsMode::Full
        } else {
            EventsMode::Sample { stride }
        })
    }

    /// Parse the CLI spelling: `full`, `sample:<rate>`, or `aggregate`.
    pub fn parse(text: &str) -> Result<EventsMode, String> {
        match text {
            "full" => Ok(EventsMode::Full),
            "aggregate" => Ok(EventsMode::Aggregate),
            _ => {
                let rate = text
                    .strip_prefix("sample:")
                    .and_then(|r| r.parse::<f64>().ok())
                    .ok_or_else(|| {
                        format!("expected full, sample:<rate> or aggregate, got `{text}`")
                    })?;
                EventsMode::sample(rate)
            }
        }
    }
}

/// Running per-round totals behind [`EventsMode::Aggregate`].
#[derive(Debug, Default, Clone, Copy)]
struct RoundAgg {
    packets: u64,
    delivered: u64,
    latency_sum: f64,
    retries: u64,
    q_updates: u64,
}

fn is_high_volume(event: &Event) -> bool {
    matches!(
        event,
        Event::PacketOutcome { .. } | Event::PacketRetried { .. } | Event::QUpdate { .. }
    )
}

/// Writes events as schema-versioned JSON lines.
pub struct JsonLinesSink<W: Write + Send> {
    out: W,
    error: Option<ObsError>,
    deterministic: bool,
    mode: EventsMode,
    /// High-volume events seen so far (drives [`EventsMode::Sample`]).
    hv_seen: u64,
    agg: RoundAgg,
    /// Event lines successfully written (excludes the schema header).
    written: u64,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer and emit the schema header immediately.
    pub fn new(mut out: W) -> Result<Self, ObsError> {
        writeln!(
            out,
            "{{\"schema\":{}}}",
            serde_json::to_string(&SCHEMA.to_string())?
        )?;
        Ok(JsonLinesSink {
            out,
            error: None,
            deterministic: false,
            mode: EventsMode::Full,
            hv_seen: 0,
            agg: RoundAgg::default(),
            written: 0,
        })
    }

    /// Select how high-volume events are written (see [`EventsMode`]).
    pub fn with_mode(mut self, mode: EventsMode) -> Self {
        self.mode = mode;
        self
    }

    /// Make the stream a pure function of the simulation: skip
    /// [`Event::PhaseTimed`], the only variant carrying wall-clock
    /// measurements. With this set, the same deployment + seed (+ fault
    /// plan) writes byte-identical streams on every run — the guarantee
    /// the CLI's `--events` artifact relies on. Wall timings remain
    /// available through the metrics summary.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Consume the sink, flushing and returning the writer.
    pub fn finish(mut self) -> Result<W, ObsError> {
        self.flush()?;
        Ok(self.out)
    }

    /// Event lines successfully written so far (the schema header does
    /// not count).
    pub fn written(&self) -> u64 {
        self.written
    }

    fn write_event(&mut self, event: &Event) {
        let result = serde_json::to_string(event)
            .map_err(ObsError::from)
            .and_then(|line| writeln!(self.out, "{line}").map_err(ObsError::from));
        match result {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write + Send> SimObserver for JsonLinesSink<W> {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if self.deterministic && matches!(event, Event::PhaseTimed { .. }) {
            return;
        }
        match self.mode {
            EventsMode::Full => {}
            EventsMode::Sample { stride } => {
                if is_high_volume(event) {
                    let keep = self.hv_seen.is_multiple_of(stride);
                    self.hv_seen += 1;
                    if !keep {
                        return;
                    }
                }
            }
            EventsMode::Aggregate => match event {
                Event::PacketOutcome { fate, .. } => {
                    self.agg.packets += 1;
                    if let PacketFate::Delivered { latency_slots } = fate {
                        self.agg.delivered += 1;
                        self.agg.latency_sum += latency_slots;
                    }
                    return;
                }
                Event::PacketRetried { .. } => {
                    self.agg.retries += 1;
                    return;
                }
                Event::QUpdate { .. } => {
                    self.agg.q_updates += 1;
                    return;
                }
                Event::RoundEnded { round, .. } => {
                    let agg = std::mem::take(&mut self.agg);
                    let summary = Event::RoundSummary {
                        round: *round,
                        packets: agg.packets,
                        delivered: agg.delivered,
                        mean_latency_slots: if agg.delivered > 0 {
                            agg.latency_sum / agg.delivered as f64
                        } else {
                            0.0
                        },
                        retries: agg.retries,
                        q_updates: agg.q_updates,
                    };
                    self.write_event(&summary);
                    if self.error.is_some() {
                        return;
                    }
                }
                _ => {}
            },
        }
        self.write_event(event);
    }

    fn flush(&mut self) -> Result<(), ObsError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush().map_err(ObsError::from)
    }
}

/// Parse a JSON-lines stream back into events, validating the schema
/// header.
pub fn read_events(text: &str) -> Result<Vec<Event>, ObsError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| ObsError::Schema {
        expected: SCHEMA.to_string(),
        found: "<empty stream>".to_string(),
    })?;
    let header_value: serde::Value = serde_json::from_str(header)?;
    match header_value.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        other => {
            return Err(ObsError::Schema {
                expected: SCHEMA.to_string(),
                found: other.unwrap_or("<no schema field>").to_string(),
            })
        }
    }
    lines
        .map(|line| serde_json::from_str::<Event>(line).map_err(ObsError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketFate;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStarted {
                round: 0,
                alive: 10,
                sim_time: 0.0,
            },
            Event::PacketOutcome {
                round: 0,
                src: 3,
                fate: PacketFate::Delivered { latency_slots: 1.5 },
            },
            Event::RoundEnded {
                round: 0,
                alive: 10,
                energy_j: 0.5,
                heads: vec![1, 2],
                residuals_j: vec![5.0; 10],
            },
        ]
    }

    #[test]
    fn writes_header_then_one_event_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap();
        for e in sample_events() {
            sink.on_event(&e);
        }
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[0].contains("qlec-obs/v3"));
    }

    #[test]
    fn deterministic_mode_skips_phase_timings() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap().deterministic();
        sink.on_event(&Event::PhaseTimed {
            round: 0,
            phase: crate::event::Phase::Election,
            wall_ns: 123,
            sim_time: 0.0,
        });
        for e in sample_events() {
            sink.on_event(&e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let events = read_events(&text).unwrap();
        assert_eq!(events, sample_events(), "wall-clock events filtered out");
    }

    #[test]
    fn roundtrips_through_read_events() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap();
        let events = sample_events();
        for e in &events {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(read_events(&text).unwrap(), events);
    }

    #[test]
    fn rejects_missing_or_wrong_schema() {
        assert!(matches!(read_events(""), Err(ObsError::Schema { .. })));
        let wrong = "{\"schema\":\"qlec-obs/v999\"}\n";
        match read_events(wrong) {
            Err(ObsError::Schema { found, .. }) => assert_eq!(found, "qlec-obs/v999"),
            other => panic!("expected schema error, got {other:?}"),
        }
        let headerless = "{\"RoundStarted\":{\"round\":0,\"alive\":1,\"sim_time\":0.0}}\n";
        assert!(matches!(
            read_events(headerless),
            Err(ObsError::Schema { .. })
        ));
    }

    #[test]
    fn rejects_garbage_event_lines() {
        let text = "{\"schema\":\"qlec-obs/v3\"}\nnot json\n";
        assert!(matches!(read_events(text), Err(ObsError::Json(_))));
    }

    /// A stream of `n` packet outcomes bracketed by round start/end —
    /// the shape the mode filters care about.
    fn packet_round(n: u64) -> Vec<Event> {
        let mut events = vec![Event::RoundStarted {
            round: 0,
            alive: 10,
            sim_time: 0.0,
        }];
        for i in 0..n {
            events.push(Event::QUpdate {
                round: 0,
                node: (i % 10) as u32,
                delta: 0.5,
            });
            events.push(Event::PacketOutcome {
                round: 0,
                src: (i % 10) as u32,
                fate: if i.is_multiple_of(2) {
                    PacketFate::Delivered { latency_slots: 2.0 }
                } else {
                    PacketFate::DroppedLink
                },
            });
        }
        events.push(Event::PacketRetried {
            round: 0,
            src: 1,
            attempt: 1,
        });
        events.push(Event::RoundEnded {
            round: 0,
            alive: 10,
            energy_j: 0.5,
            heads: vec![1, 2],
            residuals_j: vec![5.0; 10],
        });
        events
    }

    #[test]
    fn events_mode_parses_cli_spellings() {
        assert_eq!(EventsMode::parse("full").unwrap(), EventsMode::Full);
        assert_eq!(
            EventsMode::parse("aggregate").unwrap(),
            EventsMode::Aggregate
        );
        assert_eq!(
            EventsMode::parse("sample:0.1").unwrap(),
            EventsMode::Sample { stride: 10 }
        );
        // rate 1.0 degenerates to Full; 1/3 rounds the stride up.
        assert_eq!(EventsMode::parse("sample:1.0").unwrap(), EventsMode::Full);
        assert_eq!(
            EventsMode::sample(1.0 / 3.0).unwrap(),
            EventsMode::Sample { stride: 3 }
        );
        for bad in ["", "Sample:0.1", "sample:", "sample:0", "sample:1.5", "x"] {
            assert!(EventsMode::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn sample_mode_keeps_structural_events_and_one_in_stride() {
        let mut sink = JsonLinesSink::new(Vec::new())
            .unwrap()
            .with_mode(EventsMode::parse("sample:0.1").unwrap());
        let events = packet_round(50);
        for e in &events {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let written = read_events(&text).unwrap();
        // Structural events always survive.
        assert!(matches!(written.first(), Some(Event::RoundStarted { .. })));
        assert!(matches!(written.last(), Some(Event::RoundEnded { .. })));
        // 101 high-volume events (50 QUpdate + 50 PacketOutcome + 1 retry)
        // at stride 10 → indices 0, 10, …, 100 survive.
        let hv = written.iter().filter(|e| is_high_volume(e)).count();
        assert_eq!(hv, 11);
        // Deterministic: a second identical pass writes identical bytes.
        let mut again = JsonLinesSink::new(Vec::new())
            .unwrap()
            .with_mode(EventsMode::Sample { stride: 10 });
        for e in &events {
            again.on_event(e);
        }
        assert_eq!(String::from_utf8(again.finish().unwrap()).unwrap(), text);
    }

    #[test]
    fn aggregate_mode_replaces_packet_events_with_round_summary() {
        let mut sink = JsonLinesSink::new(Vec::new())
            .unwrap()
            .with_mode(EventsMode::Aggregate);
        for e in packet_round(6) {
            sink.on_event(&e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let written = read_events(&text).unwrap();
        assert!(
            written.iter().all(|e| !is_high_volume(e)),
            "no per-packet events in aggregate mode"
        );
        // RoundSummary lands right before RoundEnded and carries the
        // suppressed totals: 6 packets, 3 delivered at 2.0 slots each.
        assert_eq!(
            written[written.len() - 2],
            Event::RoundSummary {
                round: 0,
                packets: 6,
                delivered: 3,
                mean_latency_slots: 2.0,
                retries: 1,
                q_updates: 6,
            }
        );
        assert!(matches!(written.last(), Some(Event::RoundEnded { .. })));
        // Counters reset per round: an empty follow-up round summarizes
        // to zeros (and a zero-delivery mean stays 0.0, not NaN).
        let mut sink = JsonLinesSink::new(Vec::new())
            .unwrap()
            .with_mode(EventsMode::Aggregate);
        sink.on_event(&Event::RoundEnded {
            round: 1,
            alive: 10,
            energy_j: 0.0,
            heads: vec![],
            residuals_j: vec![],
        });
        let written = read_events(&String::from_utf8(sink.finish().unwrap()).unwrap()).unwrap();
        assert_eq!(
            written[0],
            Event::RoundSummary {
                round: 1,
                packets: 0,
                delivered: 0,
                mean_latency_slots: 0.0,
                retries: 0,
                q_updates: 0,
            }
        );
    }

    /// A writer with a byte budget: accepts until `limit` bytes were
    /// written, then fails every further write ("disk full").
    struct FailingWriter {
        written: usize,
        limit: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= self.limit {
                return Err(std::io::Error::other("disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_and_surface_on_flush() {
        // Budget fits the header (~25 bytes) but not the first event.
        let mut sink = JsonLinesSink::new(FailingWriter {
            written: 0,
            limit: 30,
        })
        .unwrap();
        for e in sample_events() {
            sink.on_event(&e); // must not panic, even repeatedly
        }
        match sink.flush() {
            Err(ObsError::Io(msg)) => assert!(msg.contains("disk full")),
            other => panic!("expected latched Io error, got {other:?}"),
        }
        // Latched error is reported once; afterwards flush succeeds.
        assert!(sink.flush().is_ok());
    }
}
