//! The JSON-lines file sink and its reader.
//!
//! Stream layout (one JSON value per line):
//!
//! ```text
//! {"schema":"qlec-obs/v1"}          ← versioned header, always first
//! {"RoundStarted":{"round":0,…}}    ← one externally-tagged Event per line
//! {"HeadElected":{"round":0,…}}
//! …
//! ```
//!
//! Writes happen inside the simulation loop, where [`SimObserver::on_event`]
//! cannot return an error — the sink therefore *latches* the first I/O
//! failure and reports it from [`SimObserver::flush`] (and stops writing,
//! so a full disk costs one failed write, not millions).

use crate::event::{Event, SCHEMA};
use crate::observer::SimObserver;
use crate::ObsError;
use std::io::Write;

/// Writes events as schema-versioned JSON lines.
pub struct JsonLinesSink<W: Write + Send> {
    out: W,
    error: Option<ObsError>,
    deterministic: bool,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wrap a writer and emit the schema header immediately.
    pub fn new(mut out: W) -> Result<Self, ObsError> {
        writeln!(
            out,
            "{{\"schema\":{}}}",
            serde_json::to_string(&SCHEMA.to_string())?
        )?;
        Ok(JsonLinesSink {
            out,
            error: None,
            deterministic: false,
        })
    }

    /// Make the stream a pure function of the simulation: skip
    /// [`Event::PhaseTimed`], the only variant carrying wall-clock
    /// measurements. With this set, the same deployment + seed (+ fault
    /// plan) writes byte-identical streams on every run — the guarantee
    /// the CLI's `--events` artifact relies on. Wall timings remain
    /// available through the metrics summary.
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Consume the sink, flushing and returning the writer.
    pub fn finish(mut self) -> Result<W, ObsError> {
        self.flush()?;
        Ok(self.out)
    }
}

impl<W: Write + Send> SimObserver for JsonLinesSink<W> {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if self.deterministic && matches!(event, Event::PhaseTimed { .. }) {
            return;
        }
        let result = serde_json::to_string(event)
            .map_err(ObsError::from)
            .and_then(|line| writeln!(self.out, "{line}").map_err(ObsError::from));
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> Result<(), ObsError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush().map_err(ObsError::from)
    }
}

/// Parse a JSON-lines stream back into events, validating the schema
/// header.
pub fn read_events(text: &str) -> Result<Vec<Event>, ObsError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| ObsError::Schema {
        expected: SCHEMA.to_string(),
        found: "<empty stream>".to_string(),
    })?;
    let header_value: serde::Value = serde_json::from_str(header)?;
    match header_value.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        other => {
            return Err(ObsError::Schema {
                expected: SCHEMA.to_string(),
                found: other.unwrap_or("<no schema field>").to_string(),
            })
        }
    }
    lines
        .map(|line| serde_json::from_str::<Event>(line).map_err(ObsError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketFate;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStarted {
                round: 0,
                alive: 10,
                sim_time: 0.0,
            },
            Event::PacketOutcome {
                round: 0,
                src: 3,
                fate: PacketFate::Delivered { latency_slots: 1.5 },
            },
            Event::RoundEnded {
                round: 0,
                alive: 10,
                energy_j: 0.5,
                heads: vec![1, 2],
                residuals_j: vec![5.0; 10],
            },
        ]
    }

    #[test]
    fn writes_header_then_one_event_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap();
        for e in sample_events() {
            sink.on_event(&e);
        }
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[0].contains("qlec-obs/v2"));
    }

    #[test]
    fn deterministic_mode_skips_phase_timings() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap().deterministic();
        sink.on_event(&Event::PhaseTimed {
            round: 0,
            phase: crate::event::Phase::Election,
            wall_ns: 123,
            sim_time: 0.0,
        });
        for e in sample_events() {
            sink.on_event(&e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let events = read_events(&text).unwrap();
        assert_eq!(events, sample_events(), "wall-clock events filtered out");
    }

    #[test]
    fn roundtrips_through_read_events() {
        let mut sink = JsonLinesSink::new(Vec::new()).unwrap();
        let events = sample_events();
        for e in &events {
            sink.on_event(e);
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(read_events(&text).unwrap(), events);
    }

    #[test]
    fn rejects_missing_or_wrong_schema() {
        assert!(matches!(read_events(""), Err(ObsError::Schema { .. })));
        let wrong = "{\"schema\":\"qlec-obs/v999\"}\n";
        match read_events(wrong) {
            Err(ObsError::Schema { found, .. }) => assert_eq!(found, "qlec-obs/v999"),
            other => panic!("expected schema error, got {other:?}"),
        }
        let headerless = "{\"RoundStarted\":{\"round\":0,\"alive\":1,\"sim_time\":0.0}}\n";
        assert!(matches!(
            read_events(headerless),
            Err(ObsError::Schema { .. })
        ));
    }

    #[test]
    fn rejects_garbage_event_lines() {
        let text = "{\"schema\":\"qlec-obs/v2\"}\nnot json\n";
        assert!(matches!(read_events(text), Err(ObsError::Json(_))));
    }

    /// A writer with a byte budget: accepts until `limit` bytes were
    /// written, then fails every further write ("disk full").
    struct FailingWriter {
        written: usize,
        limit: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= self.limit {
                return Err(std::io::Error::other("disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_latched_and_surface_on_flush() {
        // Budget fits the header (~25 bytes) but not the first event.
        let mut sink = JsonLinesSink::new(FailingWriter {
            written: 0,
            limit: 30,
        })
        .unwrap();
        for e in sample_events() {
            sink.on_event(&e); // must not panic, even repeatedly
        }
        match sink.flush() {
            Err(ObsError::Io(msg)) => assert!(msg.contains("disk full")),
            other => panic!("expected latched Io error, got {other:?}"),
        }
        // Latched error is reported once; afterwards flush succeeds.
        assert!(sink.flush().is_ok());
    }
}
