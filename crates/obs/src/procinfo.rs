//! Process-level resource probes for the perf-trajectory harness.
//!
//! The scale bench records peak memory next to the phase wall times so
//! that a regression in either shows up in the same `BENCH_scale.json`
//! artifact. Only Linux exposes the high-water mark cheaply (the
//! `VmHWM` line of `/proc/self/status`); other platforms report `None`
//! and the bench leaves the field null.

/// Peak resident-set size of the current process in bytes (`VmHWM`).
///
/// Returns `None` off Linux or when `/proc/self/status` is unreadable
/// or malformed. The value is a process-lifetime high-water mark: it
/// only ever grows, so per-run readings in one process are cumulative.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm_kb(&status).map(|kb| kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract the `VmHWM` value (kB) from `/proc/self/status` text.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_excerpt() {
        let status = "Name:\tqlec\nVmPeak:\t  123 kB\nVmHWM:\t   20480 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(20480));
        assert_eq!(parse_vm_hwm_kb("Name:\tqlec\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_is_positive_and_monotone() {
        let before = peak_rss_bytes().expect("/proc/self/status readable");
        assert!(before > 0);
        // Touch some memory; the high-water mark must not decrease.
        let v = vec![1u8; 1 << 20];
        std::hint::black_box(&v);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "VmHWM went backwards: {before} -> {after}");
    }
}
