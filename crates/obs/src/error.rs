//! The crate-wide error type.

use std::fmt;

/// Everything that can go wrong while recording or replaying
/// observability data: I/O on a sink, (de)serialization, or a schema
/// mismatch between a stream and this crate's [`crate::SCHEMA`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// An I/O error from a file-backed sink (message of the underlying
    /// `std::io::Error`; the error itself is not `Clone`).
    Io(String),
    /// A JSON (de)serialization failure.
    Json(String),
    /// An event stream whose schema header does not match this crate.
    Schema {
        /// The schema this crate reads/writes.
        expected: String,
        /// What the stream declared (or a description of what was there).
        found: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Io(msg) => write!(f, "observability I/O error: {msg}"),
            ObsError::Json(msg) => write!(f, "observability JSON error: {msg}"),
            ObsError::Schema { expected, found } => {
                write!(f, "schema mismatch: expected {expected:?}, found {found:?}")
            }
        }
    }
}

impl std::error::Error for ObsError {}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e.to_string())
    }
}

impl From<serde::Error> for ObsError {
    fn from(e: serde::Error) -> Self {
        ObsError::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ObsError::Io("nope".into()).to_string().contains("nope"));
        assert!(ObsError::Json("bad".into()).to_string().contains("bad"));
        let s = ObsError::Schema {
            expected: "a".into(),
            found: "b".into(),
        }
        .to_string();
        assert!(s.contains("\"a\"") && s.contains("\"b\""));
    }

    #[test]
    fn converts_from_io_and_serde() {
        let io = std::io::Error::other("disk full");
        assert!(matches!(ObsError::from(io), ObsError::Io(m) if m.contains("disk full")));
        let js: Result<serde::Value, _> = serde_json::from_str("{");
        assert!(matches!(ObsError::from(js.unwrap_err()), ObsError::Json(_)));
    }
}
