//! The off-hot-thread event pipeline.
//!
//! [`AsyncJsonLinesSink`] wraps a [`JsonLinesSink`] and moves its
//! serialization and file I/O onto a dedicated writer thread behind a
//! bounded channel: the simulation thread's `on_event` cost becomes one
//! event clone plus a buffer push, regardless of how slow the
//! underlying writer is.
//!
//! Events cross the channel in batches (≤ [`BATCH_EVENTS`] each), not
//! one at a time: a `sync_channel` send pays a mutex + condvar
//! round-trip whenever the receiver is parked, and per-event sends at
//! simulation rates make the *writer* recv-bound — it falls behind pure
//! serialization, the queue fills, and block backpressure throttles the
//! hot thread to below the synchronous sink's speed. Batching amortizes
//! both endpoints' channel cost to ~nothing per event.
//!
//! ## Backpressure and determinism
//!
//! When the queue is full, the [`Backpressure`] policy decides:
//!
//! * [`Backpressure::Block`] (the default) — the hot thread waits for a
//!   slot. Every event still reaches the inner sink, in emission order,
//!   so the output stream is **byte-identical** to the synchronous
//!   sink's: the pipeline only changes *where* serialization happens,
//!   never *what* is written. This is the only policy allowed for
//!   artifact streams.
//! * [`Backpressure::Drop`] — the full batch is discarded and counted
//!   in `sink.dropped` ([`SinkStats::dropped`]). The hot thread never
//!   waits, which is right for long soak runs where losing event lines
//!   beats distorting the timing under test — but the stream is no
//!   longer a complete record, so drop mode must never feed determinism
//!   comparisons.
//!
//! [`SimObserver::flush`] is synchronous end-to-end: it enqueues a flush
//! request and blocks until the writer thread has drained everything
//! before it and flushed the inner sink, so a latched I/O error (full
//! disk) surfaces at flush exactly like the synchronous sink's.

use crate::event::Event;
use crate::json_sink::JsonLinesSink;
use crate::observer::SimObserver;
use crate::ObsError;
use serde::Serialize;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default bound of the event queue (events, not bytes). Sized to ride
/// out merge-phase emission bursts at N = 100k without engaging
/// backpressure (a queued event is ~48 bytes, so the bound is ~12 MB).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256 * 1024;

/// Most events a single channel message carries (the producer-side
/// buffer flushes to the channel at this size). Capacities smaller than
/// this shrink the batch to keep the configured bound meaningful.
pub const BATCH_EVENTS: usize = 256;

/// What the hot thread does when the writer queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait for a slot: lossless, byte-identical to the sync sink.
    #[default]
    Block,
    /// Discard the batch and count its events in
    /// [`SinkStats::dropped`]: the hot thread never waits, the stream
    /// becomes incomplete.
    Drop,
}

impl Backpressure {
    /// Stable lowercase name (`block` / `drop`).
    pub fn name(&self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::Drop => "drop",
        }
    }
}

/// Queue/throughput counters shared between the hot thread and the
/// writer thread.
#[derive(Debug, Default)]
struct SharedStats {
    enqueued: AtomicU64,
    processed: AtomicU64,
    dropped: AtomicU64,
    blocked: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
    written: AtomicU64,
}

/// A snapshot of the pipeline's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SinkStats {
    /// Events accepted onto the queue.
    pub enqueued: u64,
    /// Events the writer thread has taken off the queue.
    pub processed: u64,
    /// Events discarded under [`Backpressure::Drop`] (the `sink.dropped`
    /// counter; shedding happens a batch at a time).
    pub dropped: u64,
    /// Times the hot thread found the queue full under
    /// [`Backpressure::Block`] and had to wait (counted per blocked
    /// batch send, not per event).
    pub blocked: u64,
    /// High-water mark of the queue depth.
    pub max_depth: u64,
    /// Event lines the inner sink has written (post-filtering, so an
    /// aggregate-mode sink writes fewer lines than it processed).
    pub written_lines: u64,
}

enum Msg {
    Batch(Vec<Event>),
    Flush(SyncSender<Result<(), ObsError>>),
}

fn writer_gone() -> ObsError {
    ObsError::Io("async sink writer thread terminated".to_string())
}

/// A [`JsonLinesSink`] behind a bounded channel and a dedicated writer
/// thread (see the module docs for the backpressure/determinism
/// contract).
pub struct AsyncJsonLinesSink {
    tx: Option<SyncSender<Msg>>,
    handle: Option<JoinHandle<Result<(), ObsError>>>,
    stats: Arc<SharedStats>,
    policy: Backpressure,
    /// Producer-side buffer: events accumulate here and cross the
    /// channel as one message per `batch` events (or at flush).
    pending: Vec<Event>,
    /// Per-message event budget (`BATCH_EVENTS`, shrunk for tiny
    /// capacities).
    batch: usize,
    /// Latched local failure (writer thread died); reported once from
    /// `flush`, like the inner sink's latch.
    error: Option<ObsError>,
}

impl AsyncJsonLinesSink {
    /// Move `inner` onto a writer thread with the default queue capacity
    /// and [`Backpressure::Block`]. The inner sink's header was already
    /// written when it was constructed, so the stream layout is exactly
    /// the synchronous sink's.
    pub fn new<W: Write + Send + 'static>(inner: JsonLinesSink<W>) -> Self {
        Self::with_capacity(inner, DEFAULT_QUEUE_CAPACITY, Backpressure::Block)
    }

    /// Full-control constructor: queue bound in *events* (≥ 1, rounded
    /// up to whole batches) and backpressure policy.
    pub fn with_capacity<W: Write + Send + 'static>(
        mut inner: JsonLinesSink<W>,
        capacity: usize,
        policy: Backpressure,
    ) -> Self {
        let batch = BATCH_EVENTS.min(capacity.max(1));
        let (tx, rx) = sync_channel::<Msg>(capacity.max(1).div_ceil(batch));
        let stats = Arc::new(SharedStats::default());
        let writer_stats = stats.clone();
        let handle = std::thread::Builder::new()
            .name("qlec-obs-writer".to_string())
            .spawn(move || {
                for msg in rx {
                    match msg {
                        Msg::Batch(events) => {
                            for event in &events {
                                inner.on_event(event);
                            }
                            writer_stats
                                .depth
                                .fetch_sub(events.len() as u64, Ordering::Relaxed);
                            writer_stats
                                .processed
                                .fetch_add(events.len() as u64, Ordering::Relaxed);
                            writer_stats
                                .written
                                .store(inner.written(), Ordering::Relaxed);
                        }
                        Msg::Flush(ack) => {
                            // The receiver drains in order, so everything
                            // enqueued before this request is already in
                            // the inner sink.
                            let _ = ack.send(inner.flush());
                        }
                    }
                }
                // Channel closed: final flush so nothing sits in an OS
                // buffer when the sink is simply dropped.
                inner.flush()
            })
            .expect("spawn qlec-obs-writer thread");
        AsyncJsonLinesSink {
            tx: Some(tx),
            handle: Some(handle),
            stats,
            policy,
            pending: Vec::with_capacity(batch),
            batch,
            error: None,
        }
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> Backpressure {
        self.policy
    }

    /// Snapshot the pipeline counters.
    pub fn stats(&self) -> SinkStats {
        SinkStats {
            enqueued: self.stats.enqueued.load(Ordering::Relaxed),
            processed: self.stats.processed.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            blocked: self.stats.blocked.load(Ordering::Relaxed),
            max_depth: self.stats.max_depth.load(Ordering::Relaxed),
            written_lines: self.stats.written.load(Ordering::Relaxed),
        }
    }

    /// The `sink.dropped` counter: events discarded under
    /// [`Backpressure::Drop`].
    pub fn dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Shut the pipeline down: close the queue, join the writer thread
    /// (which drains the queue and flushes), and return the final
    /// counters or the first error.
    pub fn finish(mut self) -> Result<SinkStats, ObsError> {
        if let Some(e) = self.error.take() {
            // Still join the writer before reporting.
            let _ = self.shutdown();
            return Err(e);
        }
        self.shutdown().map(|()| self.stats())
    }

    fn shutdown(&mut self) -> Result<(), ObsError> {
        self.push_pending();
        self.tx = None;
        match self.handle.take() {
            Some(handle) => match handle.join() {
                Ok(result) => result,
                Err(_) => Err(ObsError::Io(
                    "async sink writer thread panicked".to_string(),
                )),
            },
            None => Ok(()),
        }
    }

    /// Move the producer-side buffer onto the channel, applying the
    /// backpressure policy when the queue is full. The queue-slot
    /// reservation happens *before* sending: once the message is in the
    /// channel the writer may decrement `depth` at any time, so
    /// incrementing afterwards could race below zero. On failure the
    /// reservation is rolled back.
    fn push_pending(&mut self) {
        if self.pending.is_empty() || self.error.is_some() {
            return;
        }
        let Some(tx) = &self.tx else { return };
        let len = self.pending.len() as u64;
        let batch = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch));
        let stats = &self.stats;
        let depth = stats.depth.fetch_add(len, Ordering::Relaxed) + len;
        stats.max_depth.fetch_max(depth, Ordering::Relaxed);
        match tx.try_send(Msg::Batch(batch)) {
            Ok(()) => {
                stats.enqueued.fetch_add(len, Ordering::Relaxed);
            }
            Err(TrySendError::Full(msg)) => match self.policy {
                Backpressure::Block => {
                    stats.blocked.fetch_add(1, Ordering::Relaxed);
                    if tx.send(msg).is_ok() {
                        stats.enqueued.fetch_add(len, Ordering::Relaxed);
                    } else {
                        stats.depth.fetch_sub(len, Ordering::Relaxed);
                        self.error = Some(writer_gone());
                    }
                }
                Backpressure::Drop => {
                    stats.depth.fetch_sub(len, Ordering::Relaxed);
                    stats.dropped.fetch_add(len, Ordering::Relaxed);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                stats.depth.fetch_sub(len, Ordering::Relaxed);
                self.error = Some(writer_gone());
            }
        }
    }
}

impl SimObserver for AsyncJsonLinesSink {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() || self.tx.is_none() {
            return;
        }
        // The hot-path cost: one clone and one Vec push. All channel
        // and atomic traffic happens once per batch, in `push_pending`.
        self.pending.push(event.clone());
        if self.pending.len() >= self.batch {
            self.push_pending();
        }
    }

    fn flush(&mut self) -> Result<(), ObsError> {
        self.push_pending();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let Some(tx) = &self.tx else { return Ok(()) };
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(Msg::Flush(ack_tx)).map_err(|_| writer_gone())?;
        ack_rx.recv().map_err(|_| writer_gone())?
    }
}

impl Drop for AsyncJsonLinesSink {
    fn drop(&mut self) {
        // Callers that care about the result flush (or finish) first;
        // plain drop still drains and joins so no events are lost.
        let _ = self.shutdown();
    }
}

impl std::fmt::Debug for AsyncJsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncJsonLinesSink")
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PacketFate, Phase};
    use crate::json_sink::{read_events, EventsMode};
    use std::sync::{Condvar, Mutex};

    /// A `Write` target readable after the writer thread owns the sink.
    #[derive(Clone, Default)]
    struct SharedVec(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedVec {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer the test can stall: while the gate is closed every
    /// `write` blocks, which pins the writer thread and lets the test
    /// fill the bounded queue deterministically.
    #[derive(Clone)]
    struct GatedWriter {
        open: Arc<(Mutex<bool>, Condvar)>,
        out: SharedVec,
    }

    impl GatedWriter {
        fn new() -> (Self, Arc<(Mutex<bool>, Condvar)>, SharedVec) {
            let gate = Arc::new((Mutex::new(true), Condvar::new()));
            let out = SharedVec::default();
            (
                GatedWriter {
                    open: gate.clone(),
                    out: out.clone(),
                },
                gate,
                out,
            )
        }
    }

    fn set_gate(gate: &Arc<(Mutex<bool>, Condvar)>, open: bool) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = open;
        cv.notify_all();
    }

    impl Write for GatedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let (lock, cv) = &*self.open;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.out.write(buf)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_events(n: u64) -> Vec<Event> {
        let mut events = vec![Event::RoundStarted {
            round: 0,
            alive: 10,
            sim_time: 0.0,
        }];
        for i in 0..n {
            events.push(Event::PacketOutcome {
                round: 0,
                src: (i % 10) as u32,
                fate: if i.is_multiple_of(3) {
                    PacketFate::DroppedLink
                } else {
                    PacketFate::Delivered { latency_slots: 1.5 }
                },
            });
        }
        events.push(Event::PhaseTimed {
            round: 0,
            phase: Phase::Transmission,
            wall_ns: 123,
            sim_time: 1.0,
        });
        events.push(Event::RoundEnded {
            round: 0,
            alive: 10,
            energy_j: 0.25,
            heads: vec![1, 4],
            residuals_j: vec![5.0; 10],
        });
        events
    }

    fn drive(mut sink: impl SimObserver, events: &[Event]) -> Result<(), ObsError> {
        for e in events {
            sink.on_event(e);
        }
        sink.flush()
    }

    #[test]
    fn block_mode_is_byte_identical_to_the_sync_sink() {
        let events = sample_events(200);
        for mode in [
            EventsMode::Full,
            EventsMode::Aggregate,
            EventsMode::Sample { stride: 7 },
        ] {
            for deterministic in [false, true] {
                let build = |buf: SharedVec| {
                    let sink = JsonLinesSink::new(buf).unwrap().with_mode(mode);
                    if deterministic {
                        sink.deterministic()
                    } else {
                        sink
                    }
                };
                let sync_buf = SharedVec::default();
                drive(build(sync_buf.clone()), &events).unwrap();
                let async_buf = SharedVec::default();
                // Tiny capacity so the block path actually engages.
                let async_sink = AsyncJsonLinesSink::with_capacity(
                    build(async_buf.clone()),
                    2,
                    Backpressure::Block,
                );
                drive(async_sink, &events).unwrap();
                assert_eq!(
                    *sync_buf.0.lock().unwrap(),
                    *async_buf.0.lock().unwrap(),
                    "streams diverged (mode {mode:?}, deterministic {deterministic})"
                );
            }
        }
    }

    #[test]
    fn flush_waits_for_the_queue_to_drain() {
        let buf = SharedVec::default();
        let mut sink = AsyncJsonLinesSink::new(JsonLinesSink::new(buf.clone()).unwrap());
        let events = sample_events(50);
        for e in &events {
            sink.on_event(e);
        }
        sink.flush().unwrap();
        // Everything emitted before the flush is on "disk" already.
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(read_events(&text).unwrap(), events);
        let stats = sink.stats();
        assert_eq!(stats.enqueued, events.len() as u64);
        assert_eq!(stats.processed, events.len() as u64);
        assert_eq!(stats.written_lines, events.len() as u64);
        assert_eq!(stats.dropped, 0);
        assert!(stats.max_depth >= 1);
    }

    #[test]
    fn drop_mode_sheds_load_and_counts_it() {
        let (writer, gate, out) = GatedWriter::new();
        // Header is written on construction, while the gate is open.
        let inner = JsonLinesSink::new(writer).unwrap();
        set_gate(&gate, false);
        let mut sink = AsyncJsonLinesSink::with_capacity(inner, 2, Backpressure::Drop);
        let events = sample_events(20); // 23 events total
        for e in &events {
            sink.on_event(e); // must never block
        }
        // The writer is stalled: with capacity 2 the batch size is 2,
        // so at most two 2-event batches (one in the writer's hands,
        // one queued) were accepted — the rest were shed batch-wise.
        let dropped_early = sink.dropped();
        assert!(
            dropped_early >= 17,
            "expected ≥17 drops, saw {dropped_early}"
        );
        set_gate(&gate, true);
        // `finish` pushes the trailing partial batch through the same
        // drop policy — if the writer has not drained yet, that batch
        // may legitimately be shed too.
        let stats = sink.finish().unwrap();
        assert!(stats.dropped >= dropped_early, "drops cannot un-happen");
        assert_eq!(stats.enqueued + stats.dropped, events.len() as u64);
        assert_eq!(stats.processed, stats.enqueued);
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        let written = read_events(&text).unwrap();
        assert_eq!(written.len() as u64, stats.written_lines);
        assert!(written.len() < events.len(), "some events were shed");
    }

    #[test]
    fn block_mode_waits_out_a_stall_without_losing_events() {
        let (writer, gate, out) = GatedWriter::new();
        let inner = JsonLinesSink::new(writer).unwrap();
        set_gate(&gate, false);
        let events = sample_events(20);
        let mut sink = AsyncJsonLinesSink::with_capacity(inner, 2, Backpressure::Block);
        // Producer will block on the full queue, so run it off-thread
        // and release the gate from here.
        let producer = std::thread::spawn({
            let events = events.clone();
            move || {
                for e in &events {
                    sink.on_event(e);
                }
                sink.flush().unwrap();
                sink.stats()
            }
        });
        // Let the producer hit the wall, then open the gate.
        std::thread::sleep(std::time::Duration::from_millis(50));
        set_gate(&gate, true);
        let stats = producer.join().unwrap();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.enqueued, events.len() as u64);
        assert!(stats.blocked >= 1, "the stall must have been observed");
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert_eq!(read_events(&text).unwrap(), events);
    }

    /// A writer with a byte budget, like json_sink's test helper: the
    /// header fits, the first event does not.
    struct FailingWriter {
        written: usize,
        limit: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= self.limit {
                return Err(std::io::Error::other("disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_io_errors_surface_on_flush() {
        let inner = JsonLinesSink::new(FailingWriter {
            written: 0,
            limit: 30,
        })
        .unwrap();
        let mut sink = AsyncJsonLinesSink::new(inner);
        for e in sample_events(3) {
            sink.on_event(&e);
        }
        match sink.flush() {
            Err(ObsError::Io(msg)) => assert!(msg.contains("disk full"), "{msg}"),
            other => panic!("expected latched Io error, got {other:?}"),
        }
        // Like the sync sink, the latch reports once.
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn finish_after_plain_drop_semantics() {
        // Dropping without flush still drains: the writer joins in Drop.
        let buf = SharedVec::default();
        {
            let mut sink = AsyncJsonLinesSink::new(JsonLinesSink::new(buf.clone()).unwrap());
            for e in sample_events(10) {
                sink.on_event(&e);
            }
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // 10 packets + RoundStarted + PhaseTimed + RoundEnded.
        assert_eq!(read_events(&text).unwrap().len(), 13);
    }
}
