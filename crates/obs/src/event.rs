//! The typed event vocabulary.
//!
//! Every observable thing the simulator or a protocol does is one
//! [`Event`] variant. Events are plain data — node ids are raw `u32`s
//! (this crate sits *below* `qlec-net` in the dependency graph), times
//! are simulation slots, energies are joules, wall durations are
//! nanoseconds from the run's [`crate::Clock`].
//!
//! The serialized form (see [`crate::JsonLinesSink`]) is versioned by
//! [`SCHEMA`]; any field addition or semantic change must bump it.

use serde::{Deserialize, Serialize};

/// Version tag written as the first line of every serialized event
/// stream. v2 added [`Event::FaultInjected`] and [`Event::PacketRetried`];
/// v3 added [`Event::RoundSummary`] (written by aggregate-mode sinks in
/// place of the per-packet events) and, later, the
/// [`Phase::IndexMaintenance`] span (a new enum value inside an existing
/// field — readers of v3 streams tolerate it, so no bump).
pub const SCHEMA: &str = "qlec-obs/v3";

/// The simulator phases that get timing spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Cluster-head selection (`Protocol::on_round_start`).
    Election,
    /// The Algorithm 3 HELLO redundancy-reduction broadcast (inside the
    /// improved-DEEC selection; emitted by `qlec-core`).
    Broadcast,
    /// Q-routing decisions, accumulated over a round's `choose_target`
    /// calls (emitted by `qlec-core`).
    QRouting,
    /// Member packet transmission (the sim's per-packet hop loop).
    Transmission,
    /// Data fusion and aggregate forwarding to the BS.
    Aggregation,
    /// Spatial-index maintenance: the per-round grid upkeep and head
    /// kd-index rebuild/sync (emitted by `qlec-core`; nested inside the
    /// Election span, since it runs during `on_round_start`).
    IndexMaintenance,
}

impl Phase {
    /// Stable lowercase name (used in metric keys).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Election => "election",
            Phase::Broadcast => "broadcast",
            Phase::QRouting => "qrouting",
            Phase::Transmission => "transmission",
            Phase::Aggregation => "aggregation",
            Phase::IndexMaintenance => "index",
        }
    }

    /// Hierarchical profile-tree path. Phases that run nested inside
    /// another span (the HELLO broadcast and index maintenance inside
    /// election, Q-routing inside transmission) render as children of
    /// that span in the [`crate::PhaseProfiler`] report.
    pub fn path(&self) -> &'static str {
        match self {
            Phase::Election => "election",
            Phase::Broadcast => "election/broadcast",
            Phase::QRouting => "transmission/qrouting",
            Phase::Transmission => "transmission",
            Phase::Aggregation => "aggregation",
            Phase::IndexMaintenance => "election/index",
        }
    }

    /// All phases, for exhaustive reporting.
    pub const ALL: [Phase; 6] = [
        Phase::Election,
        Phase::Broadcast,
        Phase::QRouting,
        Phase::Transmission,
        Phase::Aggregation,
        Phase::IndexMaintenance,
    ];
}

/// Terminal outcome of one generated packet. Mirrors
/// `qlec-net::PacketCounters`: every generated packet gets exactly one
/// fate, so `count(Delivered) + count(Dropped*) == generated`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PacketFate {
    /// Reached the BS; latency in slots (creation → BS, per the sim's
    /// latency convention).
    Delivered {
        /// End-to-end latency in slots.
        latency_slots: f64,
    },
    /// Lost on the radio link (final attempt).
    DroppedLink,
    /// Refused by a full cluster-head queue (final attempt).
    DroppedQueueFull,
    /// Arrived too late for the head to process this round.
    DroppedDeadline,
    /// Lost with its head's aggregate (fusion or forwarding failed).
    DroppedAggregate,
    /// The source (or its battery) died mid-transmission.
    DroppedDead,
}

impl PacketFate {
    /// Stable metric-key suffix for this fate.
    pub fn metric_name(&self) -> &'static str {
        match self {
            PacketFate::Delivered { .. } => "delivered",
            PacketFate::DroppedLink => "dropped.link",
            PacketFate::DroppedQueueFull => "dropped.queue_full",
            PacketFate::DroppedDeadline => "dropped.deadline",
            PacketFate::DroppedAggregate => "dropped.aggregate",
            PacketFate::DroppedDead => "dropped.dead",
        }
    }
}

/// One structured simulation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A round began (before head election).
    RoundStarted {
        round: u32,
        /// Alive nodes entering the round.
        alive: usize,
        /// Absolute simulation time (slots) at the round boundary.
        sim_time: f64,
    },
    /// A node is serving as cluster head this round (the *final* head
    /// set, after any withdrawal/top-up).
    HeadElected {
        round: u32,
        node: u32,
        /// The head's residual energy (J) at election.
        residual_j: f64,
    },
    /// An elected head withdrew during the Algorithm 3 HELLO
    /// redundancy reduction (a richer head was within `d_c`).
    HeadWithdrawn { round: u32, node: u32 },
    /// A generated packet reached its terminal fate.
    PacketOutcome {
        round: u32,
        /// Source node id.
        src: u32,
        fate: PacketFate,
    },
    /// One Q-routing value update settled (`V*` fixed-point backup or a
    /// head's line-15 refresh). `delta` is the signed V change.
    QUpdate { round: u32, node: u32, delta: f64 },
    /// A node's battery reached zero this round.
    NodeDied { round: u32, node: u32 },
    /// A scheduled fault became active this round (`qlec-fault`). `kind`
    /// is the fault taxonomy label (`"node-crash"`, `"battery-drain"`,
    /// `"link-degrade"`, `"region-blackout"`, `"bs-outage"`); `nodes`
    /// lists the directly affected nodes (empty for a BS outage).
    FaultInjected {
        round: u32,
        kind: String,
        nodes: Vec<u32>,
    },
    /// A packet transmission was re-attempted after a failed hop
    /// (bounded-retransmission semantics; each retry costs transmit
    /// energy). `attempt` is 1-based over the retries — the first
    /// retry after the initial attempt carries `attempt = 1`.
    PacketRetried { round: u32, src: u32, attempt: u32 },
    /// Per-round digest of the high-volume events
    /// ([`Event::PacketOutcome`], [`Event::PacketRetried`],
    /// [`Event::QUpdate`]). Written by aggregate-mode
    /// [`crate::JsonLinesSink`]s *instead of* those events, immediately
    /// before the round's [`Event::RoundEnded`] line, so compact streams
    /// still close their packet ledger per round.
    RoundSummary {
        round: u32,
        /// Packets that reached a terminal fate this round.
        packets: u64,
        /// Of those, packets delivered to the BS.
        delivered: u64,
        /// Mean delivery latency in slots (`0.0` when nothing was
        /// delivered).
        mean_latency_slots: f64,
        /// Retransmission attempts across all packets.
        retries: u64,
        /// Q-routing value updates that settled.
        q_updates: u64,
    },
    /// A timed span closed.
    PhaseTimed {
        round: u32,
        phase: Phase,
        /// Wall-clock duration from the run's [`crate::Clock`].
        wall_ns: u64,
        /// Simulation time (slots) when the span ran.
        sim_time: f64,
    },
    /// A round finished (after `Protocol::on_round_end`).
    RoundEnded {
        round: u32,
        /// Alive nodes at the end of the round.
        alive: usize,
        /// Energy consumed network-wide this round (J).
        energy_j: f64,
        /// This round's cluster heads.
        heads: Vec<u32>,
        /// Residual energy per node (id order) at the round end (J).
        residuals_j: Vec<f64>,
    },
}

impl Event {
    /// The round the event belongs to.
    pub fn round(&self) -> u32 {
        match self {
            Event::RoundStarted { round, .. }
            | Event::HeadElected { round, .. }
            | Event::HeadWithdrawn { round, .. }
            | Event::PacketOutcome { round, .. }
            | Event::QUpdate { round, .. }
            | Event::NodeDied { round, .. }
            | Event::FaultInjected { round, .. }
            | Event::PacketRetried { round, .. }
            | Event::RoundSummary { round, .. }
            | Event::PhaseTimed { round, .. }
            | Event::RoundEnded { round, .. } => *round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            Event::RoundStarted {
                round: 0,
                alive: 100,
                sim_time: 0.0,
            },
            Event::HeadElected {
                round: 0,
                node: 7,
                residual_j: 4.5,
            },
            Event::HeadWithdrawn { round: 0, node: 9 },
            Event::PacketOutcome {
                round: 1,
                src: 3,
                fate: PacketFate::Delivered {
                    latency_slots: 2.25,
                },
            },
            Event::PacketOutcome {
                round: 1,
                src: 4,
                fate: PacketFate::DroppedQueueFull,
            },
            Event::QUpdate {
                round: 1,
                node: 3,
                delta: -0.125,
            },
            Event::NodeDied { round: 2, node: 11 },
            Event::FaultInjected {
                round: 2,
                kind: "region-blackout".to_string(),
                nodes: vec![4, 8],
            },
            Event::PacketRetried {
                round: 2,
                src: 6,
                attempt: 1,
            },
            Event::RoundSummary {
                round: 2,
                packets: 40,
                delivered: 37,
                mean_latency_slots: 2.5,
                retries: 6,
                q_updates: 80,
            },
            Event::PhaseTimed {
                round: 2,
                phase: Phase::Transmission,
                wall_ns: 12_345,
                sim_time: 200.0,
            },
            Event::RoundEnded {
                round: 2,
                alive: 99,
                energy_j: 0.75,
                heads: vec![7, 12],
                residuals_j: vec![5.0, 4.875],
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e, "roundtrip failed for {json}");
        }
    }

    #[test]
    fn round_accessor_covers_all_variants() {
        assert_eq!(
            Event::RoundStarted {
                round: 3,
                alive: 1,
                sim_time: 0.0
            }
            .round(),
            3
        );
        assert_eq!(Event::NodeDied { round: 9, node: 0 }.round(), 9);
        assert_eq!(
            Event::FaultInjected {
                round: 4,
                kind: "bs-outage".to_string(),
                nodes: vec![]
            }
            .round(),
            4
        );
        assert_eq!(
            Event::PacketRetried {
                round: 7,
                src: 2,
                attempt: 2
            }
            .round(),
            7
        );
        assert_eq!(
            Event::RoundSummary {
                round: 5,
                packets: 1,
                delivered: 1,
                mean_latency_slots: 1.0,
                retries: 0,
                q_updates: 2
            }
            .round(),
            5
        );
    }

    #[test]
    fn phase_names_are_distinct() {
        let names: std::collections::BTreeSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn phase_paths_are_distinct_and_nest_under_real_parents() {
        let paths: std::collections::BTreeSet<_> = Phase::ALL.iter().map(|p| p.path()).collect();
        assert_eq!(paths.len(), Phase::ALL.len());
        for p in Phase::ALL {
            if let Some((parent, _)) = p.path().rsplit_once('/') {
                assert!(
                    Phase::ALL.iter().any(|q| q.path() == parent),
                    "{} nests under unknown parent {parent}",
                    p.path()
                );
            }
        }
    }

    #[test]
    fn fate_metric_names_are_distinct() {
        let fates = [
            PacketFate::Delivered { latency_slots: 0.0 },
            PacketFate::DroppedLink,
            PacketFate::DroppedQueueFull,
            PacketFate::DroppedDeadline,
            PacketFate::DroppedAggregate,
            PacketFate::DroppedDead,
        ];
        let names: std::collections::BTreeSet<_> = fates.iter().map(|f| f.metric_name()).collect();
        assert_eq!(names.len(), fates.len());
    }
}
