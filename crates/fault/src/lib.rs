//! # qlec-fault — deterministic scheduled fault injection
//!
//! QLEC's Q-routing (Algorithm 4) learns link success probabilities from
//! ACK ratios, so its claimed advantage over geometric clustering only
//! shows when the environment *changes under it*: heads crash, links
//! degrade mid-run, whole regions go dark. This crate supplies that
//! environment as plain data: a [`FaultPlan`] is a serde-round-trippable
//! schedule of [`FaultEvent`]s, and a [`FaultDriver`] replays it round by
//! round for the simulator.
//!
//! Everything here is **deterministic by construction** — the driver
//! holds no RNG; the same plan produces the same per-round directives on
//! every run. Combined with a seeded simulation, a faulted run is exactly
//! reproducible (the `--events -` stream of `qlec-cli` is byte-identical
//! across runs of the same plan + seed).
//!
//! This crate sits *below* `qlec-net` in the dependency graph (like
//! `qlec-obs`), so node identities are raw `u32` indexes and geometry
//! comes from [`qlec_geom`] ([`Aabb`](qlec_geom::Aabb) regions,
//! [`Vec3`](qlec_geom::Vec3) positions).
//!
//! ## Fault taxonomy
//!
//! | Event | Window | Effect |
//! |---|---|---|
//! | [`FaultEvent::NodeCrash`] | permanent from `round` | node goes offline forever |
//! | [`FaultEvent::BatteryDrain`] | one-shot at `round` | battery loses `joules` |
//! | [`FaultEvent::LinkDegrade`] | `from_round..=to_round` | pair loss rate × `loss_multiplier` |
//! | [`FaultEvent::RegionBlackout`] | `from_round..=to_round` | every node in the box offline |
//! | [`FaultEvent::BsOutage`] | `from_round..=to_round` | every hop to the BS fails |
//!
//! See `crates/fault/README.md` for a worked `plan.json` example.

#![forbid(unsafe_code)]

mod driver;
mod plan;

pub use driver::{FaultDriver, InjectedFault, RoundFaults};
pub use plan::{FaultEvent, FaultPlan, LinkEnd};
