//! The replay engine: [`FaultDriver`] turns a [`FaultPlan`] into
//! per-round directives the simulator applies.
//!
//! The driver is a pure function of (plan, round): it owns no RNG and no
//! simulation state beyond the resolved region membership, so the same
//! plan yields the same directives on every run — the determinism the
//! byte-identical event-stream guarantee rests on.

use crate::plan::{FaultEvent, FaultPlan, LinkEnd};
use qlec_geom::Vec3;
use std::collections::HashMap;

/// Sentinel pair-key index for the base station.
const BS_KEY: u32 = u32::MAX;

fn end_key(end: LinkEnd) -> u32 {
    match end {
        LinkEnd::Node(n) => n,
        LinkEnd::Bs => BS_KEY,
    }
}

/// Unordered pair key (degradation is symmetric).
fn pair_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// A fault that became active this round — raw material for the
/// observability layer's `FaultInjected` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Stable kind label (see [`FaultEvent::kind`]).
    pub kind: &'static str,
    /// Nodes directly affected (empty for a BS outage; the resolved
    /// membership for a region blackout).
    pub nodes: Vec<u32>,
}

/// Directives for one round, returned by [`FaultDriver::begin_round`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundFaults {
    /// Nodes that must be offline this round (sorted, deduplicated):
    /// every crash at or before this round plus every active blackout.
    pub offline: Vec<u32>,
    /// One-shot battery drains `(node, joules)` scheduled for exactly
    /// this round, in plan order.
    pub drains: Vec<(u32, f64)>,
    /// Whether a BS outage window covers this round.
    pub bs_down: bool,
    /// Faults whose window *starts* this round, in plan order.
    pub injected: Vec<InjectedFault>,
}

/// Replays a [`FaultPlan`] round by round.
///
/// Usage: [`FaultDriver::new`] → [`FaultDriver::bind`] (gives the driver
/// node positions so region blackouts resolve to node sets; the
/// simulator does this for you) → [`FaultDriver::begin_round`] once per
/// round, then [`FaultDriver::loss_multiplier`] / [`FaultDriver::bs_down`]
/// during the round's transmissions.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    plan: FaultPlan,
    /// Region membership per plan-event index (empty vec for non-region
    /// events); `None` until [`FaultDriver::bind`].
    region_members: Option<Vec<Vec<u32>>>,
    /// Active per-pair loss multipliers for the current round, keyed by
    /// the unordered pair (BS encoded as `u32::MAX`). Overlapping
    /// degradations on one pair multiply.
    link_mults: HashMap<(u32, u32), f64>,
    bs_down: bool,
}

impl FaultDriver {
    /// Build a driver over a validated plan.
    pub fn new(plan: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(FaultDriver {
            plan,
            region_members: None,
            link_mults: HashMap::new(),
            bs_down: false,
        })
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Resolve region blackouts against the deployment's node positions
    /// (index = node id). Idempotent; must run before the first
    /// [`FaultDriver::begin_round`] when the plan has region blackouts.
    pub fn bind(&mut self, positions: &[Vec3]) {
        let members = self
            .plan
            .events
            .iter()
            .map(|e| match e {
                FaultEvent::RegionBlackout { region, .. } => positions
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| region.contains(p))
                    .map(|(i, _)| i as u32)
                    .collect(),
                _ => Vec::new(),
            })
            .collect();
        self.region_members = Some(members);
    }

    /// Compute this round's directives and update the link/BS state the
    /// per-hop queries read. Rounds may be queried in any order; state is
    /// recomputed from the plan each call.
    pub fn begin_round(&mut self, round: u32) -> RoundFaults {
        let needs_regions = self
            .plan
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::RegionBlackout { .. }));
        assert!(
            !needs_regions || self.region_members.is_some(),
            "FaultDriver::bind must run before begin_round when the plan has region blackouts"
        );

        let mut out = RoundFaults::default();
        self.link_mults.clear();
        self.bs_down = false;

        for (i, event) in self.plan.events.iter().enumerate() {
            let starts_now = event.start_round() == round;
            match event {
                FaultEvent::NodeCrash { round: r, node } => {
                    if *r <= round {
                        out.offline.push(*node);
                    }
                }
                FaultEvent::BatteryDrain {
                    round: r,
                    node,
                    joules,
                } => {
                    if *r == round {
                        out.drains.push((*node, *joules));
                    }
                }
                FaultEvent::LinkDegrade {
                    from_round,
                    to_round,
                    a,
                    b,
                    loss_multiplier,
                } => {
                    if (*from_round..=*to_round).contains(&round) {
                        let key = pair_key(end_key(*a), end_key(*b));
                        *self.link_mults.entry(key).or_insert(1.0) *= loss_multiplier;
                    }
                }
                FaultEvent::RegionBlackout {
                    from_round,
                    to_round,
                    ..
                } => {
                    if (*from_round..=*to_round).contains(&round) {
                        let members = &self.region_members.as_ref().expect("asserted above")[i];
                        out.offline.extend_from_slice(members);
                    }
                }
                FaultEvent::BsOutage {
                    from_round,
                    to_round,
                } => {
                    if (*from_round..=*to_round).contains(&round) {
                        self.bs_down = true;
                    }
                }
            }
            if starts_now {
                let nodes = match event {
                    FaultEvent::NodeCrash { node, .. } | FaultEvent::BatteryDrain { node, .. } => {
                        vec![*node]
                    }
                    FaultEvent::LinkDegrade { a, b, .. } => [*a, *b]
                        .into_iter()
                        .filter_map(|e| match e {
                            LinkEnd::Node(n) => Some(n),
                            LinkEnd::Bs => None,
                        })
                        .collect(),
                    FaultEvent::RegionBlackout { .. } => {
                        self.region_members.as_ref().expect("asserted above")[i].clone()
                    }
                    FaultEvent::BsOutage { .. } => Vec::new(),
                };
                out.injected.push(InjectedFault {
                    kind: event.kind(),
                    nodes,
                });
            }
        }

        out.offline.sort_unstable();
        out.offline.dedup();
        out.bs_down = self.bs_down;
        out
    }

    /// The loss-rate multiplier currently active on the pair
    /// `(a, b)` — `b = None` means the base station. `1.0` when no
    /// degradation covers the pair this round.
    #[inline]
    pub fn loss_multiplier(&self, a: u32, b: Option<u32>) -> f64 {
        if self.link_mults.is_empty() {
            return 1.0;
        }
        let key = pair_key(a, b.unwrap_or(BS_KEY));
        self.link_mults.get(&key).copied().unwrap_or(1.0)
    }

    /// Whether a BS outage covers the round last passed to
    /// [`FaultDriver::begin_round`].
    #[inline]
    pub fn bs_down(&self) -> bool {
        self.bs_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::Aabb;

    fn driver(events: Vec<FaultEvent>) -> FaultDriver {
        FaultDriver::new(FaultPlan::named("t", events)).unwrap()
    }

    #[test]
    fn crash_is_permanent_and_injected_once() {
        let mut d = driver(vec![FaultEvent::NodeCrash { round: 2, node: 5 }]);
        assert_eq!(d.begin_round(1), RoundFaults::default());
        let r2 = d.begin_round(2);
        assert_eq!(r2.offline, vec![5]);
        assert_eq!(
            r2.injected,
            vec![InjectedFault {
                kind: "node-crash",
                nodes: vec![5]
            }]
        );
        let r9 = d.begin_round(9);
        assert_eq!(r9.offline, vec![5], "crash persists");
        assert!(r9.injected.is_empty(), "injected only at the crash round");
    }

    #[test]
    fn drain_fires_exactly_once() {
        let mut d = driver(vec![FaultEvent::BatteryDrain {
            round: 3,
            node: 1,
            joules: 0.25,
        }]);
        assert!(d.begin_round(2).drains.is_empty());
        assert_eq!(d.begin_round(3).drains, vec![(1, 0.25)]);
        assert!(d.begin_round(4).drains.is_empty());
    }

    #[test]
    fn link_degradation_window_and_symmetry() {
        let mut d = driver(vec![FaultEvent::LinkDegrade {
            from_round: 2,
            to_round: 4,
            a: LinkEnd::Node(3),
            b: LinkEnd::Node(8),
            loss_multiplier: 5.0,
        }]);
        d.begin_round(1);
        assert_eq!(d.loss_multiplier(3, Some(8)), 1.0, "not yet active");
        d.begin_round(2);
        assert_eq!(d.loss_multiplier(3, Some(8)), 5.0);
        assert_eq!(d.loss_multiplier(8, Some(3)), 5.0, "symmetric");
        assert_eq!(d.loss_multiplier(3, Some(9)), 1.0, "other pairs clean");
        assert_eq!(d.loss_multiplier(3, None), 1.0, "BS hop clean");
        d.begin_round(4);
        assert_eq!(d.loss_multiplier(3, Some(8)), 5.0, "inclusive window end");
        d.begin_round(5);
        assert_eq!(d.loss_multiplier(3, Some(8)), 1.0, "expired");
    }

    #[test]
    fn overlapping_degradations_multiply() {
        let mk = |m| FaultEvent::LinkDegrade {
            from_round: 0,
            to_round: 9,
            a: LinkEnd::Node(1),
            b: LinkEnd::Bs,
            loss_multiplier: m,
        };
        let mut d = driver(vec![mk(2.0), mk(3.0)]);
        d.begin_round(0);
        assert!((d.loss_multiplier(1, None) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn region_blackout_resolves_members_and_recovers() {
        let positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(90.0, 90.0, 90.0),
            Vec3::new(40.0, 40.0, 40.0),
        ];
        let mut d = driver(vec![FaultEvent::RegionBlackout {
            from_round: 1,
            to_round: 2,
            region: Aabb::new(Vec3::ZERO, Vec3::splat(50.0)),
        }]);
        d.bind(&positions);
        assert!(d.begin_round(0).offline.is_empty());
        let r1 = d.begin_round(1);
        assert_eq!(r1.offline, vec![0, 2]);
        assert_eq!(r1.injected[0].kind, "region-blackout");
        assert_eq!(r1.injected[0].nodes, vec![0, 2]);
        let r2 = d.begin_round(2);
        assert_eq!(r2.offline, vec![0, 2], "still dark inside the window");
        assert!(r2.injected.is_empty());
        assert!(d.begin_round(3).offline.is_empty(), "nodes recover");
    }

    #[test]
    #[should_panic(expected = "bind must run")]
    fn unbound_region_plan_panics() {
        let mut d = driver(vec![FaultEvent::RegionBlackout {
            from_round: 0,
            to_round: 1,
            region: Aabb::cube(10.0),
        }]);
        let _ = d.begin_round(0);
    }

    #[test]
    fn bs_outage_window() {
        let mut d = driver(vec![FaultEvent::BsOutage {
            from_round: 2,
            to_round: 3,
        }]);
        let r1 = d.begin_round(1);
        assert!(!r1.bs_down && !d.bs_down());
        let r2 = d.begin_round(2);
        assert!(r2.bs_down && d.bs_down());
        assert_eq!(r2.injected[0].kind, "bs-outage");
        assert!(r2.injected[0].nodes.is_empty());
        assert!(!d.begin_round(4).bs_down);
    }

    #[test]
    fn directives_are_deterministic_across_replays() {
        let events = vec![
            FaultEvent::NodeCrash { round: 1, node: 9 },
            FaultEvent::RegionBlackout {
                from_round: 0,
                to_round: 5,
                region: Aabb::cube(100.0),
            },
            FaultEvent::BsOutage {
                from_round: 3,
                to_round: 3,
            },
        ];
        let positions: Vec<Vec3> = (0..20).map(|i| Vec3::splat(i as f64 * 10.0)).collect();
        let run = || {
            let mut d = driver(events.clone());
            d.bind(&positions);
            (0..8).map(|r| d.begin_round(r)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn invalid_plan_is_rejected() {
        assert!(FaultDriver::new(FaultPlan::named(
            "bad",
            vec![FaultEvent::BsOutage {
                from_round: 5,
                to_round: 1
            }]
        ))
        .is_err());
    }
}
