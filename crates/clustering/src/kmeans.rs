//! k-means clustering (k-means++ seeding + Lloyd iterations).
//!
//! The paper's second comparator is "classic k-means clustering" and its
//! Definition 2 reduction argument rests on the k-means problem: "divide
//! \[the network\] into k subspaces and minimize the average distance to
//! the nearest center". This is the textbook algorithm over node
//! positions:
//!
//! * seeding by k-means++ (D² sampling) for robustness,
//! * Lloyd iterations until the relative inertia improvement drops below
//!   a tolerance or the iteration cap is hit,
//! * empty clusters are re-seeded from the point currently farthest from
//!   its centroid (keeps exactly `k` clusters alive).

use qlec_geom::Vec3;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centroids (`k` of them).
    pub centroids: Vec<Vec3>,
    /// Cluster index of every input point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centroids (the k-means
    /// objective; the paper's `d_toCH` criterion in aggregate).
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Stop when inertia improves by less than this relative amount.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }
}

/// k-means++ seeding: the first centroid uniform, each next one sampled
/// with probability proportional to the squared distance to the nearest
/// centroid chosen so far.
pub fn kmeans_pp_init<R: Rng + ?Sized>(rng: &mut R, points: &[Vec3], k: usize) -> Vec<Vec3> {
    assert!(k >= 1, "k must be at least 1");
    assert!(!points.is_empty(), "cannot seed on an empty point set");
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|p| p.dist_sq(centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centroids: any point works.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut t = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if t < w {
                    chosen = i;
                    break;
                }
                t -= w;
            }
            points[chosen]
        };
        centroids.push(next);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.dist_sq(next));
        }
    }
    centroids
}

/// Index of the centroid nearest to `p` (ties to the lowest index).
pub fn nearest_centroid(centroids: &[Vec3], p: Vec3) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = c.dist_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Run k-means on `points` with `k` clusters.
///
/// ```
/// use qlec_clustering::kmeans::{kmeans, KMeansConfig};
/// use qlec_geom::Vec3;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let pts = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0),
///                Vec3::new(100.0, 0.0, 0.0), Vec3::new(101.0, 0.0, 0.0)];
/// let res = kmeans(&mut rng, &pts, 2, &KMeansConfig::default());
/// assert_eq!(res.assignment[0], res.assignment[1]);
/// assert_ne!(res.assignment[0], res.assignment[2]);
/// ```
///
/// # Panics
/// Panics when `points` is empty or `k == 0`. When `k >= points.len()`
/// every point becomes its own centroid (inertia 0).
pub fn kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    points: &[Vec3],
    k: usize,
    cfg: &KMeansConfig,
) -> KMeansResult {
    assert!(k >= 1, "k must be at least 1");
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    let k = k.min(points.len());
    let mut centroids = kmeans_pp_init(rng, points, k);
    let mut assignment = vec![0usize; points.len()];
    let mut prev_inertia = f64::INFINITY;
    let mut iterations = 0;
    let mut inertia = 0.0;

    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        // Assignment step.
        inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let c = nearest_centroid(&centroids, *p);
            assignment[i] = c;
            inertia += p.dist_sq(centroids[c]);
        }
        // Update step.
        let mut sums = vec![Vec3::ZERO; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            sums[assignment[i]] += *p;
            counts[assignment[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            } else {
                // Empty cluster: re-seed from the worst-served point.
                let (worst, _) = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.dist_sq(centroids[nearest_centroid(&centroids, **a)])
                            .total_cmp(&b.dist_sq(centroids[nearest_centroid(&centroids, **b)]))
                    })
                    .expect("points is non-empty");
                centroids[c] = points[worst];
            }
        }
        // Convergence on relative inertia improvement.
        if prev_inertia.is_finite() {
            let denom = prev_inertia.max(f64::EPSILON);
            if (prev_inertia - inertia) / denom < cfg.tolerance {
                break;
            }
        }
        prev_inertia = inertia;
    }

    // Final assignment against the last centroids.
    let mut final_inertia = 0.0;
    for (i, p) in points.iter().enumerate() {
        let c = nearest_centroid(&centroids, *p);
        assignment[i] = c;
        final_inertia += p.dist_sq(centroids[c]);
    }
    let _ = inertia;

    KMeansResult {
        centroids,
        assignment,
        inertia: final_inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_geom::sample::uniform_in_ball;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng, centers: &[Vec3], per: usize, radius: f64) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for &c in centers {
            for _ in 0..per {
                pts.push(uniform_in_ball(rng, c, radius));
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(100.0, 0.0, 0.0),
            Vec3::new(0.0, 100.0, 100.0),
        ];
        let pts = blobs(&mut rng, &centers, 50, 5.0);
        let res = kmeans(&mut rng, &pts, 3, &KMeansConfig::default());
        // Each true center must have a found centroid within the blob
        // radius.
        for c in centers {
            let d = res
                .centroids
                .iter()
                .map(|f| f.dist(c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 5.0, "no centroid near {c:?} (nearest at {d})");
        }
        // Points of a blob share an assignment.
        for b in 0..3 {
            let first = res.assignment[b * 50];
            assert!(res.assignment[b * 50..(b + 1) * 50]
                .iter()
                .all(|&a| a == first));
        }
    }

    #[test]
    fn inertia_nonincreasing_with_more_clusters() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = blobs(&mut rng, &[Vec3::ZERO, Vec3::splat(50.0)], 100, 20.0);
        // Best of a few restarts to dodge local minima flakiness.
        let best = |k: usize, rng: &mut StdRng| {
            (0..5)
                .map(|_| kmeans(rng, &pts, k, &KMeansConfig::default()).inertia)
                .fold(f64::INFINITY, f64::min)
        };
        let i2 = best(2, &mut rng);
        let i4 = best(4, &mut rng);
        let i8 = best(8, &mut rng);
        assert!(i4 <= i2 + 1e-9, "i4 {i4} > i2 {i2}");
        assert!(i8 <= i4 + 1e-9, "i8 {i8} > i4 {i4}");
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Vec3> = (0..10).map(|i| Vec3::splat(i as f64 * 7.0)).collect();
        let res = kmeans(&mut rng, &pts, 10, &KMeansConfig::default());
        assert!(res.inertia < 1e-9, "inertia {}", res.inertia);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = vec![Vec3::ZERO, Vec3::ONE];
        let res = kmeans(&mut rng, &pts, 10, &KMeansConfig::default());
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(4.0, 0.0, 0.0),
        ];
        let res = kmeans(&mut rng, &pts, 1, &KMeansConfig::default());
        assert!(res.centroids[0].dist(Vec3::new(2.0, 0.0, 0.0)) < 1e-9);
        assert_eq!(res.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn identical_points_are_fine() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = vec![Vec3::ONE; 20];
        let res = kmeans(&mut rng, &pts, 3, &KMeansConfig::default());
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts = blobs(&mut rng, &[Vec3::ZERO, Vec3::splat(80.0)], 40, 10.0);
        let res = kmeans(&mut rng, &pts, 2, &KMeansConfig::default());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(res.assignment[i], nearest_centroid(&res.centroids, *p));
        }
    }

    #[test]
    #[should_panic]
    fn empty_points_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        kmeans(&mut rng, &[], 2, &KMeansConfig::default());
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        kmeans(&mut rng, &[Vec3::ZERO], 0, &KMeansConfig::default());
    }
}
