//! Distance-band hierarchies for the FCM baseline.
//!
//! The FCM-based scheme of \[14\] "divides the WSN into different
//! hierarchies based on the distance to the BS and a dynamic multi-hop
//! routing algorithm is designed": a head in band `h` forwards its
//! aggregate to a head in band `h−1` (closer to the BS), and only band-0
//! heads talk to the BS directly. §5.2 attributes the FCM baseline's
//! congested-packet losses to exactly this multi-hop behaviour ("it takes
//! multi-hops to transmit a packet to the BS under this model").

use qlec_geom::Vec3;
use serde::{Deserialize, Serialize};

/// Equal-width distance bands around the base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Number of bands (≥ 1).
    pub levels: usize,
    /// Outer radius of the farthest band (everything beyond is clamped
    /// into the last band).
    pub max_radius: f64,
}

impl Hierarchy {
    /// Construct with validation.
    pub fn new(levels: usize, max_radius: f64) -> Self {
        assert!(levels >= 1, "hierarchy needs at least one level");
        assert!(
            max_radius > 0.0 && max_radius.is_finite(),
            "max_radius must be positive"
        );
        Hierarchy { levels, max_radius }
    }

    /// Band index of a point at distance `d` from the BS: band 0 is the
    /// innermost (closest to the BS), `levels − 1` the outermost.
    pub fn level_of_distance(&self, d: f64) -> usize {
        debug_assert!(d >= 0.0);
        let width = self.max_radius / self.levels as f64;
        ((d / width) as usize).min(self.levels - 1)
    }

    /// Band index of a position relative to `bs`.
    pub fn level_of(&self, pos: Vec3, bs: Vec3) -> usize {
        self.level_of_distance(pos.dist(bs))
    }

    /// Among `candidates` (position per candidate), find the index of the
    /// best next-hop relay for a sender in `from_level` at `from_pos`:
    /// the nearest candidate in a strictly lower band. `None` when the
    /// sender is already in band 0 or no lower-band candidate exists (the
    /// caller then goes direct to the BS).
    pub fn next_hop(
        &self,
        from_pos: Vec3,
        from_level: usize,
        bs: Vec3,
        candidates: &[(usize, Vec3)],
    ) -> Option<usize> {
        if from_level == 0 {
            return None;
        }
        candidates
            .iter()
            .filter(|(_, p)| self.level_of(*p, bs) < from_level)
            .min_by(|(_, a), (_, b)| a.dist_sq(from_pos).total_cmp(&b.dist_sq(from_pos)))
            .map(|&(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_partition_distance() {
        let h = Hierarchy::new(3, 90.0);
        assert_eq!(h.level_of_distance(0.0), 0);
        assert_eq!(h.level_of_distance(29.9), 0);
        assert_eq!(h.level_of_distance(30.0), 1);
        assert_eq!(h.level_of_distance(59.9), 1);
        assert_eq!(h.level_of_distance(60.0), 2);
        // Beyond the max radius clamps into the outermost band.
        assert_eq!(h.level_of_distance(500.0), 2);
    }

    #[test]
    fn level_of_position() {
        let h = Hierarchy::new(2, 100.0);
        let bs = Vec3::splat(50.0);
        assert_eq!(h.level_of(Vec3::splat(50.0), bs), 0);
        assert_eq!(h.level_of(Vec3::new(140.0, 50.0, 50.0), bs), 1);
    }

    #[test]
    fn next_hop_picks_nearest_lower_band() {
        let h = Hierarchy::new(3, 90.0);
        let bs = Vec3::ZERO;
        // Sender in band 2 (d = 80), candidates in bands 0, 1, 1.
        let from = Vec3::new(80.0, 0.0, 0.0);
        let candidates = vec![
            (7usize, Vec3::new(10.0, 0.0, 0.0)), // band 0, far from sender
            (8, Vec3::new(45.0, 0.0, 0.0)),      // band 1, nearest
            (9, Vec3::new(0.0, 45.0, 0.0)),      // band 1, farther
        ];
        assert_eq!(h.next_hop(from, 2, bs, &candidates), Some(8));
    }

    #[test]
    fn band_zero_goes_direct() {
        let h = Hierarchy::new(3, 90.0);
        assert_eq!(
            h.next_hop(Vec3::ZERO, 0, Vec3::ZERO, &[(1, Vec3::ONE)]),
            None
        );
    }

    #[test]
    fn no_lower_band_candidate_goes_direct() {
        let h = Hierarchy::new(3, 90.0);
        let bs = Vec3::ZERO;
        let from = Vec3::new(80.0, 0.0, 0.0); // band 2
                                              // Only candidates in the same band.
        let candidates = vec![(1usize, Vec3::new(0.0, 80.0, 0.0))];
        assert_eq!(h.next_hop(from, 2, bs, &candidates), None);
    }

    #[test]
    #[should_panic]
    fn zero_levels_rejected() {
        Hierarchy::new(0, 10.0);
    }
}
