//! Simulator protocols wrapping the k-means and FCM clusterers — the two
//! comparators of Fig. 3.

use crate::fcm::{fcm, FcmConfig};
use crate::hierarchy::Hierarchy;
use crate::kmeans::{kmeans, KMeansConfig};
use qlec_net::protocol::{install_heads, Protocol};
use qlec_net::{Network, NodeId, Target};
use rand::RngCore;
use std::collections::HashMap;

/// "Classic k-means clustering" (§5): positions-only clustering, head =
/// the member nearest each centroid, members single-hop to their cluster's
/// head, heads direct to the BS.
///
/// The paper's critique this protocol embodies: "k-means clusters nodes
/// based on the distance between them" — residual energy plays no role,
/// so drained nodes keep getting re-elected as heads.
#[derive(Debug, Clone)]
pub struct KMeansProtocol {
    /// Cluster count.
    pub k: usize,
    cfg: KMeansConfig,
    /// Member → this round's head.
    member_head: HashMap<NodeId, NodeId>,
}

impl KMeansProtocol {
    /// k-means with `k` clusters.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeansProtocol {
            k,
            cfg: KMeansConfig::default(),
            member_head: HashMap::new(),
        }
    }
}

impl Protocol for KMeansProtocol {
    fn name(&self) -> &str {
        "k-means"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.member_head.clear();
        let alive: Vec<NodeId> = net.alive_ids().collect();
        if alive.is_empty() {
            return Vec::new();
        }
        let positions: Vec<_> = alive.iter().map(|&id| net.node(id).pos).collect();
        let k = self.k.min(alive.len());
        let res = kmeans(rng, &positions, k, &self.cfg);

        // Head of each cluster: the member geometrically nearest the
        // centroid (energy deliberately ignored — that is the baseline's
        // weakness).
        let mut heads: Vec<Option<NodeId>> = vec![None; k];
        let mut best_d = vec![f64::INFINITY; k];
        for (i, &id) in alive.iter().enumerate() {
            let c = res.assignment[i];
            let d = positions[i].dist_sq(res.centroids[c]);
            if d < best_d[c] {
                best_d[c] = d;
                heads[c] = Some(id);
            }
        }
        for (i, &id) in alive.iter().enumerate() {
            if let Some(h) = heads[res.assignment[i]] {
                if h != id {
                    self.member_head.insert(id, h);
                }
            }
        }
        let heads: Vec<NodeId> = heads.into_iter().flatten().collect();
        install_heads(net, round, &heads);
        heads
    }

    fn choose_target(
        &mut self,
        _net: &Network,
        src: NodeId,
        _heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        self.member_head
            .get(&src)
            .copied()
            .map_or(Target::Bs, Target::Head)
    }
}

/// The FCM-based scheme of \[14\]: fuzzy C-means cluster formation,
/// energy-aware head choice (membership × residual energy), and
/// hierarchy-based multi-hop aggregate routing toward the BS.
#[derive(Debug, Clone)]
pub struct FcmProtocol {
    /// Cluster count.
    pub c: usize,
    /// Number of hierarchy levels (distance bands around the BS).
    pub levels: usize,
    cfg: FcmConfig,
    member_head: HashMap<NodeId, NodeId>,
}

impl FcmProtocol {
    /// FCM with `c` clusters and the default 3 hierarchy levels.
    pub fn new(c: usize) -> Self {
        Self::with_levels(c, 3)
    }

    /// FCM with an explicit hierarchy depth.
    pub fn with_levels(c: usize, levels: usize) -> Self {
        assert!(c > 0, "c must be positive");
        assert!(levels >= 1, "levels must be at least 1");
        FcmProtocol {
            c,
            levels,
            cfg: FcmConfig::default(),
            member_head: HashMap::new(),
        }
    }

    fn hierarchy(&self, net: &Network) -> Hierarchy {
        let max_r = net
            .arena()
            .positions()
            .iter()
            .map(|p| p.dist(net.bs_pos()))
            .fold(0.0f64, f64::max)
            .max(1e-9);
        Hierarchy::new(self.levels, max_r)
    }
}

impl Protocol for FcmProtocol {
    fn name(&self) -> &str {
        "fcm"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        self.member_head.clear();
        let alive: Vec<NodeId> = net.alive_ids().collect();
        if alive.is_empty() {
            return Vec::new();
        }
        let positions: Vec<_> = alive.iter().map(|&id| net.node(id).pos).collect();
        let c = self.c.min(alive.len());
        let res = fcm(rng, &positions, c, &self.cfg);

        // Head of each fuzzy cluster: maximize membership × residual
        // energy (\[14\] "employs the concept of maximizing residual
        // energy when choosing cluster heads").
        let mut heads: Vec<Option<NodeId>> = vec![None; res.c];
        let mut best_score = vec![f64::NEG_INFINITY; res.c];
        for (i, &id) in alive.iter().enumerate() {
            let e = net.node(id).residual();
            for j in 0..res.c {
                let score = res.membership(i, j) * e;
                if score > best_score[j] {
                    best_score[j] = score;
                    heads[j] = Some(id);
                }
            }
        }
        let hard = res.hard_assignment();
        for (i, &id) in alive.iter().enumerate() {
            if let Some(h) = heads[hard[i]] {
                if h != id {
                    self.member_head.insert(id, h);
                }
            }
        }
        let mut heads: Vec<NodeId> = heads.into_iter().flatten().collect();
        heads.sort_unstable();
        heads.dedup();
        install_heads(net, round, &heads);
        heads
    }

    fn choose_target(
        &mut self,
        _net: &Network,
        src: NodeId,
        _heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        self.member_head
            .get(&src)
            .copied()
            .map_or(Target::Bs, Target::Head)
    }

    fn aggregate_route(&mut self, net: &Network, head: NodeId, heads: &[NodeId]) -> Vec<Target> {
        // Hierarchy multi-hop: relay through the nearest lower-band head
        // until band 0, then the BS. Levels strictly decrease along the
        // route, so it always terminates.
        let h = self.hierarchy(net);
        let bs = net.bs_pos();
        let mut route = Vec::new();
        let mut cur = head;
        loop {
            let level = h.level_of(net.node(cur).pos, bs);
            if level == 0 {
                break;
            }
            let candidates: Vec<(usize, _)> = heads
                .iter()
                .enumerate()
                .filter(|&(_, &id)| id != cur && net.node(id).is_alive())
                .map(|(i, &id)| (i, net.node(id).pos))
                .collect();
            match h.next_hop(net.node(cur).pos, level, bs, &candidates) {
                Some(idx) => {
                    let relay = heads[idx];
                    route.push(Target::Head(relay));
                    cur = relay;
                }
                None => break, // no lower-band relay: go direct
            }
        }
        route.push(Target::Bs);
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::{NetworkBuilder, SimConfig, Simulator};
    use qlec_radio::link::{AnyLink, IdealLink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, n: usize) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new()
            .link(AnyLink::Ideal(IdealLink))
            .uniform_cube(&mut rng, n, 200.0, 5.0)
    }

    #[test]
    fn kmeans_protocol_elects_k_heads() {
        let mut n = net(1, 60);
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = KMeansProtocol::new(5);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        assert_eq!(heads.len(), 5);
        // Every non-head member has a routing entry.
        for id in n.alive_ids() {
            if !heads.contains(&id) {
                assert!(matches!(
                    p.choose_target(&n, id, &heads, &mut rng),
                    Target::Head(_)
                ));
            }
        }
    }

    #[test]
    fn kmeans_members_route_within_their_cluster() {
        let mut n = net(3, 60);
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = KMeansProtocol::new(4);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        // Routing targets must be heads of this round.
        for id in n.alive_ids() {
            if let Target::Head(h) = p.choose_target(&n, id, &heads, &mut rng) {
                assert!(heads.contains(&h), "{id} routed to non-head {h}");
            }
        }
    }

    #[test]
    fn kmeans_protocol_full_run_conserves_packets() {
        let n = net(5, 50);
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 4;
        let report = Simulator::builder(n)
            .config(cfg)
            .build()
            .run(&mut KMeansProtocol::new(5), &mut rng);
        assert!(report.totals.is_conserved());
        assert!(report.pdr() > 0.8, "PDR {}", report.pdr());
    }

    #[test]
    fn fcm_protocol_elects_heads_and_routes() {
        let mut n = net(7, 60);
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = FcmProtocol::new(5);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        assert!(!heads.is_empty() && heads.len() <= 5);
        for id in n.alive_ids() {
            if !heads.contains(&id) {
                let t = p.choose_target(&n, id, &heads, &mut rng);
                if let Target::Head(h) = t {
                    assert!(heads.contains(&h));
                }
            }
        }
    }

    #[test]
    fn fcm_heads_have_high_energy() {
        // Drain most nodes; FCM's energy-weighted head choice must prefer
        // the full ones.
        let mut n = net(9, 60);
        for i in 0..50u32 {
            n.node_mut(NodeId(i)).battery.consume(4.5);
        }
        let mut rng = StdRng::seed_from_u64(10);
        let mut p = FcmProtocol::new(4);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        let full_heads = heads.iter().filter(|h| h.0 >= 50).count();
        assert!(
            full_heads * 2 >= heads.len(),
            "expected mostly full-energy heads, got {full_heads}/{}",
            heads.len()
        );
    }

    #[test]
    fn fcm_aggregate_routes_end_at_bs_with_decreasing_levels() {
        let mut n = net(11, 80);
        let mut rng = StdRng::seed_from_u64(12);
        let mut p = FcmProtocol::with_levels(6, 3);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        let h = p.hierarchy(&n);
        let bs = n.bs_pos();
        for &head in &heads {
            let route = p.aggregate_route(&n, head, &heads);
            assert_eq!(route.last(), Some(&Target::Bs));
            // Relay levels strictly decrease.
            let mut prev = h.level_of(n.node(head).pos, bs);
            for hop in &route[..route.len() - 1] {
                if let Target::Head(relay) = hop {
                    let l = h.level_of(n.node(*relay).pos, bs);
                    assert!(l < prev, "relay level {l} not below {prev}");
                    prev = l;
                }
            }
        }
    }

    #[test]
    fn fcm_uses_multihop_when_levels_allow() {
        // With several levels and enough heads, at least one outer head
        // should relay (the mechanism behind FCM's congestion losses).
        let mut n = net(13, 120);
        let mut rng = StdRng::seed_from_u64(14);
        let mut p = FcmProtocol::with_levels(8, 3);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        let any_multihop = heads
            .iter()
            .any(|&head| p.aggregate_route(&n, head, &heads).len() > 1);
        assert!(
            any_multihop,
            "expected at least one multi-hop aggregate route"
        );
    }

    #[test]
    fn fcm_protocol_full_run_conserves_packets() {
        let n = net(15, 50);
        let mut rng = StdRng::seed_from_u64(16);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 4;
        let report = Simulator::builder(n)
            .config(cfg)
            .build()
            .run(&mut FcmProtocol::new(5), &mut rng);
        assert!(report.totals.is_conserved());
        assert!(report.totals.delivered > 0);
    }

    #[test]
    fn protocols_survive_mass_death() {
        // Kill everyone but two nodes; protocols must not panic and the
        // sim must stay conserved.
        let mut n = net(17, 30);
        for i in 0..28u32 {
            n.node_mut(NodeId(i)).battery.consume(10.0);
        }
        let mut rng = StdRng::seed_from_u64(18);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 3;
        for p in [true, false] {
            let net2 = n.clone();
            let report = if p {
                Simulator::builder(net2)
                    .config(cfg)
                    .build()
                    .run(&mut KMeansProtocol::new(5), &mut rng)
            } else {
                Simulator::builder(net2)
                    .config(cfg)
                    .build()
                    .run(&mut FcmProtocol::new(5), &mut rng)
            };
            assert!(report.totals.is_conserved());
        }
    }
}
