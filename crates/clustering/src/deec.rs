//! Plain DEEC \[11\] — the protocol QLEC improves.
//!
//! §3.1: "the probability `p_i` is given as `p_i = p_opt · E_i(r) / Ē(r)`"
//! (Eq. 1), with the network-average energy estimated without global
//! knowledge as `Ē(r) = (1/N)·E_initial·(1 − r/R)` (Eq. 2). Election uses
//! the rotating threshold (Eq. 3, shared with LEACH); members join the
//! *nearest* head ("nodes that are not selected as cluster heads
//! dynamically choose the nearest cluster head", §3.1); heads transmit the
//! fused data directly to the BS.
//!
//! This is the baseline *without* QLEC's three additions (energy
//! threshold Eq. 4, redundancy reduction Alg. 3, Q-routing Alg. 4) — the
//! ablation benches diff against it.

use crate::leach::{rotating_epoch, rotating_threshold};
use qlec_net::protocol::{install_heads, nearest_head, Protocol};
use qlec_net::{Network, NodeId, Target};
use rand::{Rng, RngCore};

/// How the per-round average network energy `Ē(r)` is obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AverageEnergy {
    /// The paper's Eq. 2 estimate: `Ē(r) = (1/N)·E_initial·(1 − r/R)`,
    /// requiring only the horizon `R` — what a distributed node can
    /// compute.
    Estimate { total_rounds: u32 },
    /// The exact current average (an oracle; useful to quantify the
    /// estimate's impact).
    Exact,
}

impl AverageEnergy {
    /// Evaluate `Ē(r)` for a network at round `r`.
    pub fn evaluate(&self, net: &Network, round: u32) -> f64 {
        match *self {
            AverageEnergy::Estimate { total_rounds } => {
                let r_frac = if total_rounds == 0 {
                    1.0
                } else {
                    (round as f64 / total_rounds as f64).min(1.0)
                };
                (net.total_initial() / net.len().max(1) as f64) * (1.0 - r_frac)
            }
            AverageEnergy::Exact => net.mean_residual(),
        }
    }
}

/// The DEEC election probability `p_i` (Eq. 1), clamped into `[0, 1]`.
pub fn deec_probability(p_opt: f64, residual: f64, avg_energy: f64) -> f64 {
    if avg_energy <= f64::EPSILON {
        // The estimate has hit the end of the planned lifetime; fall back
        // to the uniform probability so election can still happen.
        return p_opt.clamp(0.0, 1.0);
    }
    (p_opt * residual / avg_energy).clamp(0.0, 1.0)
}

/// Plain DEEC as a simulator protocol.
#[derive(Debug, Clone)]
pub struct DeecProtocol {
    /// Desired average head count per round (`k_opt = N·p_opt`).
    pub k: usize,
    /// Average-energy source for Eq. 1.
    pub avg_energy: AverageEnergy,
}

impl DeecProtocol {
    /// DEEC targeting `k` heads with the paper's Eq. 2 estimate over a
    /// planned lifetime of `total_rounds`.
    pub fn new(k: usize, total_rounds: u32) -> Self {
        assert!(k > 0, "k must be positive");
        DeecProtocol {
            k,
            avg_energy: AverageEnergy::Estimate { total_rounds },
        }
    }

    /// DEEC with oracle average energy.
    pub fn with_exact_average(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        DeecProtocol {
            k,
            avg_energy: AverageEnergy::Exact,
        }
    }

    /// One election pass: returns the elected heads without installing
    /// them (shared with tests and the improved variant's diagnostics).
    pub fn elect(&self, net: &Network, round: u32, rng: &mut dyn RngCore) -> Vec<NodeId> {
        let n = net.len().max(1);
        let p_opt = (self.k as f64 / n as f64).min(1.0);
        let avg = self.avg_energy.evaluate(net, round);
        let mut heads = Vec::new();
        for id in net.ids().collect::<Vec<_>>() {
            let node = net.node(id);
            if !node.is_alive() {
                continue;
            }
            let p_i = deec_probability(p_opt, node.residual(), avg);
            if p_i <= 0.0 || node.was_head_recently(round, rotating_epoch(p_i)) {
                continue;
            }
            let t = rotating_threshold(p_i, round);
            if rng.gen::<f64>() < t {
                heads.push(id);
            }
        }
        heads
    }
}

impl Protocol for DeecProtocol {
    fn name(&self) -> &str {
        "deec"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let heads = self.elect(net, round, rng);
        install_heads(net, round, &heads);
        heads
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_scales_with_residual_energy() {
        // Eq. 1: p_i doubles when residual doubles (below the clamp).
        let p1 = deec_probability(0.05, 2.0, 4.0);
        let p2 = deec_probability(0.05, 4.0, 4.0);
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
        // Average-energy node gets exactly p_opt.
        assert_eq!(deec_probability(0.05, 4.0, 4.0), 0.05);
    }

    #[test]
    fn probability_clamps() {
        assert_eq!(deec_probability(0.5, 100.0, 1.0), 1.0);
        assert_eq!(deec_probability(0.05, 0.0, 4.0), 0.0);
        // Depleted average estimate falls back to p_opt.
        assert_eq!(deec_probability(0.05, 3.0, 0.0), 0.05);
    }

    #[test]
    fn estimate_decays_linearly() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, 100, 200.0, 5.0);
        let avg = AverageEnergy::Estimate { total_rounds: 20 };
        assert!((avg.evaluate(&net, 0) - 5.0).abs() < 1e-12);
        assert!((avg.evaluate(&net, 10) - 2.5).abs() < 1e-12);
        assert!((avg.evaluate(&net, 20) - 0.0).abs() < 1e-12);
        // Beyond the horizon the estimate clamps at zero, not negative.
        assert!(avg.evaluate(&net, 40) >= 0.0);
    }

    #[test]
    fn exact_average_tracks_consumption() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 10, 200.0, 5.0);
        net.node_mut(NodeId(0)).battery.consume(5.0);
        assert!((AverageEnergy::Exact.evaluate(&net, 3) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn deec_elects_about_k_heads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 100, 200.0, 5.0);
        let mut p = DeecProtocol::new(5, 40);
        let mut total = 0usize;
        let rounds = 30;
        for r in 0..rounds {
            net.reset_roles();
            total += p.on_round_start(&mut net, r, &mut rng).len();
        }
        let mean = total as f64 / rounds as f64;
        assert!((2.0..=10.0).contains(&mean), "mean heads {mean}, want ≈ 5");
    }

    #[test]
    fn deec_favours_high_energy_nodes() {
        // Drain half the network heavily; high-energy nodes must serve as
        // heads far more often (the defining DEEC property LEACH lacks).
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 60, 200.0, 5.0);
        for i in 0..30u32 {
            net.node_mut(NodeId(i)).battery.consume(4.5);
        }
        let mut p = DeecProtocol::with_exact_average(6);
        let (mut low, mut high) = (0usize, 0usize);
        for r in 0..40 {
            net.reset_roles();
            for h in p.on_round_start(&mut net, r, &mut rng) {
                if h.0 < 30 {
                    low += 1;
                } else {
                    high += 1;
                }
            }
        }
        assert!(
            high > 3 * low,
            "high-energy nodes served {high} vs drained {low}"
        );
    }

    #[test]
    fn dead_nodes_never_elected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 20, 200.0, 5.0);
        net.node_mut(NodeId(7)).battery.consume(10.0);
        let mut p = DeecProtocol::new(5, 20);
        for r in 0..20 {
            net.reset_roles();
            let heads = p.on_round_start(&mut net, r, &mut rng);
            assert!(!heads.contains(&NodeId(7)));
        }
    }
}
