//! Fuzzy C-means (FCM) clustering.
//!
//! §2 of the paper: "Fuzzy C-Means (FCM) clustering algorithm employs the
//! concept of maximizing residual energy when choosing cluster heads as
//! well. An FCM-based scheme in \[14\] divides the WSN into different
//! hierarchies based on the distance to the BS and a dynamic multi-hop
//! routing algorithm is designed." This module is the clustering core
//! (Bezdek's alternating optimization); the hierarchy/multi-hop parts live
//! in [`crate::hierarchy`] and [`crate::protocols::FcmProtocol`].
//!
//! Standard updates with fuzzifier `m > 1`:
//!
//! ```text
//! u_ij = 1 / Σ_l (‖x_i − c_j‖ / ‖x_i − c_l‖)^{2/(m−1)}
//! c_j  = Σ_i u_ij^m · x_i / Σ_i u_ij^m
//! ```

use qlec_geom::Vec3;
use rand::Rng;

/// Configuration for [`fcm`].
#[derive(Debug, Clone, Copy)]
pub struct FcmConfig {
    /// Fuzzifier `m` (> 1; 2.0 is the conventional default).
    pub fuzzifier: f64,
    /// Maximum alternating-optimization iterations.
    pub max_iterations: usize,
    /// Stop when the largest membership change falls below this.
    pub tolerance: f64,
}

impl Default for FcmConfig {
    fn default() -> Self {
        FcmConfig {
            fuzzifier: 2.0,
            max_iterations: 100,
            tolerance: 1e-5,
        }
    }
}

/// Result of an FCM run.
#[derive(Debug, Clone)]
pub struct FcmResult {
    /// Cluster centers (`c` of them).
    pub centers: Vec<Vec3>,
    /// Row-major membership matrix `u[i * c + j]` = membership of point
    /// `i` in cluster `j`. Every row sums to 1.
    pub memberships: Vec<f64>,
    /// Number of clusters.
    pub c: usize,
    /// The FCM objective `Σ_ij u_ij^m ‖x_i − c_j‖²` at termination.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

impl FcmResult {
    /// Membership of point `i` in cluster `j`.
    #[inline]
    pub fn membership(&self, i: usize, j: usize) -> f64 {
        self.memberships[i * self.c + j]
    }

    /// Hard assignment: the cluster with the largest membership.
    pub fn hard_assignment(&self) -> Vec<usize> {
        let n = self.memberships.len() / self.c.max(1);
        (0..n)
            .map(|i| {
                (0..self.c)
                    .max_by(|&a, &b| self.membership(i, a).total_cmp(&self.membership(i, b)))
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Run fuzzy C-means on `points` with `c` clusters.
///
/// Centers are initialized from distinct random points (k-means++-style
/// D² seeding reuses [`crate::kmeans::kmeans_pp_init`]).
///
/// # Panics
/// Panics on an empty point set, `c == 0`, or `fuzzifier <= 1`.
pub fn fcm<R: Rng + ?Sized>(rng: &mut R, points: &[Vec3], c: usize, cfg: &FcmConfig) -> FcmResult {
    assert!(!points.is_empty(), "cannot cluster an empty point set");
    assert!(c >= 1, "c must be at least 1");
    assert!(cfg.fuzzifier > 1.0, "fuzzifier must exceed 1");
    let c = c.min(points.len());
    let n = points.len();
    let mut centers = crate::kmeans::kmeans_pp_init(rng, points, c);
    let mut u = vec![0.0f64; n * c];
    let exponent = 2.0 / (cfg.fuzzifier - 1.0);
    let mut iterations = 0;

    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        // Membership update.
        let mut max_change = 0.0f64;
        for (i, p) in points.iter().enumerate() {
            let dists: Vec<f64> = centers.iter().map(|ce| ce.dist(*p)).collect();
            // A point coinciding with a center gets crisp membership there.
            if let Some(hit) = dists.iter().position(|&d| d < 1e-12) {
                for j in 0..c {
                    let nu = if j == hit { 1.0 } else { 0.0 };
                    max_change = max_change.max((u[i * c + j] - nu).abs());
                    u[i * c + j] = nu;
                }
                continue;
            }
            for j in 0..c {
                let denom: f64 = dists.iter().map(|&dl| (dists[j] / dl).powf(exponent)).sum();
                let nu = 1.0 / denom;
                max_change = max_change.max((u[i * c + j] - nu).abs());
                u[i * c + j] = nu;
            }
        }
        // Center update.
        for j in 0..c {
            let mut num = Vec3::ZERO;
            let mut den = 0.0;
            for (i, p) in points.iter().enumerate() {
                let w = u[i * c + j].powf(cfg.fuzzifier);
                num += *p * w;
                den += w;
            }
            if den > f64::EPSILON {
                centers[j] = num / den;
            }
        }
        if max_change < cfg.tolerance {
            break;
        }
    }

    let objective = (0..n)
        .map(|i| {
            (0..c)
                .map(|j| u[i * c + j].powf(cfg.fuzzifier) * points[i].dist_sq(centers[j]))
                .sum::<f64>()
        })
        .sum();

    FcmResult {
        centers,
        memberships: u,
        c,
        objective,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qlec_geom::sample::uniform_in_ball;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng, centers: &[Vec3], per: usize, radius: f64) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for &c in centers {
            for _ in 0..per {
                pts.push(uniform_in_ball(rng, c, radius));
            }
        }
        pts
    }

    #[test]
    fn memberships_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = blobs(&mut rng, &[Vec3::ZERO, Vec3::splat(60.0)], 40, 10.0);
        let res = fcm(&mut rng, &pts, 3, &FcmConfig::default());
        for i in 0..pts.len() {
            let s: f64 = (0..res.c).map(|j| res.membership(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            for j in 0..res.c {
                assert!((0.0..=1.0 + 1e-12).contains(&res.membership(i, j)));
            }
        }
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(2);
        let true_centers = [Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)];
        let pts = blobs(&mut rng, &true_centers, 60, 5.0);
        let res = fcm(&mut rng, &pts, 2, &FcmConfig::default());
        for c in true_centers {
            let d = res
                .centers
                .iter()
                .map(|f| f.dist(c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 5.0, "no FCM center near {c:?}");
        }
        // Hard assignments split the blobs.
        let hard = res.hard_assignment();
        let first = hard[0];
        assert!(hard[..60].iter().all(|&a| a == first));
        assert!(hard[60..].iter().all(|&a| a != first));
    }

    #[test]
    fn point_on_center_gets_crisp_membership() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two well-separated singleton blobs: centers converge onto the
        // points, which must then be crisply assigned.
        let pts = vec![Vec3::ZERO, Vec3::splat(100.0)];
        let res = fcm(&mut rng, &pts, 2, &FcmConfig::default());
        for i in 0..2 {
            let m = (0..2).map(|j| res.membership(i, j)).fold(0.0, f64::max);
            assert!(m > 0.999, "point {i} max membership {m}");
        }
    }

    #[test]
    fn higher_fuzzifier_softens_memberships() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = blobs(&mut rng, &[Vec3::ZERO, Vec3::splat(40.0)], 50, 15.0);
        let crisp = fcm(
            &mut rng,
            &pts,
            2,
            &FcmConfig {
                fuzzifier: 1.5,
                ..Default::default()
            },
        );
        let soft = fcm(
            &mut rng,
            &pts,
            2,
            &FcmConfig {
                fuzzifier: 4.0,
                ..Default::default()
            },
        );
        let mean_max = |r: &FcmResult| -> f64 {
            let n = pts.len();
            (0..n)
                .map(|i| (0..r.c).map(|j| r.membership(i, j)).fold(0.0, f64::max))
                .sum::<f64>()
                / n as f64
        };
        assert!(
            mean_max(&soft) < mean_max(&crisp),
            "soft {} should be below crisp {}",
            mean_max(&soft),
            mean_max(&crisp)
        );
    }

    #[test]
    fn single_cluster_center_is_weighted_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = vec![Vec3::ZERO, Vec3::new(4.0, 0.0, 0.0)];
        let res = fcm(&mut rng, &pts, 1, &FcmConfig::default());
        // With one cluster all memberships are 1, so the center is the
        // plain mean.
        assert!(res.centers[0].dist(Vec3::new(2.0, 0.0, 0.0)) < 1e-9);
        assert_eq!(res.hard_assignment(), vec![0, 0]);
    }

    #[test]
    fn c_larger_than_n_is_clamped() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = vec![Vec3::ZERO, Vec3::ONE];
        let res = fcm(&mut rng, &pts, 5, &FcmConfig::default());
        assert_eq!(res.c, 2);
    }

    #[test]
    #[should_panic]
    fn fuzzifier_of_one_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        fcm(
            &mut rng,
            &[Vec3::ZERO],
            1,
            &FcmConfig {
                fuzzifier: 1.0,
                ..Default::default()
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Membership rows always sum to 1 and the objective is finite and
        /// non-negative, for random point clouds and cluster counts.
        #[test]
        fn membership_invariant(seed in 0u64..1000, n in 2usize..40, c in 1usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<Vec3> = (0..n)
                .map(|_| uniform_in_ball(&mut rng, Vec3::ZERO, 50.0))
                .collect();
            let res = fcm(&mut rng, &pts, c, &FcmConfig::default());
            prop_assert!(res.objective.is_finite() && res.objective >= 0.0);
            for i in 0..n {
                let s: f64 = (0..res.c).map(|j| res.membership(i, j)).sum();
                prop_assert!((s - 1.0).abs() < 1e-6, "row {} sums to {}", i, s);
            }
        }
    }
}
