//! Classic LEACH randomized head rotation \[5\], plus the shared
//! rotating-threshold election primitive that DEEC and QLEC's improved
//! DEEC both build on.
//!
//! LEACH elects heads with the threshold of the paper's Eq. 3 with a
//! *uniform* probability `p_opt = k/N` — "LEACH does not take residual
//! energy of sensors into consideration" (§2), which is exactly the
//! weakness the energy-weighted variants fix.

use qlec_net::protocol::{install_heads, nearest_head, Protocol};
use qlec_net::{Network, NodeId, Target};
use rand::{Rng, RngCore};

/// The rotating election threshold (the paper's Eq. 3):
///
/// ```text
/// T(b_i) = p / (1 − p·(r mod ⌈1/p⌉))   if b_i is a candidate
/// ```
///
/// `p` is the node's election probability this round and `r` the round
/// number. Within each rotating epoch of `n = ⌈1/p⌉` rounds the threshold
/// rises from `p` toward 1, guaranteeing every candidate is elected about
/// once per epoch. Out-of-range inputs are clamped: `p ≤ 0 → 0`,
/// `p ≥ 1 → 1`, and a non-positive denominator (end of epoch) → 1.
pub fn rotating_threshold(p: f64, r: u32) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let epoch = (1.0 / p).ceil().max(1.0) as u32;
    let phase = (r % epoch) as f64;
    let denom = 1.0 - p * phase;
    if denom <= f64::EPSILON {
        1.0
    } else {
        (p / denom).min(1.0)
    }
}

/// The rotating epoch `n_i = ⌈1/p_i⌉` for an election probability.
pub fn rotating_epoch(p: f64) -> u32 {
    if p <= 0.0 {
        u32::MAX
    } else if p >= 1.0 {
        1
    } else {
        (1.0 / p).ceil() as u32
    }
}

/// Classic LEACH as a simulator protocol: uniform election probability,
/// nearest-head membership, heads direct to the BS.
#[derive(Debug, Clone)]
pub struct LeachProtocol {
    /// Desired average head count per round.
    pub k: usize,
}

impl LeachProtocol {
    /// LEACH targeting `k` heads on average.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        LeachProtocol { k }
    }
}

impl Protocol for LeachProtocol {
    fn name(&self) -> &str {
        "leach"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        let n = net.len().max(1);
        let p_opt = (self.k as f64 / n as f64).min(1.0);
        let epoch = rotating_epoch(p_opt);
        let mut heads = Vec::new();
        for id in net.ids().collect::<Vec<_>>() {
            let node = net.node(id);
            if !node.is_alive() || node.was_head_recently(round, epoch) {
                continue;
            }
            let t = rotating_threshold(p_opt, round);
            if rng.gen::<f64>() < t {
                heads.push(id);
            }
        }
        install_heads(net, round, &heads);
        heads
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threshold_epoch_shape() {
        let p = 0.1;
        // Phase 0: T = p.
        assert!((rotating_threshold(p, 0) - 0.1).abs() < 1e-12);
        // Threshold rises within the epoch.
        let mut prev = 0.0;
        for r in 0..10 {
            let t = rotating_threshold(p, r);
            assert!(
                t >= prev,
                "threshold must be non-decreasing inside an epoch"
            );
            assert!((0.0..=1.0).contains(&t));
            prev = t;
        }
        // Last phase of the epoch: near-certain election.
        assert!(rotating_threshold(p, 9) > 0.9);
        // The epoch wraps: round 10 behaves like round 0.
        assert_eq!(rotating_threshold(p, 10), rotating_threshold(p, 0));
    }

    #[test]
    fn threshold_clamps_degenerate_p() {
        assert_eq!(rotating_threshold(0.0, 5), 0.0);
        assert_eq!(rotating_threshold(-0.3, 5), 0.0);
        assert_eq!(rotating_threshold(1.0, 5), 1.0);
        assert_eq!(rotating_threshold(1.7, 5), 1.0);
    }

    #[test]
    fn epoch_lengths() {
        assert_eq!(rotating_epoch(0.1), 10);
        assert_eq!(rotating_epoch(0.34), 3);
        assert_eq!(rotating_epoch(1.0), 1);
        assert_eq!(rotating_epoch(0.0), u32::MAX);
    }

    #[test]
    fn leach_elects_about_k_heads_per_round() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 100, 200.0, 5.0);
        let mut p = LeachProtocol::new(5);
        let mut total = 0usize;
        let rounds = 40;
        for r in 0..rounds {
            net.reset_roles();
            total += p.on_round_start(&mut net, r, &mut rng).len();
        }
        let mean = total as f64 / rounds as f64;
        assert!(
            (2.0..=9.0).contains(&mean),
            "mean heads per round {mean}, want ≈ 5"
        );
    }

    #[test]
    fn leach_rotates_heads() {
        // Over a full epoch, (nearly) every alive node serves at least
        // once — the rotation guarantee.
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 50, 200.0, 5.0);
        let mut p = LeachProtocol::new(5);
        for r in 0..10 {
            net.reset_roles();
            p.on_round_start(&mut net, r, &mut rng);
        }
        let served = net.iter().filter(|n| n.head_count > 0).count();
        assert!(served >= 45, "only {served}/50 nodes ever served as head");
    }

    #[test]
    fn leach_ignores_energy() {
        // A nearly-dead node is just as likely to be elected as a full
        // one: drain half the nodes and check they still serve.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = NetworkBuilder::new().uniform_cube(&mut rng, 60, 200.0, 5.0);
        for i in 0..30u32 {
            let id = NodeId(i);
            net.node_mut(id).battery.consume(4.9);
        }
        let mut p = LeachProtocol::new(6);
        let mut drained_serves = 0;
        for r in 0..10 {
            net.reset_roles();
            for h in p.on_round_start(&mut net, r, &mut rng) {
                if h.0 < 30 {
                    drained_serves += 1;
                }
            }
        }
        assert!(drained_serves > 0, "LEACH must not avoid low-energy nodes");
    }
}
