//! HEED — Hybrid Energy-Efficient Distributed clustering (Younis &
//! Fahmy \[17\], cited in §2 of the QLEC paper among the distributed
//! energy-efficient approaches).
//!
//! HEED selects cluster heads through an iterative, fully distributed
//! probabilistic process:
//!
//! 1. every node starts with candidacy probability
//!    `CH_prob = C_prob · E_residual / E_max` (clamped below by
//!    `p_min`),
//! 2. in each iteration a node announces *tentative* candidacy with its
//!    current probability; nodes that hear a tentative head within their
//!    cluster range defer to the lowest-cost one; probabilities double
//!    every iteration,
//! 3. once a node's probability reaches 1 it becomes a *final* head;
//!    nodes that end the process without hearing any final head within
//!    range elect themselves.
//!
//! The secondary cost criterion (used to pick among competing heads) is
//! the classic AMRP — average minimum reachability power — approximated
//! here by the mean squared distance to the node's neighbours within the
//! cluster range.
//!
//! The protocol is an extra baseline for the reproduction: like QLEC's
//! improved DEEC it is residual-energy-driven and fully distributed, but
//! it has no rotation epoch, no coverage-radius redundancy reduction, and
//! no learning in the transmission phase.

use qlec_geom::UniformGrid;
use qlec_net::protocol::{install_heads, nearest_head, Protocol};
use qlec_net::{Network, NodeId, Target};
use rand::{Rng, RngCore};

/// HEED parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeedConfig {
    /// Initial candidacy fraction `C_prob` (HEED's default: 5 %).
    pub c_prob: f64,
    /// Lower bound on the candidacy probability (`p_min`).
    pub p_min: f64,
    /// Cluster range: nodes within this distance of a head join it and
    /// defer their own candidacy.
    pub cluster_range: f64,
    /// Safety cap on doubling iterations.
    pub max_iterations: u32,
}

impl Default for HeedConfig {
    fn default() -> Self {
        HeedConfig {
            c_prob: 0.05,
            p_min: 1e-4,
            cluster_range: 75.0,
            max_iterations: 32,
        }
    }
}

/// HEED as a simulator protocol. Members join the nearest final head;
/// heads transmit aggregates directly to the BS.
#[derive(Debug, Clone)]
pub struct HeedProtocol {
    pub cfg: HeedConfig,
    grid: Option<UniformGrid>,
}

impl HeedProtocol {
    /// HEED with the given configuration.
    pub fn new(cfg: HeedConfig) -> Self {
        assert!(
            cfg.c_prob > 0.0 && cfg.c_prob <= 1.0,
            "C_prob must be in (0,1]"
        );
        assert!(
            cfg.p_min > 0.0 && cfg.p_min <= cfg.c_prob,
            "p_min must be in (0, C_prob]"
        );
        assert!(cfg.cluster_range > 0.0, "cluster range must be positive");
        HeedProtocol { cfg, grid: None }
    }

    /// HEED with the default parameters and a cluster range derived from
    /// the target head count via the paper's Eq. 5 radius.
    pub fn with_target_k(net_side: f64, k: usize) -> Self {
        assert!(k > 0);
        let range = (3.0 / (4.0 * std::f64::consts::PI * k as f64)).cbrt() * net_side;
        HeedProtocol::new(HeedConfig {
            cluster_range: range,
            ..Default::default()
        })
    }

    /// AMRP-style cost: mean squared distance to neighbours within the
    /// cluster range (lower = better placed to serve its neighbourhood).
    fn cost(&self, net: &Network, grid: &UniformGrid, id: NodeId, buf: &mut Vec<u32>) -> f64 {
        let pos = net.node(id).pos;
        grid.within_radius_into(pos, self.cfg.cluster_range, buf);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &i in buf.iter() {
            if i != id.0 {
                sum += net.node(NodeId(i)).pos.dist_sq(pos);
                n += 1;
            }
        }
        if n == 0 {
            // Isolated node: neutral (must head itself anyway).
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl Protocol for HeedProtocol {
    fn name(&self) -> &str {
        "heed"
    }

    fn on_round_start(
        &mut self,
        net: &mut Network,
        round: u32,
        rng: &mut dyn RngCore,
    ) -> Vec<NodeId> {
        if self.grid.is_none() {
            self.grid = Some(UniformGrid::build(net.positions(), 8));
        }
        let grid = self.grid.as_ref().expect("built above");
        let e_max = net
            .arena()
            .batteries()
            .iter()
            .map(|b| b.initial())
            .fold(0.0f64, f64::max)
            .max(f64::EPSILON);

        let alive: Vec<NodeId> = net.alive_ids().collect();
        let mut buf = Vec::new();
        // Per-node doubling probability, final/tentative state, and cost.
        let mut prob: Vec<f64> = alive
            .iter()
            .map(|&id| {
                (self.cfg.c_prob * net.node(id).residual() / e_max)
                    .max(self.cfg.p_min)
                    .min(1.0)
            })
            .collect();
        let costs: Vec<f64> = alive
            .iter()
            .map(|&id| self.cost(net, grid, id, &mut buf))
            .collect();
        let mut tentative = vec![false; alive.len()];
        let mut deferred = vec![false; alive.len()];

        for _ in 0..self.cfg.max_iterations {
            // Announcement phase: competing nodes whose coin lands become
            // tentative heads (probability 1 = certain candidacy).
            for i in 0..alive.len() {
                if tentative[i] || deferred[i] {
                    continue;
                }
                if prob[i] >= 1.0 || rng.gen::<f64>() < prob[i] {
                    tentative[i] = true;
                }
            }
            // Deferral phase: a node that hears a tentative head within
            // its cluster range joins that cluster and exits the
            // competition — this is what makes HEED energy-driven: rich
            // nodes announce in earlier iterations and their neighbours
            // stand down before their own probability matures.
            for (i, &id) in alive.iter().enumerate() {
                if tentative[i] || deferred[i] {
                    continue;
                }
                let pos = net.node(id).pos;
                grid.within_radius_into(pos, self.cfg.cluster_range, &mut buf);
                let hears_tentative = buf.iter().any(|&j| {
                    let jid = NodeId(j);
                    jid != id
                        && alive
                            .iter()
                            .position(|&x| x == jid)
                            .map(|jx| tentative[jx])
                            .unwrap_or(false)
                });
                if hears_tentative {
                    deferred[i] = true;
                }
            }
            // Doubling for everyone still competing.
            let mut still_competing = false;
            for i in 0..alive.len() {
                if !tentative[i] && !deferred[i] {
                    prob[i] = (prob[i] * 2.0).min(1.0);
                    still_competing = true;
                }
            }
            if !still_competing {
                break;
            }
        }

        // Resolution among tentative heads: a tentative head that hears a
        // lower-cost tentative head within range defers to it. Nodes with
        // no surviving head in range self-elect (completeness).
        let index_of = |id: NodeId| alive.iter().position(|&x| x == id);
        let mut heads: Vec<NodeId> = Vec::new();
        for (i, &id) in alive.iter().enumerate() {
            if !tentative[i] {
                continue;
            }
            let pos = net.node(id).pos;
            grid.within_radius_into(pos, self.cfg.cluster_range, &mut buf);
            let cheaper_neighbour = buf.iter().any(|&j| {
                let jid = NodeId(j);
                jid != id
                    && net.node(jid).is_alive()
                    && index_of(jid)
                        .map(|jx| {
                            tentative[jx]
                                && (costs[jx] < costs[i] || (costs[jx] == costs[i] && jid < id))
                        })
                        .unwrap_or(false)
            });
            if !cheaper_neighbour {
                heads.push(id);
            }
        }
        // Completeness: uncovered nodes self-elect.
        for &id in &alive {
            let pos = net.node(id).pos;
            let covered = heads
                .iter()
                .any(|&h| net.node(h).pos.dist(pos) <= self.cfg.cluster_range);
            if !covered {
                heads.push(id);
            }
        }

        install_heads(net, round, &heads);
        heads
    }

    fn choose_target(
        &mut self,
        net: &Network,
        src: NodeId,
        heads: &[NodeId],
        _rng: &mut dyn RngCore,
    ) -> Target {
        nearest_head(net, src, heads).map_or(Target::Bs, Target::Head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlec_net::{NetworkBuilder, SimConfig, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, n: usize) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0)
    }

    #[test]
    fn every_node_is_covered_or_a_head() {
        let mut n = net(1, 120);
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = HeedProtocol::with_target_k(200.0, 5);
        let heads = p.on_round_start(&mut n, 0, &mut rng);
        assert!(!heads.is_empty());
        let range = p.cfg.cluster_range;
        for id in n.alive_ids() {
            let pos = n.node(id).pos;
            let covered =
                heads.iter().any(|&h| n.node(h).pos.dist(pos) <= range) || heads.contains(&id);
            assert!(covered, "{id} uncovered");
        }
    }

    #[test]
    fn head_count_is_reasonable() {
        // With the Eq. 5 range for k = 5, HEED should produce a head
        // count in the same ballpark (coverage forces at least ~k).
        let mut n = net(3, 150);
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = HeedProtocol::with_target_k(200.0, 5);
        let mut total = 0;
        let rounds = 10;
        for r in 0..rounds {
            n.reset_roles();
            total += p.on_round_start(&mut n, r, &mut rng).len();
        }
        let mean = total as f64 / rounds as f64;
        assert!(
            (3.0..=20.0).contains(&mean),
            "mean HEED head count {mean} out of ballpark"
        );
    }

    #[test]
    fn high_energy_nodes_head_more_often() {
        let mut n = net(5, 80);
        for i in 0..40u32 {
            n.node_mut(NodeId(i)).battery.consume(4.0);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = HeedProtocol::with_target_k(200.0, 6);
        let (mut low, mut high) = (0usize, 0usize);
        for r in 0..25 {
            n.reset_roles();
            for h in p.on_round_start(&mut n, r, &mut rng) {
                if h.0 < 40 {
                    low += 1;
                } else {
                    high += 1;
                }
            }
        }
        assert!(
            high > low,
            "high-energy nodes should head more often: high {high} vs low {low}"
        );
    }

    #[test]
    fn full_simulation_run_is_conserved() {
        let n = net(7, 80);
        let mut rng = StdRng::seed_from_u64(8);
        let mut cfg = SimConfig::paper(5.0);
        cfg.rounds = 5;
        let mut p = HeedProtocol::with_target_k(200.0, 5);
        let report = Simulator::builder(n)
            .config(cfg)
            .build()
            .run(&mut p, &mut rng);
        assert!(report.totals.is_conserved());
        assert!(report.pdr() > 0.8, "HEED PDR {}", report.pdr());
        assert_eq!(report.protocol, "heed");
    }

    #[test]
    fn dead_nodes_never_head() {
        let mut n = net(9, 40);
        n.node_mut(NodeId(0)).battery.consume(10.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut p = HeedProtocol::with_target_k(200.0, 4);
        for r in 0..10 {
            n.reset_roles();
            let heads = p.on_round_start(&mut n, r, &mut rng);
            assert!(!heads.contains(&NodeId(0)));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        HeedProtocol::new(HeedConfig {
            c_prob: 0.0,
            ..Default::default()
        });
    }
}
