//! Baseline clustering algorithms for the QLEC reproduction.
//!
//! §5 of the paper compares QLEC against "a newly proposed FCM-based
//! algorithm \[14\] and classic k-means clustering"; §2 grounds both in the
//! LEACH/DEEC lineage. This crate implements all four as raw algorithms
//! *and* as [`qlec_net::Protocol`]s the simulator can drive:
//!
//! * [`kmeans`] — k-means++ seeding + Lloyd iterations
//!   ([`protocols::KMeansProtocol`]: cluster head = the alive node nearest
//!   each centroid; members single-hop to their cluster's head; heads
//!   direct to the BS),
//! * [`fcm`] — fuzzy C-means with the standard membership/center updates
//!   ([`protocols::FcmProtocol`]: energy-weighted head choice within each
//!   fuzzy cluster, plus the distance-band *hierarchy* of \[14\] with
//!   multi-hop aggregate routing toward the BS),
//! * [`leach`] — classic LEACH randomized rotation \[5\] (no energy
//!   awareness — the weakness DEEC fixes),
//! * [`heed`] — HEED \[17\], the hybrid distributed approach §2 cites
//!   (iterative probability-doubling candidacy with an AMRP-style cost),
//! * [`deec`] — plain DEEC \[11\]: residual-energy-weighted election
//!   probabilities, nearest-head membership (no energy threshold, no
//!   redundancy reduction, no Q-routing — the improvements QLEC adds live
//!   in `qlec-core`).

pub mod deec;
pub mod fcm;
pub mod heed;
pub mod hierarchy;
pub mod kmeans;
pub mod leach;
pub mod protocols;

pub use heed::HeedProtocol;
pub use protocols::{FcmProtocol, KMeansProtocol};
