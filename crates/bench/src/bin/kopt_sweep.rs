//! Empirical validation of Theorem 1: sweep the cluster count `k` and
//! measure the *simulated* per-round energy, PDR, and lifespan of QLEC,
//! then compare the energy minimum against the analytic `k_opt`.
//!
//! The theorem minimizes the idealized Eq. 6 dissipation; the simulator
//! adds queueing, retries, control traffic, and stochastic links on top,
//! so the empirical optimum is expected *near* (not exactly at) the
//! analytic value — this binary quantifies how near.
//!
//! Usage: `cargo run --release -p qlec-bench --bin kopt_sweep [--quick]`

use qlec_bench::{print_table, run_cell, write_json, CellResult, ProtocolKind, RunSpec};
use qlec_core::kopt;
use qlec_geom::sample::MEAN_DIST_TO_CENTER_UNIT_CUBE;
use qlec_radio::RadioModel;
use serde::Serialize;

#[derive(Serialize)]
struct SweepOutput {
    description: &'static str,
    analytic_kopt: f64,
    empirical_energy_argmin: usize,
    cells: Vec<CellResult>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        (0..5).map(|i| 0x50E + i).collect()
    };
    let ks: &[usize] = if quick {
        &[2, 5, 11, 20]
    } else {
        &[1, 2, 3, 5, 8, 11, 15, 20, 30]
    };

    let analytic = kopt::kopt_real(
        100,
        200.0,
        MEAN_DIST_TO_CENTER_UNIT_CUBE * 200.0,
        &RadioModel::paper(),
    );

    // Low traffic isolates the Eq. 6 geometry from queueing effects.
    let mut cells: Vec<(usize, CellResult)> = Vec::new();
    for &k in ks {
        let mut spec = RunSpec::paper(8.0);
        spec.k = k;
        spec.seeds = seeds.clone();
        cells.push((k, run_cell(ProtocolKind::Qlec, &spec)));
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(k, c)| {
            vec![
                k.to_string(),
                format!("{:.4}", c.pdr_mean),
                format!("{:.3}", c.energy_mean_j),
                c.latency_mean_slots
                    .map_or("n/a".to_string(), |l| format!("{l:.2}")),
                format!("{:.1}", c.head_count_mean),
            ]
        })
        .collect();
    print_table(
        "QLEC vs cluster count k (N = 100, M = 200, λ = 8, 20 rounds)",
        &["k", "PDR", "energy (J)", "latency (slots)", "heads/round"],
        &rows,
    );

    let argmin = cells
        .iter()
        .min_by(|a, b| a.1.energy_mean_j.total_cmp(&b.1.energy_mean_j))
        .map(|(k, _)| *k)
        .unwrap_or(0);
    println!(
        "\nanalytic Theorem-1 k_opt = {analytic:.2}; empirical simulated-energy argmin = {argmin}"
    );
    println!(
        "The empirical optimum should sit near the analytic value; deviations measure\n\
         what Eq. 6 abstracts away (queueing, retries, HELLO traffic, member routing)."
    );

    write_json(
        "kopt_sweep_results.json",
        &SweepOutput {
            description: "Empirical k sweep vs Theorem 1",
            analytic_kopt: analytic,
            empirical_energy_argmin: argmin,
            cells: cells.into_iter().map(|(_, c)| c).collect(),
        },
    );
}
