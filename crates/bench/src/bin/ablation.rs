//! Ablation study over QLEC's three design choices (DESIGN.md §3):
//! the Eq. 4 energy threshold, the Algorithm 3 redundancy reduction, and
//! the Q-learning transmission phase. Each variant runs the Fig. 3
//! protocol grid at an idle and a congested λ, plus a lifespan run.
//!
//! Usage: `cargo run --release -p qlec-bench --bin ablation [--quick]`

use qlec_bench::{print_table, run_cell, write_json, CellResult, ProtocolKind, RunSpec};
use qlec_core::ablation::Ablation;
use serde::Serialize;

#[derive(Serialize)]
struct AblationOutput {
    description: &'static str,
    throughput: Vec<CellResult>,
    lifespan: Vec<CellResult>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        (0..5).map(|i| 0xAB1A + i).collect()
    };
    let lambdas = [2.0, 10.0];

    let mut throughput = Vec::new();
    for &lambda in &lambdas {
        let mut spec = RunSpec::paper(lambda);
        spec.seeds = seeds.clone();
        for ab in Ablation::ALL_VARIANTS {
            throughput.push(run_cell(ProtocolKind::QlecAblation(ab), &spec));
        }
    }

    let mut lifespan = Vec::new();
    {
        let mut spec = RunSpec::paper(2.0);
        spec.seeds = seeds.clone();
        spec.sim.rounds = if quick { 60 } else { 300 };
        spec.sim.death_line = 3.5;
        spec.sim.stop_when_dead = true;
        for ab in Ablation::ALL_VARIANTS {
            lifespan.push(run_cell(ProtocolKind::QlecAblation(ab), &spec));
        }
    }

    let rows: Vec<Vec<String>> = Ablation::ALL_VARIANTS
        .iter()
        .map(|ab| {
            let label = ab.label();
            let cell = |cells: &[CellResult], lambda: f64| -> CellResult {
                cells
                    .iter()
                    .find(|c| c.protocol == label && c.lambda == lambda)
                    .unwrap()
                    .clone()
            };
            let busy = cell(&throughput, 2.0);
            let idle = cell(&throughput, 10.0);
            let life = cell(&lifespan, 2.0);
            vec![
                label.to_string(),
                format!("{:.4}", busy.pdr_mean),
                format!("{:.4}", idle.pdr_mean),
                format!("{:.3}", busy.energy_mean_j),
                format!("{:.1}", life.lifespan_mean_rounds),
                format!("{:.1}", busy.head_count_mean),
            ]
        })
        .collect();

    print_table(
        "QLEC ablations (N = 100, M = 200, k = 5)",
        &[
            "variant",
            "PDR λ=2",
            "PDR λ=10",
            "energy (J) λ=2",
            "lifespan (rounds)",
            "heads/round",
        ],
        &rows,
    );
    println!("\nReading guide: the full 'qlec' row should dominate or match every ablated row;");
    println!("the gap against each row quantifies that feature's contribution.");

    write_json(
        "ablation_results.json",
        &AblationOutput {
            description:
                "QLEC design-choice ablations (energy threshold / redundancy reduction / Q-routing)",
            throughput,
            lifespan,
        },
    );
}
