//! Regenerates **Figure 3** — the paper's headline comparison of QLEC vs
//! the FCM-based scheme \[14\] vs classic k-means across four network
//! congestion conditions (mean packet inter-arrival λ):
//!
//! * **Fig. 3(a)** packet delivery rate vs λ,
//! * **Fig. 3(b)** total energy consumption over R = 20 rounds vs λ,
//! * **Fig. 3(c)** network lifespan vs λ (death-line rule, run with
//!   `stop_when_dead` over an extended horizon).
//!
//! Expected shape (§5.2): QLEC holds the highest PDR at every λ and ≈ 1
//! when idle, FCM loses > 10 % when congested (multi-hop), energy orders
//! QLEC < k-means < FCM, and QLEC has the longest lifespan.
//!
//! Usage: `cargo run --release -p qlec-bench --bin fig3 [--quick]`

use qlec_bench::{print_table, run_cell, write_json, CellResult, ProtocolKind, RunSpec};
use serde::Serialize;

/// The four congestion conditions (λ in slots; smaller = more congested).
const LAMBDAS: [f64; 4] = [1.0, 3.0, 5.0, 10.0];

#[derive(Serialize)]
struct Fig3Output {
    description: &'static str,
    pdr: Vec<CellResult>,
    energy: Vec<CellResult>,
    lifespan: Vec<CellResult>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // --all adds the lineage baselines (LEACH, plain DEEC) beyond the
    // paper's own comparison set.
    let all = std::env::args().any(|a| a == "--all");
    let protocols: Vec<ProtocolKind> = if all {
        ProtocolKind::ALL.to_vec()
    } else {
        ProtocolKind::FIG3.to_vec()
    };
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        (0..6).map(|i| 0xF163 + i).collect()
    };

    // ---- Fig. 3(a)+(b): PDR and energy over the paper's 20 rounds ----
    let mut pdr_cells = Vec::new();
    for &lambda in &LAMBDAS {
        let mut spec = RunSpec::paper(lambda);
        spec.seeds = seeds.clone();
        for &kind in &protocols {
            pdr_cells.push(run_cell(kind, &spec));
        }
    }

    // ---- Fig. 3(c): lifespan under the death-line rule -----------------
    // §5.1: for lifespan the death line is meaningful; for the other two
    // metrics it is lowered so all 20 rounds complete (done above via
    // death_line = 0). Here the network runs until a node crosses the
    // line, over an extended horizon.
    let mut life_cells = Vec::new();
    for &lambda in &LAMBDAS {
        let mut spec = RunSpec::paper(lambda);
        spec.seeds = seeds.clone();
        spec.sim.rounds = if quick { 60 } else { 300 };
        spec.sim.death_line = 3.5; // J; nodes start at 5 J
        spec.sim.stop_when_dead = true;
        for &kind in &protocols {
            life_cells.push(run_cell(kind, &spec));
        }
    }

    // ---- Tables ---------------------------------------------------------
    let by = |cells: &[CellResult], f: &dyn Fn(&CellResult) -> String| -> Vec<Vec<String>> {
        protocols
            .iter()
            .map(|k| {
                let mut row = vec![k.to_string()];
                for &lambda in &LAMBDAS {
                    let c = cells
                        .iter()
                        .find(|c| c.protocol == k.to_string() && c.lambda == lambda)
                        .expect("cell exists");
                    row.push(f(c));
                }
                row
            })
            .collect()
    };
    let headers = ["protocol", "λ=1 (congested)", "λ=3", "λ=5", "λ=10 (idle)"];

    print_table(
        "Fig. 3(a): packet delivery rate vs λ",
        &headers,
        &by(&pdr_cells, &|c| {
            format!("{:.4} ±{:.3}", c.pdr_mean, c.pdr_std)
        }),
    );
    print_table(
        "Fig. 3(b): total energy consumption (J, 20 rounds) vs λ",
        &headers,
        &by(&pdr_cells, &|c| {
            format!("{:.3} ±{:.3}", c.energy_mean_j, c.energy_std_j)
        }),
    );
    print_table(
        "(extra) mean delivered-packet latency (slots) vs λ",
        &headers,
        &by(&pdr_cells, &|c| {
            c.latency_mean_slots
                .map_or("n/a".to_string(), |l| format!("{l:.2}"))
        }),
    );
    print_table(
        "Fig. 3(c): network lifespan (rounds to death line) vs λ",
        &headers,
        &by(&life_cells, &|c| format!("{:.1}", c.lifespan_mean_rounds)),
    );

    // ---- Shape checks (warn, don't abort: stochastic) -------------------
    let mut shape_ok = true;
    for &lambda in &LAMBDAS {
        let get = |cells: &[CellResult], label: &str| -> CellResult {
            cells
                .iter()
                .find(|c| c.protocol == label && c.lambda == lambda)
                .unwrap()
                .clone()
        };
        let q = get(&pdr_cells, "qlec");
        let f = get(&pdr_cells, "fcm");
        let k = get(&pdr_cells, "k-means");
        if q.pdr_mean + 1e-9 < f.pdr_mean || q.pdr_mean + 1e-9 < k.pdr_mean {
            println!(
                "[shape warning] λ={lambda}: QLEC PDR {:.4} not highest (fcm {:.4}, k-means {:.4})",
                q.pdr_mean, f.pdr_mean, k.pdr_mean
            );
            shape_ok = false;
        }
        let ql = get(&life_cells, "qlec");
        let fl = get(&life_cells, "fcm");
        let kl = get(&life_cells, "k-means");
        if ql.lifespan_mean_rounds + 1e-9 < fl.lifespan_mean_rounds
            || ql.lifespan_mean_rounds + 1e-9 < kl.lifespan_mean_rounds
        {
            println!(
                "[shape warning] λ={lambda}: QLEC lifespan {:.1} not longest (fcm {:.1}, k-means {:.1})",
                ql.lifespan_mean_rounds, fl.lifespan_mean_rounds, kl.lifespan_mean_rounds
            );
            shape_ok = false;
        }
    }
    println!(
        "\nShape check: {}",
        if shape_ok {
            "PASS — QLEC dominates PDR and lifespan at every λ"
        } else {
            "see warnings above"
        }
    );

    write_json(
        "fig3_results.json",
        &Fig3Output {
            description: "QLEC reproduction of ICPP'19 Fig. 3 (PDR / energy / lifespan vs λ)",
            pdr: pdr_cells.clone(),
            energy: pdr_cells,
            lifespan: life_cells,
        },
    );
}
