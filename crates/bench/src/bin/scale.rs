//! Scaling benchmark: the perf-trajectory harness for large deployments.
//!
//! Runs the paper-shaped QLEC configuration at N ∈ {100, 1k, 10k} (by
//! default) with `Send-Data` candidate pruning enabled, and emits
//! `BENCH_scale.json`: per-phase wall time (from the `qlec-obs` phase
//! spans), peak RSS, and packet throughput for each (size, threads)
//! point. CI smoke-runs it at N = 100 and validates the artifact
//! against the schema, and the regression gate re-runs the committed
//! baseline's N = 100 point with `--compare`; the full sweep is the
//! cross-PR performance trajectory.
//!
//! Usage: `cargo run --release -p qlec-bench --bin scale -- \
//!     [--sizes 100,1000,10000] [--threads 1] [--rounds 20] \
//!     [--candidates auto|legacy-auto|full|<n>] \
//!     [--head-index incremental,rebuild] [--q-rows sparse,dense] \
//!     [--lambda 5] [--seed 42] \
//!     [--events-sink sync,async] [--out BENCH_scale.json] [--append] \
//!     [--validate] [--compare BASE.json] [--gate-thread-scaling 1.6]`
//!
//! `--events-sink` re-runs each point once per named pipeline with a
//! full-mode events stream (into the bit bucket) and records what that
//! stream costs the hot simulation thread, so the artifact can show the
//! async pipeline's hot-thread win over the synchronous sink.
//!
//! When the sweep includes a `threads = 1` point alongside multi-thread
//! points at the same (N, candidates, head-index, q-rows, rounds, λ)
//! coordinates,
//! the artifact gains `thread_scaling` summary rows: headline pkt/s
//! speedup plus per-phase wall speedups against the single-threaded
//! baseline. `--gate-thread-scaling FLOOR` turns those rows into a CI
//! gate — every multi-thread point at N ≥ 10 000 must reach FLOOR ×
//! the threads = 1 throughput (smaller points warn instead of failing:
//! tiny rounds oversubscribe the workers, see
//! [`SCALING_GATE_MIN_N`]), and a sweep with nothing to gate is an
//! error, not a silent pass.

use qlec_bench::{print_table, write_json, PhaseWall, ProtocolKind, RunSpec};
use qlec_core::params::{CandidatePolicy, HeadIndexMode, QRowsMode, QlecParams};
use qlec_net::Simulator;
use qlec_obs::{
    peak_rss_bytes, AsyncJsonLinesSink, JsonLinesSink, MeasuredSink, MemorySink, ObserverSet,
    Phase, PhaseProfiler, SinkStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version tag of the `BENCH_scale.json` artifact. Bump on any field
/// addition, removal, or semantic change. v2: added `threads` (engine
/// worker count per run) and replaced `candidate_heads` with the
/// `candidates` policy spelling. v3: added `head_index` (spatial-index
/// maintenance mode per run), admitted `legacy-auto` as a candidates
/// spelling, and `peak_rss_bytes` is now omitted — not null — on
/// platforms that cannot report it. v4: added per-phase-per-thread
/// busy spans (`phase_threads`), merge-stage counters
/// (`merge_conflicts`, `merge_retargets`), round-latency quantiles
/// (`round_p50_ns`/`round_p90_ns`/`round_p99_ns`), and optional
/// `events_pipeline` rows measuring the hot-thread cost of the sync vs
/// async full-events sinks (present when `--events-sink` was passed).
/// v5: added `threads_resolved` (the worker count the engine actually
/// used — never 0, so `auto` sweeps record what they ran on), the
/// sharded-merge counters (`merge_shards`, `merge_shard_max`), and the
/// top-level `thread_scaling` summary array (always present; empty when
/// the sweep has no `threads = 1` baseline to compare against).
/// v6: added `q_rows` (`dense` or `sparse`, the decision-Q diagnostic
/// layout) to every run and to the `--compare` matching key, and
/// `--compare` now also gates `peak_rss_bytes` at scale — a matched
/// point with `n ≥ 100 000` fails when its fresh peak RSS grows more
/// than 25 % past the baseline's (skipped when either side lacks the
/// counter).
/// v7: every run now records its own `lambda` (so one artifact can mix
/// congestion levels; `lambda` joins the `--compare` and
/// thread-scaling matching keys), plus the reservation-merge counters
/// `merge_clean_commits` / `merge_residue` and the derived
/// `residue_fraction` (a number on sharded-merge runs, `null` on
/// sequential runs, which never classify). `--compare` gates
/// `residue_fraction` as a regression: a matched point whose fresh
/// fraction grows more than [`RESIDUE_TOLERANCE`] (absolute) past the
/// baseline's fails, and `--gate-thread-scaling` now applies its floor
/// only to rows with `n ≥` [`SCALING_GATE_MIN_N`] (smaller rows warn —
/// see the gate's docs for why small-N inversion is expected).
const SCALE_SCHEMA: &str = "qlec-bench-scale/v7";

/// `--compare` fails on a `packets_per_sec` drop of more than this
/// fraction below the baseline at any matching point.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// `--compare` fails on a `peak_rss_bytes` *growth* of more than this
/// fraction past the baseline at any matching point at or above
/// [`RSS_GATE_MIN_N`] nodes — memory is the whole point of the sparse
/// layouts, so a silent quadratic reappearing must fail CI. Both sides
/// must carry the counter; a platform without it skips the gate, never
/// fails it.
const RSS_TOLERANCE: f64 = 0.25;

/// Smallest `n` the RSS gate applies to. Below this the process
/// high-water mark is dominated by allocator noise and (within one
/// sweep) by whatever larger size ran first, not by per-node state.
const RSS_GATE_MIN_N: usize = 100_000;

/// `--compare` fails when a matched point's `residue_fraction` grows
/// more than this (absolute) past the baseline's. The fraction is a
/// property of the workload (at saturated λ most refusals genuinely
/// need the sequential walk), so the gate is a regression bound on the
/// *classifier* — proven-clean packets silently falling back into the
/// residue — not an absolute target. Skipped when either side's
/// fraction is null (sequential runs never classify).
const RESIDUE_TOLERANCE: f64 = 0.05;

/// Smallest `n` the `--gate-thread-scaling` floor applies to. Below
/// this the per-round fan-out is too small to amortize worker wakeups:
/// at N = 100 a round plans ~100 member packets, so four workers spend
/// more time parking and unparking than planning, and the v6 baseline
/// measured threads = 4 *slower* than threads = 2 (614k vs 766k
/// pkt/s). That inversion is expected oversubscription, not a
/// regression — small-N rows get a warning, never a gate failure.
const SCALING_GATE_MIN_N: u64 = 10_000;

/// One (size, threads, head-index mode) point of the sweep.
#[derive(Debug)]
struct ScaleRun {
    /// Node count N.
    n: usize,
    /// Cluster count k used (scales as N/20, the paper's N=100 → k=5).
    k: usize,
    /// Simulated rounds.
    rounds: u32,
    /// Engine worker threads (`SimConfig::threads`; 0 = all cores).
    threads: usize,
    /// The worker count the engine actually used (`SimReport::threads`)
    /// — never 0, so an `auto` sweep records the machine it ran on.
    threads_resolved: usize,
    /// `Send-Data` candidate pruning policy spelling (`auto`,
    /// `legacy-auto`, `full`, or a fixed budget as an integer string).
    candidates: String,
    /// Spatial-index maintenance mode (`incremental` or `rebuild`).
    head_index: String,
    /// Decision-Q diagnostic row layout (`sparse` or `dense`).
    q_rows: String,
    /// Traffic congestion level λ this run was generated under. v7:
    /// per-row, so one artifact can carry rows at several congestion
    /// levels; part of the `--compare` and thread-scaling keys.
    lambda: f64,
    /// End-to-end wall time of the run, seconds.
    wall_s: f64,
    /// Packets generated over the whole run.
    packets: u64,
    /// Generated packets per wall second — the headline throughput.
    packets_per_sec: f64,
    /// Packet delivery rate, for sanity (pruning must not crater it).
    pdr: f64,
    /// Alive nodes at the end of the run.
    alive_end: usize,
    /// Process peak RSS in bytes after this run (Linux `VmHWM`).
    /// Monotone across the process, so within one sweep the largest N
    /// dominates. Omitted from the JSON on platforms without the
    /// counter.
    peak_rss_bytes: Option<u64>,
    /// Wall nanoseconds per simulation phase, from the obs spans.
    phase_wall: Vec<PhaseWall>,
    /// Busy nanoseconds per (phase path, worker slot), from the
    /// profiler — reveals fan-out imbalance the wall numbers hide.
    phase_threads: Vec<PhaseThreadBusy>,
    /// Merge-stage conflicts (packets rerouted or dropped because their
    /// planned head was gone by merge time).
    merge_conflicts: u64,
    /// Live-continuation retargets applied during the merge.
    merge_retargets: u64,
    /// Disjoint-head commit groups the sharded merge processed (0 when
    /// the run took the sequential merge path, i.e. one worker).
    merge_shards: u64,
    /// Packets in the largest single commit group — shard imbalance.
    merge_shard_max: u64,
    /// Packets the reservation pre-pass proved clean (committed with
    /// asserts, no uncertainty). 0 on the sequential merge path.
    merge_clean_commits: u64,
    /// Packets the pre-pass could not prove clean — the sequential
    /// residue walk's workload. 0 on the sequential merge path.
    merge_residue: u64,
    /// Round-latency quantiles (ns) over the run's rounds.
    round_p50_ns: f64,
    round_p90_ns: f64,
    round_p99_ns: f64,
    /// Hot-thread cost of the full-events sink pipelines; empty unless
    /// `--events-sink` requested the extra measured runs.
    events_pipeline: Vec<EventsPipelineRow>,
}

/// Busy time one worker slot spent in one profiler phase path.
#[derive(Debug, Serialize)]
struct PhaseThreadBusy {
    /// `/`-separated profiler path (`"transmission/plan"`).
    phase: String,
    /// Worker slot (0 = the simulation thread).
    thread: usize,
    busy_ns: u64,
}

/// One measured full-events run: how much the event sink costs the hot
/// simulation thread, and (async only) the writer-queue counters.
#[derive(Debug)]
struct EventsPipelineRow {
    /// `sync` or `async` (block backpressure).
    sink: String,
    /// Events that crossed the hot thread's `on_event`.
    events: u64,
    /// Nanoseconds the hot thread spent inside `on_event`.
    hot_ns: u64,
    /// Queue counters, async pipeline only.
    queue: Option<SinkStats>,
}

// Hand-rolled so the sync row simply has no `queue` field.
impl Serialize for EventsPipelineRow {
    fn to_value(&self) -> serde::Value {
        let per_event = self.hot_ns as f64 / self.events.max(1) as f64;
        let mut fields = vec![
            ("sink".to_string(), self.sink.to_value()),
            ("events".to_string(), self.events.to_value()),
            ("hot_ns".to_string(), self.hot_ns.to_value()),
            ("hot_ns_per_event".to_string(), per_event.to_value()),
        ];
        if let Some(q) = &self.queue {
            fields.push(("queue".to_string(), q.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl ScaleRun {
    /// Residue share of the classified packets, `None` when the run
    /// never ran the reservation pre-pass (sequential merge path).
    fn residue_fraction(&self) -> Option<f64> {
        let total = self.merge_clean_commits + self.merge_residue;
        (total > 0).then(|| self.merge_residue as f64 / total as f64)
    }
}

// Hand-rolled so `peak_rss_bytes: None` drops the field entirely
// instead of writing `null` (the derive cannot skip fields).
impl Serialize for ScaleRun {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("n".to_string(), self.n.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("rounds".to_string(), self.rounds.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            (
                "threads_resolved".to_string(),
                self.threads_resolved.to_value(),
            ),
            ("candidates".to_string(), self.candidates.to_value()),
            ("head_index".to_string(), self.head_index.to_value()),
            ("q_rows".to_string(), self.q_rows.to_value()),
            ("lambda".to_string(), self.lambda.to_value()),
            ("wall_s".to_string(), self.wall_s.to_value()),
            ("packets".to_string(), self.packets.to_value()),
            (
                "packets_per_sec".to_string(),
                self.packets_per_sec.to_value(),
            ),
            ("pdr".to_string(), self.pdr.to_value()),
            ("alive_end".to_string(), self.alive_end.to_value()),
        ];
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes".to_string(), rss.to_value()));
        }
        fields.push(("phase_wall".to_string(), self.phase_wall.to_value()));
        fields.push(("phase_threads".to_string(), self.phase_threads.to_value()));
        fields.push((
            "merge_conflicts".to_string(),
            self.merge_conflicts.to_value(),
        ));
        fields.push((
            "merge_retargets".to_string(),
            self.merge_retargets.to_value(),
        ));
        fields.push(("merge_shards".to_string(), self.merge_shards.to_value()));
        fields.push((
            "merge_shard_max".to_string(),
            self.merge_shard_max.to_value(),
        ));
        fields.push((
            "merge_clean_commits".to_string(),
            self.merge_clean_commits.to_value(),
        ));
        fields.push(("merge_residue".to_string(), self.merge_residue.to_value()));
        // Sequential runs never classify: an explicit null, so every v7
        // row carries the key and `--compare` can tell "not measured"
        // from "measured zero".
        fields.push((
            "residue_fraction".to_string(),
            match self.residue_fraction() {
                Some(f) => f.to_value(),
                None => serde_json::Value::Null,
            },
        ));
        fields.push(("round_p50_ns".to_string(), self.round_p50_ns.to_value()));
        fields.push(("round_p90_ns".to_string(), self.round_p90_ns.to_value()));
        fields.push(("round_p99_ns".to_string(), self.round_p99_ns.to_value()));
        if !self.events_pipeline.is_empty() {
            fields.push((
                "events_pipeline".to_string(),
                self.events_pipeline.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct ScaleReport {
    /// Always [`SCALE_SCHEMA`].
    schema: String,
    /// Traffic congestion level λ (slots between packets per node).
    lambda: f64,
    /// Deployment/protocol base seed.
    seed: u64,
    /// Speedups of the multi-thread points over their `threads = 1`
    /// baselines; empty when the sweep has nothing to compare.
    thread_scaling: Vec<serde_json::Value>,
    /// One entry per requested size, in request order.
    runs: Vec<ScaleRun>,
}

/// [`ScaleReport`] with pre-rendered run values: the `--append` merge
/// path carries the baseline's existing rows through untouched.
#[derive(Serialize)]
struct ScaleReportValue {
    schema: String,
    lambda: f64,
    seed: u64,
    thread_scaling: Vec<serde_json::Value>,
    runs: Vec<serde_json::Value>,
}

/// Compute the `thread_scaling` summary rows from rendered run rows.
///
/// Every run with `threads != 1` is paired with the `threads = 1` run
/// at the same `(n, candidates, head_index, rounds)` coordinates (a
/// `threads = 0` auto run counts as a scaled point — its baseline is
/// still the explicit single-thread row). Unpaired points contribute
/// nothing: speedup against a missing baseline is unmeasurable, not
/// 1.0. Each row carries the headline pkt/s speedup plus per-phase
/// wall speedups for every phase both runs actually spent time in.
///
/// Operating on rendered [`serde_json::Value`] rows (not [`ScaleRun`])
/// means the `--append` path contributes its carried-through baseline
/// rows on equal footing with fresh ones.
fn thread_scaling_rows(runs: &[serde_json::Value]) -> Vec<serde_json::Value> {
    let coords = |r: &serde_json::Value| {
        (
            r["n"].as_u64(),
            r["candidates"].as_str().map(str::to_string),
            r["head_index"].as_str().map(str::to_string),
            r["q_rows"].as_str().map(str::to_string),
            // v7: λ is a per-row coordinate — a λ = 20 demo row must
            // never borrow a λ = 5 single-thread baseline. Bits, so the
            // key stays Eq.
            r["lambda"].as_f64().map(f64::to_bits),
            r["rounds"].as_u64(),
        )
    };
    let phase_wall = |r: &serde_json::Value, phase: &str| -> f64 {
        r["phase_wall"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|w| w["phase"].as_str() == Some(phase))
            .and_then(|w| w["mean_wall_ns"].as_f64())
            .unwrap_or(0.0)
    };
    let mut rows = Vec::new();
    for run in runs {
        if run["threads"].as_u64() == Some(1) {
            continue;
        }
        let Some(base) = runs
            .iter()
            .find(|b| b["threads"].as_u64() == Some(1) && coords(b) == coords(run))
        else {
            continue;
        };
        let pps = run["packets_per_sec"].as_f64().unwrap_or(0.0);
        let base_pps = base["packets_per_sec"].as_f64().unwrap_or(0.0);
        if base_pps <= 0.0 {
            continue;
        }
        let phases: Vec<serde_json::Value> = Phase::ALL
            .iter()
            .filter_map(|&p| {
                let b = phase_wall(base, p.name());
                let s = phase_wall(run, p.name());
                (b > 0.0 && s > 0.0).then(|| {
                    serde_json::Value::Object(vec![
                        ("phase".to_string(), p.name().to_value()),
                        ("speedup".to_string(), (b / s).to_value()),
                    ])
                })
            })
            .collect();
        rows.push(serde_json::Value::Object(vec![
            ("n".to_string(), run["n"].clone()),
            ("threads".to_string(), run["threads"].clone()),
            (
                "threads_resolved".to_string(),
                run["threads_resolved"].clone(),
            ),
            ("candidates".to_string(), run["candidates"].clone()),
            ("head_index".to_string(), run["head_index"].clone()),
            ("lambda".to_string(), run["lambda"].clone()),
            ("packets_per_sec".to_string(), pps.to_value()),
            ("baseline_packets_per_sec".to_string(), base_pps.to_value()),
            ("speedup".to_string(), (pps / base_pps).to_value()),
            ("phases".to_string(), serde_json::Value::Array(phases)),
        ]));
    }
    rows
}

/// `--gate-thread-scaling`: every multi-thread point at `n ≥`
/// [`SCALING_GATE_MIN_N`] must reach `floor` × its single-threaded
/// pkt/s. Smaller points only *warn* when they miss the floor — below
/// ~10k nodes the per-round fan-out cannot amortize worker wakeups, so
/// oversubscription inversion (more threads, fewer pkt/s) is expected,
/// not a regression. `Ok` carries `(failures, warnings)` (empty
/// failures = gate passes); `Err` means the sweep produced no gateable
/// point at all, which would otherwise pass vacuously.
#[allow(clippy::type_complexity)]
fn gate_thread_scaling(
    rows: &[serde_json::Value],
    floor: f64,
) -> Result<(Vec<String>, Vec<String>), String> {
    if rows.is_empty() {
        return Err(
            "nothing to gate: the sweep needs a threads = 1 point and a multi-thread point \
             at the same coordinates (e.g. --threads 1,4)"
                .into(),
        );
    }
    if !rows
        .iter()
        .any(|row| row["n"].as_u64().unwrap_or(0) >= SCALING_GATE_MIN_N)
    {
        return Err(format!(
            "nothing to gate: the floor only applies at N >= {SCALING_GATE_MIN_N} (smaller \
             sweeps oversubscribe and only warn); add a size at or above it"
        ));
    }
    let describe = |row: &serde_json::Value, verdict: &str| {
        format!(
            "N={} threads={}: {:.2}x pkt/s vs threads=1 ({:.0} vs {:.0}), {verdict} the \
             {floor:.2}x floor",
            row["n"].as_u64().unwrap_or(0),
            row["threads"].as_u64().unwrap_or(0),
            row["speedup"].as_f64().unwrap_or(0.0),
            row["packets_per_sec"].as_f64().unwrap_or(0.0),
            row["baseline_packets_per_sec"].as_f64().unwrap_or(0.0),
        )
    };
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    for row in rows {
        if row["speedup"].as_f64().unwrap_or(0.0) >= floor {
            continue;
        }
        if row["n"].as_u64().unwrap_or(0) >= SCALING_GATE_MIN_N {
            failures.push(describe(row, "below"));
        } else {
            warnings.push(describe(
                row,
                "below (expected small-N oversubscription, not gated by)",
            ));
        }
    }
    Ok((failures, warnings))
}

/// The artifact spelling of a candidate policy (also the `--candidates`
/// flag syntax, so baselines and fresh runs compare apples to apples).
fn policy_label(policy: CandidatePolicy) -> String {
    match policy {
        CandidatePolicy::Auto => "auto".into(),
        CandidatePolicy::LegacyAuto => "legacy-auto".into(),
        CandidatePolicy::Full => "full".into(),
        CandidatePolicy::Fixed(c) => c.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_size(
    n: usize,
    rounds: u32,
    candidates: CandidatePolicy,
    head_index: HeadIndexMode,
    q_rows: QRowsMode,
    threads: usize,
    lambda: f64,
    seed: u64,
) -> ScaleRun {
    let k = (n / 20).max(2);
    let mut spec = RunSpec::builder(lambda)
        .nodes(n)
        .k(k)
        .rounds(rounds)
        .seeds(vec![seed])
        .build();
    spec.sim.threads = threads;
    let net = spec.network(seed);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let profiler = Arc::new(PhaseProfiler::new());
    let mut obs = ObserverSet::new().with_profiler(profiler.clone());
    obs.attach(sink.clone());
    let params = QlecParams {
        candidates,
        head_index,
        q_rows,
        ..spec.qlec_params()
    };
    let mut protocol = ProtocolKind::Qlec.build_observed(&params, &obs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let start = Instant::now();
    let report = Simulator::builder(net)
        .config(spec.sim)
        .observers(obs)
        .build()
        .run(protocol.as_mut(), &mut rng);
    let wall_s = start.elapsed().as_secs_f64();
    let sink = sink.lock().expect("metrics sink poisoned");
    let phase_wall = Phase::ALL
        .iter()
        .map(|&p| PhaseWall {
            phase: p.name().to_string(),
            mean_wall_ns: sink.phase_wall_ns(p) as f64,
        })
        .collect();
    let profile = profiler.report();
    let phase_threads = profile
        .phases
        .iter()
        .flat_map(|row| {
            row.busy.iter().map(|b| PhaseThreadBusy {
                phase: row.path.clone(),
                thread: b.thread,
                busy_ns: b.busy_ns,
            })
        })
        .collect();
    let counter = |name: &str| -> u64 {
        profile
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    ScaleRun {
        n,
        k,
        rounds,
        threads,
        threads_resolved: report.threads,
        candidates: policy_label(candidates),
        head_index: head_index.label().to_string(),
        q_rows: q_rows.label().to_string(),
        lambda,
        wall_s,
        packets: report.totals.generated,
        packets_per_sec: report.totals.generated as f64 / wall_s.max(1e-9),
        pdr: report.pdr(),
        alive_end: report.rounds.last().map_or(n, |r| r.alive_end),
        peak_rss_bytes: peak_rss_bytes(),
        phase_wall,
        phase_threads,
        merge_conflicts: counter("merge.conflicts"),
        merge_retargets: counter("merge.retargets"),
        merge_shards: counter("merge.shards"),
        merge_shard_max: counter("merge.shard_max"),
        merge_clean_commits: counter("merge.clean_commits"),
        merge_residue: counter("merge.residue"),
        round_p50_ns: profile.round_latency.p50_ns,
        round_p90_ns: profile.round_latency.p90_ns,
        round_p99_ns: profile.round_latency.p99_ns,
        events_pipeline: Vec::new(),
    }
}

/// Re-run one sweep point once per requested sink pipeline with a
/// full-mode JSON events stream into the bit bucket, measuring what the
/// sink costs the *hot* simulation thread. Block backpressure keeps the
/// async stream complete, so the two rows describe identical event
/// loads.
#[allow(clippy::too_many_arguments)]
fn run_events_pipeline(
    n: usize,
    rounds: u32,
    candidates: CandidatePolicy,
    head_index: HeadIndexMode,
    threads: usize,
    lambda: f64,
    seed: u64,
    kinds: &[String],
) -> Vec<EventsPipelineRow> {
    enum Handle {
        Sync(Arc<Mutex<MeasuredSink<JsonLinesSink<std::io::Sink>>>>),
        Async(Arc<Mutex<MeasuredSink<AsyncJsonLinesSink>>>),
    }
    kinds
        .iter()
        .map(|kind| {
            let k = (n / 20).max(2);
            let mut spec = RunSpec::builder(lambda)
                .nodes(n)
                .k(k)
                .rounds(rounds)
                .seeds(vec![seed])
                .build();
            spec.sim.threads = threads;
            let net = spec.network(seed);
            let inner = JsonLinesSink::new(std::io::sink()).expect("bit bucket accepts header");
            let mut obs = ObserverSet::new();
            let handle = match kind.as_str() {
                "sync" => {
                    let s = Arc::new(Mutex::new(MeasuredSink::new(inner)));
                    obs.attach(s.clone());
                    Handle::Sync(s)
                }
                "async" => {
                    let s = Arc::new(Mutex::new(MeasuredSink::new(AsyncJsonLinesSink::new(
                        inner,
                    ))));
                    obs.attach(s.clone());
                    Handle::Async(s)
                }
                other => die(&format!("--events-sink takes sync or async, got `{other}`")),
            };
            let params = QlecParams {
                candidates,
                head_index,
                ..spec.qlec_params()
            };
            let mut protocol = ProtocolKind::Qlec.build_observed(&params, &obs);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
            let _ = Simulator::builder(net)
                .config(spec.sim)
                .observers(obs.clone())
                .build()
                .run(protocol.as_mut(), &mut rng);
            obs.flush().expect("events pipeline flush");
            match handle {
                Handle::Sync(s) => {
                    let g = s.lock().expect("measured sink poisoned");
                    EventsPipelineRow {
                        sink: "sync".to_string(),
                        events: g.events(),
                        hot_ns: g.hot_ns(),
                        queue: None,
                    }
                }
                Handle::Async(s) => {
                    let g = s.lock().expect("measured sink poisoned");
                    let stats = g.get_ref().stats();
                    EventsPipelineRow {
                        sink: "async".to_string(),
                        events: g.events(),
                        hot_ns: g.hot_ns(),
                        queue: Some(stats),
                    }
                }
            }
        })
        .collect()
}

/// Check a `BENCH_scale.json` text against the v5 schema. Returns a
/// description of the first problem found.
fn validate_scale_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    if v["schema"].as_str() != Some(SCALE_SCHEMA) {
        return Err(format!(
            "schema must be {SCALE_SCHEMA:?}, got {:?}",
            v["schema"]
        ));
    }
    for key in ["lambda", "seed"] {
        if v[key].as_f64().is_none() {
            return Err(format!("missing numeric field {key:?}"));
        }
    }
    let runs = v["runs"]
        .as_array()
        .ok_or_else(|| "runs must be an array".to_string())?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    // v5: the thread-scaling summary is always present — an empty array
    // when the sweep had no threads = 1 baseline, never a missing key.
    let scaling = v["thread_scaling"].as_array().ok_or_else(|| {
        "thread_scaling must be an array (empty when the sweep has no baseline)".to_string()
    })?;
    for (i, row) in scaling.iter().enumerate() {
        for key in [
            "n",
            "threads",
            "threads_resolved",
            "lambda",
            "packets_per_sec",
            "baseline_packets_per_sec",
            "speedup",
        ] {
            if row[key].as_f64().is_none() {
                return Err(format!("thread_scaling[{i}] missing numeric field {key:?}"));
            }
        }
        let phases = row["phases"]
            .as_array()
            .ok_or_else(|| format!("thread_scaling[{i}].phases must be an array"))?;
        for p in phases {
            if p["phase"].as_str().is_none() || p["speedup"].as_f64().is_none() {
                return Err(format!(
                    "thread_scaling[{i}] phase entries need a phase name and a numeric speedup"
                ));
            }
        }
    }
    let phases: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    for (i, run) in runs.iter().enumerate() {
        for key in [
            "n",
            "k",
            "rounds",
            "threads",
            "threads_resolved",
            "lambda",
            "wall_s",
            "packets",
            "packets_per_sec",
            "pdr",
            "alive_end",
            "merge_conflicts",
            "merge_retargets",
            "merge_shards",
            "merge_shard_max",
            "merge_clean_commits",
            "merge_residue",
            "round_p50_ns",
            "round_p90_ns",
            "round_p99_ns",
        ] {
            if run[key].as_f64().is_none() {
                return Err(format!("runs[{i}] missing numeric field {key:?}"));
            }
        }
        // v7: the key must be present — a number on sharded-merge runs,
        // an explicit null on sequential ones (which never classify).
        match run.get("residue_fraction") {
            Some(rf) if rf.is_null() || rf.as_f64().is_some() => {}
            _ => {
                return Err(format!(
                    "runs[{i}].residue_fraction must be a number or null"
                ))
            }
        }
        // "auto" resolves to a concrete worker count before the first
        // round, so a recorded 0 means the run never resolved it.
        if run["threads_resolved"].as_u64() == Some(0) {
            return Err(format!("runs[{i}].threads_resolved must be >= 1"));
        }
        match run["candidates"].as_str() {
            Some(c) if CandidatePolicy::parse(c).is_ok() => {}
            _ => {
                return Err(format!(
                    "runs[{i}].candidates must be auto, legacy-auto, full or a positive integer"
                ))
            }
        }
        match run["head_index"].as_str() {
            Some(m) if HeadIndexMode::parse(m).is_ok() => {}
            _ => {
                return Err(format!(
                    "runs[{i}].head_index must be incremental or rebuild"
                ))
            }
        }
        match run["q_rows"].as_str() {
            Some(m) if QRowsMode::parse(m).is_ok() => {}
            _ => return Err(format!("runs[{i}].q_rows must be sparse or dense")),
        }
        // peak_rss_bytes is optional, but when present it must be a
        // number — v3 forbids the old explicit null.
        if let Some(rss) = run.get("peak_rss_bytes") {
            if rss.as_u64().is_none() {
                return Err(format!(
                    "runs[{i}].peak_rss_bytes must be a non-negative integer when present"
                ));
            }
        }
        let walls = run["phase_wall"]
            .as_array()
            .ok_or_else(|| format!("runs[{i}].phase_wall must be an array"))?;
        let mut seen: Vec<&str> = Vec::new();
        for w in walls {
            let name = w["phase"]
                .as_str()
                .ok_or_else(|| format!("runs[{i}] phase_wall entry without a phase name"))?;
            if w["mean_wall_ns"].as_f64().is_none() {
                return Err(format!("runs[{i}] phase {name:?} missing mean_wall_ns"));
            }
            seen.push(name);
        }
        for p in &phases {
            if !seen.contains(p) {
                return Err(format!("runs[{i}] missing phase {p:?}"));
            }
        }
        let spans = run["phase_threads"]
            .as_array()
            .ok_or_else(|| format!("runs[{i}].phase_threads must be an array"))?;
        for s in spans {
            if s["phase"].as_str().is_none() {
                return Err(format!(
                    "runs[{i}] phase_threads entry without a phase path"
                ));
            }
            for key in ["thread", "busy_ns"] {
                if s[key].as_u64().is_none() {
                    return Err(format!(
                        "runs[{i}] phase_threads entry missing numeric {key:?}"
                    ));
                }
            }
        }
        // events_pipeline is optional (only measured runs carry it);
        // when present the rows must be well-formed.
        if let Some(pipeline) = run.get("events_pipeline") {
            let rows = pipeline
                .as_array()
                .ok_or_else(|| format!("runs[{i}].events_pipeline must be an array"))?;
            for row in rows {
                match row["sink"].as_str() {
                    Some("sync") | Some("async") => {}
                    _ => {
                        return Err(format!(
                            "runs[{i}] events_pipeline sink must be sync or async"
                        ))
                    }
                }
                for key in ["events", "hot_ns", "hot_ns_per_event"] {
                    if row[key].as_f64().is_none() {
                        return Err(format!(
                            "runs[{i}] events_pipeline row missing numeric {key:?}"
                        ));
                    }
                }
                if row["sink"].as_str() == Some("async") {
                    for key in ["enqueued", "processed", "dropped", "blocked", "max_depth"] {
                        if row["queue"][key].as_u64().is_none() {
                            return Err(format!(
                                "runs[{i}] async events_pipeline row missing queue.{key}"
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Compare a fresh sweep against a committed baseline artifact.
///
/// Points are matched on `(n, threads, candidates, head_index, q_rows,
/// lambda, rounds)`; `Ok` carries one message per matched point whose
/// `packets_per_sec` fell more than [`REGRESSION_TOLERANCE`] below the
/// baseline, whose `residue_fraction` grew more than
/// [`RESIDUE_TOLERANCE`] (absolute) past it (both sides must carry a
/// measured fraction — sequential runs' `null` skips the gate), or —
/// at `n ≥` [`RSS_GATE_MIN_N`], when both sides carry the counter —
/// whose `peak_rss_bytes` grew more than [`RSS_TOLERANCE`] past it
/// (empty = gate passes). `Err` means the comparison itself is
/// impossible — unreadable or schema-stale baseline, or no point in
/// common.
fn compare_against_baseline(
    fresh: &[ScaleRun],
    baseline_text: &str,
) -> Result<Vec<String>, String> {
    validate_scale_json(baseline_text).map_err(|e| format!("baseline invalid: {e}"))?;
    let base: serde_json::Value =
        serde_json::from_str(baseline_text).expect("validated baseline parses");
    let base_runs = base["runs"]
        .as_array()
        .expect("validated baseline has runs");
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for run in fresh {
        let Some(b) = base_runs.iter().find(|b| {
            b["n"].as_u64() == Some(run.n as u64)
                && b["threads"].as_u64() == Some(run.threads as u64)
                && b["candidates"].as_str() == Some(run.candidates.as_str())
                && b["head_index"].as_str() == Some(run.head_index.as_str())
                && b["q_rows"].as_str() == Some(run.q_rows.as_str())
                && b["lambda"].as_f64().map(f64::to_bits) == Some(run.lambda.to_bits())
                && b["rounds"].as_u64() == Some(run.rounds as u64)
        }) else {
            continue;
        };
        matched += 1;
        let base_pps = b["packets_per_sec"].as_f64().expect("validated numeric");
        let floor = base_pps * (1.0 - REGRESSION_TOLERANCE);
        if run.packets_per_sec < floor {
            regressions.push(format!(
                "N={} threads={} candidates={} head-index={} q-rows={}: {:.0} packets/s vs \
                 baseline {:.0} (below the {:.0}% floor {:.0})",
                run.n,
                run.threads,
                run.candidates,
                run.head_index,
                run.q_rows,
                run.packets_per_sec,
                base_pps,
                (1.0 - REGRESSION_TOLERANCE) * 100.0,
                floor,
            ));
        }
        if let (Some(fresh_rf), Some(base_rf)) =
            (run.residue_fraction(), b["residue_fraction"].as_f64())
        {
            if fresh_rf > base_rf + RESIDUE_TOLERANCE {
                regressions.push(format!(
                    "N={} threads={} candidates={} head-index={} q-rows={} lambda={}: residue \
                     fraction {:.3} vs baseline {:.3} (above the +{:.2} absolute ceiling — \
                     proven-clean packets are falling back into the residue)",
                    run.n,
                    run.threads,
                    run.candidates,
                    run.head_index,
                    run.q_rows,
                    run.lambda,
                    fresh_rf,
                    base_rf,
                    RESIDUE_TOLERANCE,
                ));
            }
        }
        if run.n >= RSS_GATE_MIN_N {
            if let (Some(rss), Some(base_rss)) = (run.peak_rss_bytes, b["peak_rss_bytes"].as_u64())
            {
                let ceiling = base_rss as f64 * (1.0 + RSS_TOLERANCE);
                if rss as f64 > ceiling {
                    regressions.push(format!(
                        "N={} threads={} candidates={} head-index={} q-rows={}: peak RSS \
                         {:.1} MB vs baseline {:.1} MB (above the +{:.0}% ceiling {:.1} MB)",
                        run.n,
                        run.threads,
                        run.candidates,
                        run.head_index,
                        run.q_rows,
                        rss as f64 / 1e6,
                        base_rss as f64 / 1e6,
                        RSS_TOLERANCE * 100.0,
                        ceiling / 1e6,
                    ));
                }
            }
        }
    }
    if matched == 0 {
        return Err(
            "no (n, threads, candidates, head_index, q_rows, lambda, rounds) point in common \
             with the baseline"
                .into(),
        );
    }
    Ok(regressions)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Bad invocation: structured message on stderr, exit 2, no panic.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parse a comma-separated list of positive integers for `flag`.
fn positive_list(text: &str, flag: &str) -> Vec<usize> {
    let items: Vec<usize> = text
        .split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => die(&format!("{flag} takes positive integers, got `{s}`")),
        })
        .collect();
    if items.is_empty() {
        die(&format!("{flag} must name at least one value"));
    }
    items
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = positive_list(
        &flag_value(&args, "--sizes").unwrap_or_else(|| "100,1000,10000".into()),
        "--sizes",
    );
    let threads_list: Vec<usize> = flag_value(&args, "--threads")
        .unwrap_or_else(|| "1".into())
        .split(',')
        .map(|s| match s.trim() {
            // The engine spells "all cores" as 0; accept `auto` too.
            "auto" => 0,
            t => t
                .parse()
                .unwrap_or_else(|_| die(&format!("--threads takes integers or auto, got `{t}`"))),
        })
        .collect();
    let rounds: u32 = flag_value(&args, "--rounds").map_or(20, |s| match s.parse() {
        Ok(r) if r > 0 => r,
        _ => die(&format!("--rounds takes a positive integer, got `{s}`")),
    });
    let candidates = flag_value(&args, "--candidates").map_or(CandidatePolicy::Fixed(8), |s| {
        CandidatePolicy::parse(&s).unwrap_or_else(|e| die(&format!("--candidates: {e}")))
    });
    let head_modes: Vec<HeadIndexMode> = flag_value(&args, "--head-index")
        .unwrap_or_else(|| "incremental".into())
        .split(',')
        .map(|s| {
            HeadIndexMode::parse(s.trim()).unwrap_or_else(|e| die(&format!("--head-index: {e}")))
        })
        .collect();
    let q_rows_modes: Vec<QRowsMode> = flag_value(&args, "--q-rows")
        .unwrap_or_else(|| "sparse".into())
        .split(',')
        .map(|s| QRowsMode::parse(s.trim()).unwrap_or_else(|e| die(&format!("--q-rows: {e}"))))
        .collect();
    // Refuse an infeasible sweep up front — the dense oracle needs
    // n·(n+1) Q-entries, which the protocol rejects past its hard cap.
    if q_rows_modes.contains(&QRowsMode::Dense) {
        for &n in &sizes {
            let feasible = n
                .checked_add(1)
                .and_then(|cols| n.checked_mul(cols))
                .is_some_and(|entries| entries <= qlec_core::qrouting::MAX_DENSE_Q_ENTRIES);
            if !feasible {
                die(&format!(
                    "--q-rows dense needs {n}·({n}+1) Q-entries at N = {n}, above the {}-entry \
                     cap; drop dense or the size",
                    qlec_core::qrouting::MAX_DENSE_Q_ENTRIES
                ));
            }
        }
    }
    let lambda: f64 = flag_value(&args, "--lambda").map_or(5.0, |s| match s.parse() {
        Ok(l) if l > 0.0 => l,
        _ => die(&format!("--lambda takes a positive number, got `{s}`")),
    });
    let seed: u64 = flag_value(&args, "--seed").map_or(42, |s| {
        s.parse()
            .unwrap_or_else(|_| die(&format!("--seed takes an integer, got `{s}`")))
    });
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_scale.json".into());
    let events_sinks: Option<Vec<String>> = flag_value(&args, "--events-sink").map(|text| {
        text.split(',')
            .map(|s| match s.trim() {
                kind @ ("sync" | "async") => kind.to_string(),
                other => die(&format!("--events-sink takes sync or async, got `{other}`")),
            })
            .collect()
    });

    let gate_floor: Option<f64> =
        flag_value(&args, "--gate-thread-scaling").map(|s| match s.parse::<f64>() {
            Ok(f) if f > 0.0 => f,
            _ => die(&format!(
                "--gate-thread-scaling takes a positive number, got `{s}`"
            )),
        });

    let mut report = ScaleReport {
        schema: SCALE_SCHEMA.to_string(),
        lambda,
        seed,
        thread_scaling: Vec::new(),
        runs: Vec::new(),
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        for &threads in &threads_list {
            for &mode in &head_modes {
                for &q_mode in &q_rows_modes {
                    let mut run =
                        run_size(n, rounds, candidates, mode, q_mode, threads, lambda, seed);
                    eprintln!(
                        "N = {n:>6} × {threads} thread(s), {}, q-rows {}: {:.2}s wall, \
                         {:.0} packets/s",
                        run.head_index, run.q_rows, run.wall_s, run.packets_per_sec
                    );
                    if let Some(kinds) = &events_sinks {
                        run.events_pipeline = run_events_pipeline(
                            n, rounds, candidates, mode, threads, lambda, seed, kinds,
                        );
                        for row in &run.events_pipeline {
                            eprintln!(
                                "    events via {:<5}: {:>9} events, {:.1} ms on the hot thread \
                                 ({:.0} ns/event)",
                                row.sink,
                                row.events,
                                row.hot_ns as f64 / 1e6,
                                row.hot_ns as f64 / row.events.max(1) as f64,
                            );
                        }
                    }
                    rows.push(vec![
                        run.n.to_string(),
                        run.k.to_string(),
                        run.threads.to_string(),
                        run.head_index.clone(),
                        run.q_rows.clone(),
                        format!("{:.2}s", run.wall_s),
                        run.packets.to_string(),
                        format!("{:.0}", run.packets_per_sec),
                        format!("{:.4}", run.pdr),
                        run.peak_rss_bytes
                            .map_or("n/a".into(), |b| format!("{:.1}", b as f64 / 1e6)),
                    ]);
                    report.runs.push(run);
                }
            }
        }
    }
    print_table(
        &format!(
            "scale sweep ({rounds} rounds, candidates = {}, λ = {lambda})",
            policy_label(candidates)
        ),
        &[
            "N",
            "k",
            "thr",
            "index",
            "q-rows",
            "wall",
            "packets",
            "pkt/s",
            "PDR",
            "peak RSS (MB)",
        ],
        &rows,
    );

    // --append folds the fresh runs into an existing same-schema
    // artifact instead of replacing it (used to add the expensive
    // N = 100k points without re-running the whole sweep). The
    // thread-scaling summary is recomputed over the merged run set, so
    // appended points pick up baselines from the prior rows too.
    let fresh: Vec<serde_json::Value> = report.runs.iter().map(|r| r.to_value()).collect();
    let all_runs = if args.iter().any(|a| a == "--append") {
        match std::fs::read_to_string(&out) {
            Ok(existing) => {
                if let Err(e) = validate_scale_json(&existing) {
                    die(&format!("--append: existing {out} is invalid: {e}"));
                }
                let prior: serde_json::Value =
                    serde_json::from_str(&existing).expect("validated artifact parses");
                let mut merged = prior["runs"].as_array().expect("validated").to_vec();
                merged.extend(fresh);
                merged
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => fresh,
            Err(e) => die(&format!("--append: cannot read {out}: {e}")),
        }
    } else {
        fresh
    };
    let scaling = thread_scaling_rows(&all_runs);
    for row in &scaling {
        eprintln!(
            "thread scaling: N = {:>6} × {} thread(s): {:.2}x pkt/s vs threads = 1",
            row["n"].as_u64().unwrap_or(0),
            row["threads"].as_u64().unwrap_or(0),
            row["speedup"].as_f64().unwrap_or(0.0),
        );
    }
    write_json(
        &out,
        &ScaleReportValue {
            schema: SCALE_SCHEMA.to_string(),
            lambda,
            seed,
            thread_scaling: scaling.clone(),
            runs: all_runs,
        },
    );

    if args.iter().any(|a| a == "--validate") {
        let text = std::fs::read_to_string(&out).expect("artifact just written");
        match validate_scale_json(&text) {
            Ok(()) => println!("[{out} validates against {SCALE_SCHEMA}]"),
            Err(e) => {
                eprintln!("error: {out} failed schema validation: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(floor) = gate_floor {
        match gate_thread_scaling(&scaling, floor) {
            Ok((failures, warnings)) => {
                for w in &warnings {
                    eprintln!("warning: thread scaling: {w}");
                }
                if failures.is_empty() {
                    println!("[thread-scaling gate passes at {floor:.2}x]");
                } else {
                    for f in &failures {
                        eprintln!("error: thread scaling: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => die(&e),
        }
    }

    if let Some(baseline) = flag_value(&args, "--compare") {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("--compare {baseline}: {e}"));
        match compare_against_baseline(&report.runs, &text) {
            Ok(regressions) if regressions.is_empty() => {
                println!("[no packets/s regression vs {baseline}]");
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("error: regression: {r}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: cannot compare against {baseline}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_run(threads: usize, mode: HeadIndexMode) -> ScaleRun {
        tiny_run_q(threads, mode, QRowsMode::Sparse)
    }

    fn tiny_run_q(threads: usize, mode: HeadIndexMode, q_rows: QRowsMode) -> ScaleRun {
        run_size(
            30,
            2,
            CandidatePolicy::Fixed(4),
            mode,
            q_rows,
            threads,
            8.0,
            7,
        )
    }

    #[test]
    fn a_tiny_run_produces_a_valid_artifact() {
        let run = tiny_run(1, HeadIndexMode::Incremental);
        let report = ScaleReport {
            schema: SCALE_SCHEMA.to_string(),
            lambda: 8.0,
            seed: 7,
            thread_scaling: Vec::new(),
            runs: vec![run],
        };
        let text = serde_json::to_string_pretty(&report).unwrap();
        validate_scale_json(&text).expect("fresh artifact must validate");
        let r = &report.runs[0];
        assert!(r.wall_s > 0.0);
        assert!(r.packets > 0);
        assert_eq!(r.threads, 1);
        assert_eq!(r.threads_resolved, 1);
        assert_eq!(r.candidates, "4");
        assert_eq!(r.head_index, "incremental");
        assert_eq!(r.q_rows, "sparse");
        assert_eq!(r.phase_wall.len(), Phase::ALL.len());
        assert!(
            r.phase_threads
                .iter()
                .any(|s| s.phase == "transmission/plan"),
            "profiler spans must reach the artifact: {:?}",
            r.phase_threads
        );
        assert!(r.round_p50_ns > 0.0);
        assert!(r.round_p99_ns >= r.round_p50_ns);
    }

    #[test]
    fn events_pipeline_rows_measure_both_sinks() {
        let kinds = ["sync".to_string(), "async".to_string()];
        let rows = run_events_pipeline(
            30,
            2,
            CandidatePolicy::Fixed(4),
            HeadIndexMode::Incremental,
            1,
            8.0,
            7,
            &kinds,
        );
        assert_eq!(rows.len(), 2);
        let sync = &rows[0];
        let asynk = &rows[1];
        assert_eq!(sync.sink, "sync");
        assert!(sync.events > 0);
        assert!(sync.queue.is_none());
        assert_eq!(asynk.sink, "async");
        // Identical simulation, identical event load.
        assert_eq!(asynk.events, sync.events);
        let queue = asynk.queue.as_ref().expect("async row carries counters");
        assert_eq!(queue.enqueued, asynk.events);
        assert_eq!(queue.processed, asynk.events);
        assert_eq!(queue.dropped, 0);
        // Serialized, only the async row has a queue object.
        assert!(sync.to_value().get("queue").is_none());
        assert!(asynk.to_value().get("queue").is_some());
        assert!(sync.to_value()["hot_ns_per_event"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn both_index_modes_produce_identical_reports() {
        let inc = tiny_run(1, HeadIndexMode::Incremental);
        let reb = tiny_run(1, HeadIndexMode::Rebuild);
        assert_eq!(inc.packets, reb.packets);
        assert_eq!(inc.pdr, reb.pdr);
        assert_eq!(inc.alive_end, reb.alive_end);
    }

    #[test]
    fn peak_rss_is_omitted_when_unavailable() {
        let mut run = tiny_run(1, HeadIndexMode::Incremental);
        run.peak_rss_bytes = None;
        let v = run.to_value();
        assert!(
            v.get("peak_rss_bytes").is_none(),
            "absent RSS must drop the field, not write null"
        );
        run.peak_rss_bytes = Some(123);
        assert_eq!(run.to_value()["peak_rss_bytes"].as_u64(), Some(123));
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let run = tiny_run(1, HeadIndexMode::Incremental);
        let pps = run.packets_per_sec;
        let baseline = |base_pps: f64| {
            let mut base_run = tiny_run(1, HeadIndexMode::Incremental);
            base_run.packets_per_sec = base_pps;
            serde_json::to_string(&ScaleReport {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![base_run],
            })
            .unwrap()
        };
        let fresh = std::slice::from_ref(&run);
        // Fresh matches (or beats) the baseline: no regression.
        assert_eq!(
            compare_against_baseline(fresh, &baseline(pps)).unwrap(),
            Vec::<String>::new()
        );
        // Baseline 10× faster: well past the 20% floor.
        let msgs = compare_against_baseline(fresh, &baseline(pps * 10.0)).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("N=30"), "{}", msgs[0]);
        // A drop within tolerance (fresh at ~83% of baseline) passes.
        assert!(compare_against_baseline(fresh, &baseline(pps * 1.2))
            .unwrap()
            .is_empty());
        // No matching point (threads, head-index mode, q-rows layout,
        // or — v7 — λ differ) → a hard error, not a silent pass.
        let other_lambda = {
            let mut r = tiny_run(1, HeadIndexMode::Incremental);
            r.lambda = 9.0;
            r
        };
        for other_run in [
            tiny_run(2, HeadIndexMode::Incremental),
            tiny_run(1, HeadIndexMode::Rebuild),
            tiny_run_q(1, HeadIndexMode::Incremental, QRowsMode::Dense),
            other_lambda,
        ] {
            let other = serde_json::to_string(&ScaleReport {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![other_run],
            })
            .unwrap();
            assert!(compare_against_baseline(fresh, &other).is_err());
        }
        // Stale-schema baselines are rejected outright.
        assert!(compare_against_baseline(fresh, "{\"schema\":\"qlec-bench-scale/v2\"}").is_err());
    }

    #[test]
    fn validator_rejects_broken_artifacts() {
        assert!(validate_scale_json("not json").is_err());
        assert!(validate_scale_json("{\"schema\":\"other/v0\"}").is_err());
        let no_runs =
            format!("{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\"runs\":[]}}");
        assert!(validate_scale_json(&no_runs).is_err());
        let bad_run = format!(
            "{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\
             \"thread_scaling\":[],\"runs\":[{{\"n\":10}}]}}"
        );
        let err = validate_scale_json(&bad_run).unwrap_err();
        assert!(err.contains("missing numeric field"), "{err}");
    }

    type Fields = Vec<(String, serde_json::Value)>;

    #[test]
    fn validator_enforces_v3_fields() {
        // A v3 row without head_index, and one with an explicit null
        // peak_rss_bytes, must both be rejected.
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let render = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match base.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            let report = ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            };
            serde_json::to_string(&report).unwrap()
        };
        let no_mode = render(&|fields| fields.retain(|(k, _)| k != "head_index"));
        let err = validate_scale_json(&no_mode).unwrap_err();
        assert!(err.contains("head_index"), "{err}");
        let null_rss = render(&|fields| {
            fields.retain(|(k, _)| k != "peak_rss_bytes");
            fields.push(("peak_rss_bytes".into(), serde_json::Value::Null));
        });
        let err = validate_scale_json(&null_rss).unwrap_err();
        assert!(err.contains("peak_rss_bytes"), "{err}");
    }

    #[test]
    fn validator_enforces_v4_fields() {
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let render = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match base.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            let report = ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            };
            serde_json::to_string(&report).unwrap()
        };
        for missing in [
            "phase_threads",
            "merge_conflicts",
            "merge_retargets",
            "round_p50_ns",
            "round_p99_ns",
        ] {
            let text = render(&|fields| fields.retain(|(k, _)| k != missing));
            let err = validate_scale_json(&text).unwrap_err();
            assert!(err.contains(missing), "{missing}: {err}");
        }
        // An events_pipeline row that claims async must carry counters.
        let bad_pipeline = render(&|fields| {
            fields.push((
                "events_pipeline".into(),
                serde_json::to_value(&vec![EventsPipelineRow {
                    sink: "async".into(),
                    events: 10,
                    hot_ns: 100,
                    queue: None,
                }])
                .unwrap(),
            ));
        });
        let err = validate_scale_json(&bad_pipeline).unwrap_err();
        assert!(err.contains("queue"), "{err}");
        // A well-formed pipeline pair passes.
        let good_pipeline = render(&|fields| {
            fields.push((
                "events_pipeline".into(),
                serde_json::to_value(&vec![
                    EventsPipelineRow {
                        sink: "sync".into(),
                        events: 10,
                        hot_ns: 100,
                        queue: None,
                    },
                    EventsPipelineRow {
                        sink: "async".into(),
                        events: 10,
                        hot_ns: 50,
                        queue: Some(SinkStats {
                            enqueued: 10,
                            processed: 10,
                            dropped: 0,
                            blocked: 0,
                            max_depth: 3,
                            written_lines: 10,
                        }),
                    },
                ])
                .unwrap(),
            ));
        });
        validate_scale_json(&good_pipeline).expect("well-formed pipeline rows validate");
    }

    #[test]
    fn validator_enforces_v5_fields() {
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let render = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match base.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            let report = ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            };
            serde_json::to_string(&report).unwrap()
        };
        for missing in ["threads_resolved", "merge_shards", "merge_shard_max"] {
            let text = render(&|fields| fields.retain(|(k, _)| k != missing));
            let err = validate_scale_json(&text).unwrap_err();
            assert!(err.contains(missing), "{missing}: {err}");
        }
        // A recorded 0 means the run never resolved `auto` — rejected.
        let zero = render(&|fields| {
            fields.retain(|(k, _)| k != "threads_resolved");
            fields.push(("threads_resolved".into(), 0u64.to_value()));
        });
        let err = validate_scale_json(&zero).unwrap_err();
        assert!(err.contains("threads_resolved"), "{err}");
        // The thread_scaling key itself is mandatory, even when empty.
        let valid = render(&|_| {});
        let mut v: serde_json::Value = serde_json::from_str(&valid).unwrap();
        if let serde_json::Value::Object(top) = &mut v {
            top.retain(|(k, _)| k != "thread_scaling");
        }
        let err = validate_scale_json(&serde_json::to_string(&v).unwrap()).unwrap_err();
        assert!(err.contains("thread_scaling"), "{err}");
        // A malformed scaling row (no speedup) is rejected.
        let mut v: serde_json::Value = serde_json::from_str(&valid).unwrap();
        if let serde_json::Value::Object(top) = &mut v {
            top.retain(|(k, _)| k != "thread_scaling");
            top.push((
                "thread_scaling".into(),
                serde_json::Value::Array(vec![serde_json::Value::Object(vec![(
                    "n".into(),
                    30u64.to_value(),
                )])]),
            ));
        }
        let err = validate_scale_json(&serde_json::to_string(&v).unwrap()).unwrap_err();
        assert!(err.contains("thread_scaling[0]"), "{err}");
    }

    #[test]
    fn validator_enforces_v6_fields() {
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let render = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match base.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            let report = ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            };
            serde_json::to_string(&report).unwrap()
        };
        // A v6 row must name its Q-row layout …
        let no_q_rows = render(&|fields| fields.retain(|(k, _)| k != "q_rows"));
        let err = validate_scale_json(&no_q_rows).unwrap_err();
        assert!(err.contains("q_rows"), "{err}");
        // … with a recognized spelling.
        let bad_q_rows = render(&|fields| {
            fields.retain(|(k, _)| k != "q_rows");
            fields.push(("q_rows".into(), "huge".to_value()));
        });
        let err = validate_scale_json(&bad_q_rows).unwrap_err();
        assert!(err.contains("sparse or dense"), "{err}");
        validate_scale_json(&render(&|_| {})).expect("untouched row validates");
    }

    #[test]
    fn validator_enforces_v7_fields() {
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let render = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match base.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            let report = ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            };
            serde_json::to_string(&report).unwrap()
        };
        // Every v7 row carries its own λ and the reservation counters.
        for missing in ["lambda", "merge_clean_commits", "merge_residue"] {
            let text = render(&|fields| fields.retain(|(k, _)| k != missing));
            let err = validate_scale_json(&text).unwrap_err();
            assert!(err.contains(missing), "{missing}: {err}");
        }
        // residue_fraction must be present — number or explicit null,
        // never a missing key or a string.
        let absent = render(&|fields| fields.retain(|(k, _)| k != "residue_fraction"));
        let err = validate_scale_json(&absent).unwrap_err();
        assert!(err.contains("residue_fraction"), "{err}");
        let stringy = render(&|fields| {
            fields.retain(|(k, _)| k != "residue_fraction");
            fields.push(("residue_fraction".into(), "0.7".to_value()));
        });
        let err = validate_scale_json(&stringy).unwrap_err();
        assert!(err.contains("residue_fraction"), "{err}");
        // A sequential run's null fraction validates.
        validate_scale_json(&render(&|_| {})).expect("null residue_fraction validates");
    }

    /// The v7 residue gate: a matched point whose residue fraction
    /// grows more than the absolute tolerance past the baseline fails;
    /// growth within it passes, and a null on either side (sequential
    /// runs never classify) skips the gate.
    #[test]
    fn compare_gates_residue_fraction_growth() {
        let mut run = tiny_run(1, HeadIndexMode::Incremental);
        run.merge_clean_commits = 25;
        run.merge_residue = 75;
        assert_eq!(run.residue_fraction(), Some(0.75));
        let baseline = |clean: u64, residue: u64| {
            let mut base_run = tiny_run(1, HeadIndexMode::Incremental);
            base_run.merge_clean_commits = clean;
            base_run.merge_residue = residue;
            serde_json::to_string(&ScaleReport {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![base_run],
            })
            .unwrap()
        };
        let fresh = std::slice::from_ref(&run);
        // Identical fraction: passes.
        assert!(compare_against_baseline(fresh, &baseline(25, 75))
            .unwrap()
            .is_empty());
        // +3 points of residue (0.72 -> 0.75): inside the 0.05 ceiling.
        assert!(compare_against_baseline(fresh, &baseline(28, 72))
            .unwrap()
            .is_empty());
        // Baseline 0.60: fresh 0.75 is 15 points worse — gate fires.
        let msgs = compare_against_baseline(fresh, &baseline(40, 60)).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("residue fraction"), "{}", msgs[0]);
        // A sequential baseline (null fraction) cannot gate — skip.
        assert!(compare_against_baseline(fresh, &baseline(0, 0))
            .unwrap()
            .is_empty());
        // And a sequential fresh run is never gated either.
        let seq = tiny_run(1, HeadIndexMode::Incremental);
        assert_eq!(seq.residue_fraction(), None);
        assert!(
            compare_against_baseline(std::slice::from_ref(&seq), &baseline(40, 60))
                .unwrap()
                .is_empty()
        );
    }

    /// The v6 peak-RSS gate: at `n ≥ 100 000` a matched point whose
    /// fresh RSS grew more than 25 % past the baseline fails; growth
    /// within tolerance, a small-`n` point, or a baseline without the
    /// counter all pass.
    #[test]
    fn compare_gates_peak_rss_growth_at_scale() {
        let mut run = tiny_run(1, HeadIndexMode::Incremental);
        run.n = RSS_GATE_MIN_N;
        run.peak_rss_bytes = Some(1_000_000_000);
        let baseline = |mutate: &dyn Fn(&mut Fields)| {
            let mut fields = match run.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("runs serialize to objects"),
            };
            mutate(&mut fields);
            serde_json::to_string(&ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            })
            .unwrap()
        };
        let with_rss = |rss: Option<u64>| {
            baseline(&move |fields| {
                fields.retain(|(k, _)| k != "peak_rss_bytes");
                if let Some(b) = rss {
                    fields.push(("peak_rss_bytes".into(), b.to_value()));
                }
            })
        };
        let fresh = std::slice::from_ref(&run);
        // Identical RSS: passes.
        assert!(
            compare_against_baseline(fresh, &with_rss(Some(1_000_000_000)))
                .unwrap()
                .is_empty()
        );
        // +11 % growth (baseline 0.9 GB): inside the 25 % ceiling.
        assert!(
            compare_against_baseline(fresh, &with_rss(Some(900_000_000)))
                .unwrap()
                .is_empty()
        );
        // +43 % growth (baseline 0.7 GB): gate fires with the point named.
        let msgs = compare_against_baseline(fresh, &with_rss(Some(700_000_000))).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("peak RSS"), "{}", msgs[0]);
        assert!(msgs[0].contains("q-rows=sparse"), "{}", msgs[0]);
        // A baseline without the counter cannot gate — skip, not fail.
        assert!(compare_against_baseline(fresh, &with_rss(None))
            .unwrap()
            .is_empty());
        // Below the gate's n floor the same growth is allocator noise.
        let mut small = tiny_run(1, HeadIndexMode::Incremental);
        small.peak_rss_bytes = Some(1_000_000_000);
        let small_base = {
            let mut fields = match small.to_value() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!(),
            };
            fields.retain(|(k, _)| k != "peak_rss_bytes");
            fields.push(("peak_rss_bytes".into(), 700_000_000u64.to_value()));
            serde_json::to_string(&ScaleReportValue {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                thread_scaling: Vec::new(),
                runs: vec![serde_json::Value::Object(fields)],
            })
            .unwrap()
        };
        assert!(
            compare_against_baseline(std::slice::from_ref(&small), &small_base)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn thread_scaling_rows_pair_points_with_their_baselines() {
        let base = tiny_run(1, HeadIndexMode::Incremental);
        let mut fast = tiny_run(2, HeadIndexMode::Incremental);
        // Pin the headline numbers so the speedup is exact.
        fast.packets_per_sec = base.packets_per_sec * 2.0;
        let rows = thread_scaling_rows(&[base.to_value(), fast.to_value()]);
        assert_eq!(rows.len(), 1, "one scaled point, one row");
        let row = &rows[0];
        assert_eq!(row["n"].as_u64(), Some(30));
        assert_eq!(row["threads"].as_u64(), Some(2));
        assert_eq!(row["threads_resolved"].as_u64(), Some(2));
        let speedup = row["speedup"].as_f64().unwrap();
        assert!((speedup - 2.0).abs() < 1e-9, "{speedup}");
        let phases = row["phases"].as_array().unwrap();
        assert!(!phases.is_empty(), "both runs spent time in some phase");
        for p in phases {
            assert!(p["speedup"].as_f64().unwrap() > 0.0);
        }
        // A scaled point with no threads = 1 partner contributes
        // nothing (a rebuild-mode run has different coordinates).
        let orphan = tiny_run(2, HeadIndexMode::Rebuild);
        assert!(thread_scaling_rows(&[base.to_value(), orphan.to_value()]).is_empty());
        // v7: λ is part of the pairing key — a baseline at a different
        // congestion level is no baseline at all.
        let other_lambda = run_size(
            30,
            2,
            CandidatePolicy::Fixed(4),
            HeadIndexMode::Incremental,
            QRowsMode::Sparse,
            2,
            9.0,
            7,
        );
        assert!(thread_scaling_rows(&[base.to_value(), other_lambda.to_value()]).is_empty());
        // The gate refuses to pass vacuously on an empty summary, and —
        // v7 — on a summary with no row at the N >= 10k gate floor.
        assert!(gate_thread_scaling(&[], 1.3).is_err());
        let err = gate_thread_scaling(&rows, 1.5).unwrap_err();
        assert!(err.contains("10000"), "{err}");
        // At gateable N the floor fails points below it and passes
        // points above; a small-N point missing the floor only warns.
        let resize = |row: &serde_json::Value, n: u64| {
            let mut fields = match row.clone() {
                serde_json::Value::Object(fields) => fields,
                _ => unreachable!("scaling rows serialize to objects"),
            };
            fields.retain(|(k, _)| k != "n");
            fields.push(("n".into(), n.to_value()));
            serde_json::Value::Object(fields)
        };
        let gated: Vec<serde_json::Value> = rows.iter().map(|r| resize(r, 10_000)).collect();
        let (failures, warnings) = gate_thread_scaling(&gated, 1.5).unwrap();
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(warnings, Vec::<String>::new());
        let (failures, warnings) = gate_thread_scaling(&gated, 2.5).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].contains("below the 2.50x floor"),
            "{}",
            failures[0]
        );
        assert!(warnings.is_empty());
        // Mixed sweep: the small point warns, the large one gates.
        let mixed: Vec<serde_json::Value> = vec![resize(&rows[0], 100), resize(&rows[0], 10_000)];
        let (failures, warnings) = gate_thread_scaling(&mixed, 2.5).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("oversubscription"), "{}", warnings[0]);
    }

    #[test]
    fn flag_parsing_finds_values() {
        let args: Vec<String> = ["--sizes", "100,200", "--validate", "--rounds", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--sizes").as_deref(), Some("100,200"));
        assert_eq!(flag_value(&args, "--rounds").as_deref(), Some("3"));
        assert_eq!(flag_value(&args, "--out"), None);
    }
}
