//! Scaling benchmark: the perf-trajectory harness for large deployments.
//!
//! Runs the paper-shaped QLEC configuration at N ∈ {100, 1k, 10k} (by
//! default) with `Send-Data` candidate pruning enabled, and emits
//! `BENCH_scale.json`: per-phase wall time (from the `qlec-obs` phase
//! spans), peak RSS, and packet throughput for each (size, threads)
//! point. CI smoke-runs it at N = 100 and validates the artifact
//! against the schema, and the regression gate re-runs the committed
//! baseline's N = 100 point with `--compare`; the full sweep is the
//! cross-PR performance trajectory.
//!
//! Usage: `cargo run --release -p qlec-bench --bin scale -- \
//!     [--sizes 100,1000,10000] [--threads 1] [--rounds 20] \
//!     [--candidates auto|full|<n>] [--lambda 5] [--seed 42] \
//!     [--out BENCH_scale.json] [--validate] [--compare BASE.json]`

use qlec_bench::{print_table, write_json, PhaseWall, ProtocolKind, RunSpec};
use qlec_core::params::{CandidatePolicy, QlecParams};
use qlec_net::Simulator;
use qlec_obs::{peak_rss_bytes, MemorySink, ObserverSet, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version tag of the `BENCH_scale.json` artifact. Bump on any field
/// addition, removal, or semantic change. v2: added `threads` (engine
/// worker count per run) and replaced `candidate_heads` with the
/// `candidates` policy spelling (`auto`, `full`, or a fixed budget).
const SCALE_SCHEMA: &str = "qlec-bench-scale/v2";

/// `--compare` fails on a `packets_per_sec` drop of more than this
/// fraction below the baseline at any matching point.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// One (size, threads) point of the sweep.
#[derive(Debug, Serialize)]
struct ScaleRun {
    /// Node count N.
    n: usize,
    /// Cluster count k used (scales as N/20, the paper's N=100 → k=5).
    k: usize,
    /// Simulated rounds.
    rounds: u32,
    /// Engine worker threads (`SimConfig::threads`; 0 = all cores).
    threads: usize,
    /// `Send-Data` candidate pruning policy spelling (`auto`, `full`,
    /// or a fixed budget as an integer string).
    candidates: String,
    /// End-to-end wall time of the run, seconds.
    wall_s: f64,
    /// Packets generated over the whole run.
    packets: u64,
    /// Generated packets per wall second — the headline throughput.
    packets_per_sec: f64,
    /// Packet delivery rate, for sanity (pruning must not crater it).
    pdr: f64,
    /// Alive nodes at the end of the run.
    alive_end: usize,
    /// Process peak RSS in bytes after this run (Linux `VmHWM`; null
    /// elsewhere). Monotone across the process, so within one sweep the
    /// largest N dominates.
    peak_rss_bytes: Option<u64>,
    /// Wall nanoseconds per simulation phase, from the obs spans.
    phase_wall: Vec<PhaseWall>,
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct ScaleReport {
    /// Always [`SCALE_SCHEMA`].
    schema: String,
    /// Traffic congestion level λ (slots between packets per node).
    lambda: f64,
    /// Deployment/protocol base seed.
    seed: u64,
    /// One entry per requested size, in request order.
    runs: Vec<ScaleRun>,
}

/// The artifact spelling of a candidate policy (also the `--candidates`
/// flag syntax, so baselines and fresh runs compare apples to apples).
fn policy_label(policy: CandidatePolicy) -> String {
    match policy {
        CandidatePolicy::Auto => "auto".into(),
        CandidatePolicy::Full => "full".into(),
        CandidatePolicy::Fixed(c) => c.to_string(),
    }
}

fn run_size(
    n: usize,
    rounds: u32,
    candidates: CandidatePolicy,
    threads: usize,
    lambda: f64,
    seed: u64,
) -> ScaleRun {
    let k = (n / 20).max(2);
    let mut spec = RunSpec::builder(lambda)
        .nodes(n)
        .k(k)
        .rounds(rounds)
        .seeds(vec![seed])
        .build();
    spec.sim.threads = threads;
    let net = spec.network(seed);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let mut obs = ObserverSet::new();
    obs.attach(sink.clone());
    let params = QlecParams {
        candidates,
        ..spec.qlec_params()
    };
    let mut protocol = ProtocolKind::Qlec.build_observed(&params, &obs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let start = Instant::now();
    let report = Simulator::new(net, spec.sim)
        .observed(obs)
        .run(protocol.as_mut(), &mut rng);
    let wall_s = start.elapsed().as_secs_f64();
    let sink = sink.lock().expect("metrics sink poisoned");
    let phase_wall = Phase::ALL
        .iter()
        .map(|&p| PhaseWall {
            phase: p.name().to_string(),
            mean_wall_ns: sink.phase_wall_ns(p) as f64,
        })
        .collect();
    ScaleRun {
        n,
        k,
        rounds,
        threads,
        candidates: policy_label(candidates),
        wall_s,
        packets: report.totals.generated,
        packets_per_sec: report.totals.generated as f64 / wall_s.max(1e-9),
        pdr: report.pdr(),
        alive_end: report.rounds.last().map_or(n, |r| r.alive_end),
        peak_rss_bytes: peak_rss_bytes(),
        phase_wall,
    }
}

/// Check a `BENCH_scale.json` text against the v2 schema. Returns a
/// description of the first problem found.
fn validate_scale_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    if v["schema"].as_str() != Some(SCALE_SCHEMA) {
        return Err(format!(
            "schema must be {SCALE_SCHEMA:?}, got {:?}",
            v["schema"]
        ));
    }
    for key in ["lambda", "seed"] {
        if v[key].as_f64().is_none() {
            return Err(format!("missing numeric field {key:?}"));
        }
    }
    let runs = v["runs"]
        .as_array()
        .ok_or_else(|| "runs must be an array".to_string())?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    let phases: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    for (i, run) in runs.iter().enumerate() {
        for key in [
            "n",
            "k",
            "rounds",
            "threads",
            "wall_s",
            "packets",
            "packets_per_sec",
            "pdr",
            "alive_end",
        ] {
            if run[key].as_f64().is_none() {
                return Err(format!("runs[{i}] missing numeric field {key:?}"));
            }
        }
        match run["candidates"].as_str() {
            Some(c) if CandidatePolicy::parse(c).is_ok() => {}
            _ => {
                return Err(format!(
                    "runs[{i}].candidates must be auto, full or a positive integer"
                ))
            }
        }
        let walls = run["phase_wall"]
            .as_array()
            .ok_or_else(|| format!("runs[{i}].phase_wall must be an array"))?;
        let mut seen: Vec<&str> = Vec::new();
        for w in walls {
            let name = w["phase"]
                .as_str()
                .ok_or_else(|| format!("runs[{i}] phase_wall entry without a phase name"))?;
            if w["mean_wall_ns"].as_f64().is_none() {
                return Err(format!("runs[{i}] phase {name:?} missing mean_wall_ns"));
            }
            seen.push(name);
        }
        for p in &phases {
            if !seen.contains(p) {
                return Err(format!("runs[{i}] missing phase {p:?}"));
            }
        }
    }
    Ok(())
}

/// Compare a fresh sweep against a committed baseline artifact.
///
/// Points are matched on `(n, threads, candidates)`; `Ok` carries one
/// message per matched point whose `packets_per_sec` fell more than
/// [`REGRESSION_TOLERANCE`] below the baseline (empty = gate passes).
/// `Err` means the comparison itself is impossible — unreadable or
/// schema-stale baseline, or no point in common.
fn compare_against_baseline(
    fresh: &[ScaleRun],
    baseline_text: &str,
) -> Result<Vec<String>, String> {
    validate_scale_json(baseline_text).map_err(|e| format!("baseline invalid: {e}"))?;
    let base: serde_json::Value =
        serde_json::from_str(baseline_text).expect("validated baseline parses");
    let base_runs = base["runs"]
        .as_array()
        .expect("validated baseline has runs");
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for run in fresh {
        let Some(b) = base_runs.iter().find(|b| {
            b["n"].as_u64() == Some(run.n as u64)
                && b["threads"].as_u64() == Some(run.threads as u64)
                && b["candidates"].as_str() == Some(run.candidates.as_str())
        }) else {
            continue;
        };
        matched += 1;
        let base_pps = b["packets_per_sec"].as_f64().expect("validated numeric");
        let floor = base_pps * (1.0 - REGRESSION_TOLERANCE);
        if run.packets_per_sec < floor {
            regressions.push(format!(
                "N={} threads={} candidates={}: {:.0} packets/s vs baseline {:.0} \
                 (below the {:.0}% floor {:.0})",
                run.n,
                run.threads,
                run.candidates,
                run.packets_per_sec,
                base_pps,
                (1.0 - REGRESSION_TOLERANCE) * 100.0,
                floor,
            ));
        }
    }
    if matched == 0 {
        return Err("no (n, threads, candidates) point in common with the baseline".into());
    }
    Ok(regressions)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<usize> = flag_value(&args, "--sizes")
        .unwrap_or_else(|| "100,1000,10000".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes integers"))
        .collect();
    let threads_list: Vec<usize> = flag_value(&args, "--threads")
        .unwrap_or_else(|| "1".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--threads takes integers"))
        .collect();
    let rounds: u32 =
        flag_value(&args, "--rounds").map_or(20, |s| s.parse().expect("--rounds takes an integer"));
    let candidates = flag_value(&args, "--candidates").map_or(CandidatePolicy::Fixed(8), |s| {
        CandidatePolicy::parse(&s).expect("--candidates takes auto, full or a positive integer")
    });
    let lambda: f64 =
        flag_value(&args, "--lambda").map_or(5.0, |s| s.parse().expect("--lambda takes a number"));
    let seed: u64 =
        flag_value(&args, "--seed").map_or(42, |s| s.parse().expect("--seed takes an integer"));
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_scale.json".into());
    assert!(!sizes.is_empty(), "--sizes must name at least one N");
    assert!(
        !threads_list.is_empty(),
        "--threads must name at least one count"
    );

    let mut report = ScaleReport {
        schema: SCALE_SCHEMA.to_string(),
        lambda,
        seed,
        runs: Vec::new(),
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        for &threads in &threads_list {
            let run = run_size(n, rounds, candidates, threads, lambda, seed);
            eprintln!(
                "N = {n:>6} × {threads} thread(s): {:.2}s wall, {:.0} packets/s",
                run.wall_s, run.packets_per_sec
            );
            rows.push(vec![
                run.n.to_string(),
                run.k.to_string(),
                run.threads.to_string(),
                format!("{:.2}s", run.wall_s),
                run.packets.to_string(),
                format!("{:.0}", run.packets_per_sec),
                format!("{:.4}", run.pdr),
                run.peak_rss_bytes
                    .map_or("n/a".into(), |b| format!("{:.1}", b as f64 / 1e6)),
            ]);
            report.runs.push(run);
        }
    }
    print_table(
        &format!(
            "scale sweep ({rounds} rounds, candidates = {}, λ = {lambda})",
            policy_label(candidates)
        ),
        &[
            "N",
            "k",
            "thr",
            "wall",
            "packets",
            "pkt/s",
            "PDR",
            "peak RSS (MB)",
        ],
        &rows,
    );
    write_json(&out, &report);

    if args.iter().any(|a| a == "--validate") {
        let text = std::fs::read_to_string(&out).expect("artifact just written");
        match validate_scale_json(&text) {
            Ok(()) => println!("[{out} validates against {SCALE_SCHEMA}]"),
            Err(e) => {
                eprintln!("error: {out} failed schema validation: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(baseline) = flag_value(&args, "--compare") {
        let text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("--compare {baseline}: {e}"));
        match compare_against_baseline(&report.runs, &text) {
            Ok(regressions) if regressions.is_empty() => {
                println!("[no packets/s regression vs {baseline}]");
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("error: regression: {r}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: cannot compare against {baseline}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_run_produces_a_valid_artifact() {
        let run = run_size(30, 2, CandidatePolicy::Fixed(4), 1, 8.0, 7);
        let report = ScaleReport {
            schema: SCALE_SCHEMA.to_string(),
            lambda: 8.0,
            seed: 7,
            runs: vec![run],
        };
        let text = serde_json::to_string_pretty(&report).unwrap();
        validate_scale_json(&text).expect("fresh artifact must validate");
        let r = &report.runs[0];
        assert!(r.wall_s > 0.0);
        assert!(r.packets > 0);
        assert_eq!(r.threads, 1);
        assert_eq!(r.candidates, "4");
        assert_eq!(r.phase_wall.len(), Phase::ALL.len());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let run = run_size(30, 2, CandidatePolicy::Fixed(4), 1, 8.0, 7);
        let pps = run.packets_per_sec;
        let baseline = |base_pps: f64| {
            let mut base_run = run_size(30, 2, CandidatePolicy::Fixed(4), 1, 8.0, 7);
            base_run.packets_per_sec = base_pps;
            serde_json::to_string(&ScaleReport {
                schema: SCALE_SCHEMA.to_string(),
                lambda: 8.0,
                seed: 7,
                runs: vec![base_run],
            })
            .unwrap()
        };
        let fresh = std::slice::from_ref(&run);
        // Fresh matches (or beats) the baseline: no regression.
        assert_eq!(
            compare_against_baseline(fresh, &baseline(pps)).unwrap(),
            Vec::<String>::new()
        );
        // Baseline 10× faster: well past the 20% floor.
        let msgs = compare_against_baseline(fresh, &baseline(pps * 10.0)).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("N=30"), "{}", msgs[0]);
        // A drop within tolerance (fresh at ~83% of baseline) passes.
        assert!(compare_against_baseline(fresh, &baseline(pps * 1.2))
            .unwrap()
            .is_empty());
        // No matching (n, threads, candidates) point → a hard error,
        // not a silent pass.
        let other = serde_json::to_string(&ScaleReport {
            schema: SCALE_SCHEMA.to_string(),
            lambda: 8.0,
            seed: 7,
            runs: vec![run_size(30, 2, CandidatePolicy::Fixed(4), 2, 8.0, 7)],
        })
        .unwrap();
        assert!(compare_against_baseline(fresh, &other).is_err());
        // Stale-schema baselines are rejected outright.
        assert!(compare_against_baseline(fresh, "{\"schema\":\"qlec-bench-scale/v1\"}").is_err());
    }

    #[test]
    fn validator_rejects_broken_artifacts() {
        assert!(validate_scale_json("not json").is_err());
        assert!(validate_scale_json("{\"schema\":\"other/v0\"}").is_err());
        let no_runs =
            format!("{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\"runs\":[]}}");
        assert!(validate_scale_json(&no_runs).is_err());
        let bad_run = format!(
            "{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\
             \"runs\":[{{\"n\":10}}]}}"
        );
        let err = validate_scale_json(&bad_run).unwrap_err();
        assert!(err.contains("missing numeric field"), "{err}");
    }

    #[test]
    fn flag_parsing_finds_values() {
        let args: Vec<String> = ["--sizes", "100,200", "--validate", "--rounds", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--sizes").as_deref(), Some("100,200"));
        assert_eq!(flag_value(&args, "--rounds").as_deref(), Some("3"));
        assert_eq!(flag_value(&args, "--out"), None);
    }
}
