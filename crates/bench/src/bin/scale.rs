//! Scaling benchmark: the perf-trajectory harness for large deployments.
//!
//! Runs the paper-shaped QLEC configuration at N ∈ {100, 1k, 10k} (by
//! default) with `Send-Data` candidate pruning enabled, and emits
//! `BENCH_scale.json`: per-phase wall time (from the `qlec-obs` phase
//! spans), peak RSS, and packet throughput for each size. CI smoke-runs
//! it at N = 100 and validates the artifact against the schema; the
//! full sweep is the cross-PR performance trajectory.
//!
//! Usage: `cargo run --release -p qlec-bench --bin scale -- \
//!     [--sizes 100,1000,10000] [--rounds 20] [--candidates 8] \
//!     [--lambda 5] [--seed 42] [--out BENCH_scale.json] [--validate]`

use qlec_bench::{print_table, write_json, PhaseWall, ProtocolKind, RunSpec};
use qlec_core::params::QlecParams;
use qlec_net::Simulator;
use qlec_obs::{peak_rss_bytes, MemorySink, ObserverSet, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version tag of the `BENCH_scale.json` artifact. Bump on any field
/// addition, removal, or semantic change.
const SCALE_SCHEMA: &str = "qlec-bench-scale/v1";

/// One size point of the sweep.
#[derive(Debug, Serialize)]
struct ScaleRun {
    /// Node count N.
    n: usize,
    /// Cluster count k used (scales as N/20, the paper's N=100 → k=5).
    k: usize,
    /// Simulated rounds.
    rounds: u32,
    /// `Send-Data` candidate pruning knob (null = paper-exact full scan).
    candidate_heads: Option<usize>,
    /// End-to-end wall time of the run, seconds.
    wall_s: f64,
    /// Packets generated over the whole run.
    packets: u64,
    /// Generated packets per wall second — the headline throughput.
    packets_per_sec: f64,
    /// Packet delivery rate, for sanity (pruning must not crater it).
    pdr: f64,
    /// Alive nodes at the end of the run.
    alive_end: usize,
    /// Process peak RSS in bytes after this run (Linux `VmHWM`; null
    /// elsewhere). Monotone across the process, so within one sweep the
    /// largest N dominates.
    peak_rss_bytes: Option<u64>,
    /// Wall nanoseconds per simulation phase, from the obs spans.
    phase_wall: Vec<PhaseWall>,
}

/// The whole artifact.
#[derive(Debug, Serialize)]
struct ScaleReport {
    /// Always [`SCALE_SCHEMA`].
    schema: String,
    /// Traffic congestion level λ (slots between packets per node).
    lambda: f64,
    /// Deployment/protocol base seed.
    seed: u64,
    /// One entry per requested size, in request order.
    runs: Vec<ScaleRun>,
}

fn run_size(n: usize, rounds: u32, candidates: Option<usize>, lambda: f64, seed: u64) -> ScaleRun {
    let k = (n / 20).max(2);
    let spec = RunSpec::builder(lambda)
        .nodes(n)
        .k(k)
        .rounds(rounds)
        .seeds(vec![seed])
        .build();
    let net = spec.network(seed);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    let mut obs = ObserverSet::new();
    obs.attach(sink.clone());
    let params = QlecParams {
        candidate_heads: candidates,
        ..spec.qlec_params()
    };
    let mut protocol = ProtocolKind::Qlec.build_observed(&params, &obs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let start = Instant::now();
    let report = Simulator::new(net, spec.sim)
        .observed(obs)
        .run(protocol.as_mut(), &mut rng);
    let wall_s = start.elapsed().as_secs_f64();
    let sink = sink.lock().expect("metrics sink poisoned");
    let phase_wall = Phase::ALL
        .iter()
        .map(|&p| PhaseWall {
            phase: p.name().to_string(),
            mean_wall_ns: sink.phase_wall_ns(p) as f64,
        })
        .collect();
    ScaleRun {
        n,
        k,
        rounds,
        candidate_heads: candidates,
        wall_s,
        packets: report.totals.generated,
        packets_per_sec: report.totals.generated as f64 / wall_s.max(1e-9),
        pdr: report.pdr(),
        alive_end: report.rounds.last().map_or(n, |r| r.alive_end),
        peak_rss_bytes: peak_rss_bytes(),
        phase_wall,
    }
}

/// Check a `BENCH_scale.json` text against the v1 schema. Returns a
/// description of the first problem found.
fn validate_scale_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    if v["schema"].as_str() != Some(SCALE_SCHEMA) {
        return Err(format!(
            "schema must be {SCALE_SCHEMA:?}, got {:?}",
            v["schema"]
        ));
    }
    for key in ["lambda", "seed"] {
        if v[key].as_f64().is_none() {
            return Err(format!("missing numeric field {key:?}"));
        }
    }
    let runs = v["runs"]
        .as_array()
        .ok_or_else(|| "runs must be an array".to_string())?;
    if runs.is_empty() {
        return Err("runs must be non-empty".into());
    }
    let phases: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    for (i, run) in runs.iter().enumerate() {
        for key in [
            "n",
            "k",
            "rounds",
            "wall_s",
            "packets",
            "packets_per_sec",
            "pdr",
            "alive_end",
        ] {
            if run[key].as_f64().is_none() {
                return Err(format!("runs[{i}] missing numeric field {key:?}"));
            }
        }
        match run.get("candidate_heads") {
            Some(c) if c.is_null() || c.as_u64().is_some() => {}
            _ => return Err(format!("runs[{i}].candidate_heads must be null or integer")),
        }
        let walls = run["phase_wall"]
            .as_array()
            .ok_or_else(|| format!("runs[{i}].phase_wall must be an array"))?;
        let mut seen: Vec<&str> = Vec::new();
        for w in walls {
            let name = w["phase"]
                .as_str()
                .ok_or_else(|| format!("runs[{i}] phase_wall entry without a phase name"))?;
            if w["mean_wall_ns"].as_f64().is_none() {
                return Err(format!("runs[{i}] phase {name:?} missing mean_wall_ns"));
            }
            seen.push(name);
        }
        for p in &phases {
            if !seen.contains(p) {
                return Err(format!("runs[{i}] missing phase {p:?}"));
            }
        }
    }
    Ok(())
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<usize> = flag_value(&args, "--sizes")
        .unwrap_or_else(|| "100,1000,10000".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes integers"))
        .collect();
    let rounds: u32 =
        flag_value(&args, "--rounds").map_or(20, |s| s.parse().expect("--rounds takes an integer"));
    let candidates: Option<usize> = match flag_value(&args, "--candidates").as_deref() {
        None => Some(8),
        Some("off") => None,
        Some(s) => Some(s.parse().expect("--candidates takes an integer or 'off'")),
    };
    let lambda: f64 =
        flag_value(&args, "--lambda").map_or(5.0, |s| s.parse().expect("--lambda takes a number"));
    let seed: u64 =
        flag_value(&args, "--seed").map_or(42, |s| s.parse().expect("--seed takes an integer"));
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_scale.json".into());
    assert!(!sizes.is_empty(), "--sizes must name at least one N");

    let mut report = ScaleReport {
        schema: SCALE_SCHEMA.to_string(),
        lambda,
        seed,
        runs: Vec::new(),
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let run = run_size(n, rounds, candidates, lambda, seed);
        eprintln!(
            "N = {n:>6}: {:.2}s wall, {:.0} packets/s",
            run.wall_s, run.packets_per_sec
        );
        rows.push(vec![
            run.n.to_string(),
            run.k.to_string(),
            format!("{:.2}s", run.wall_s),
            run.packets.to_string(),
            format!("{:.0}", run.packets_per_sec),
            format!("{:.4}", run.pdr),
            run.peak_rss_bytes
                .map_or("n/a".into(), |b| format!("{:.1}", b as f64 / 1e6)),
        ]);
        report.runs.push(run);
    }
    print_table(
        &format!("scale sweep ({rounds} rounds, candidates = {candidates:?}, λ = {lambda})"),
        &["N", "k", "wall", "packets", "pkt/s", "PDR", "peak RSS (MB)"],
        &rows,
    );
    write_json(&out, &report);

    if args.iter().any(|a| a == "--validate") {
        let text = std::fs::read_to_string(&out).expect("artifact just written");
        match validate_scale_json(&text) {
            Ok(()) => println!("[{out} validates against {SCALE_SCHEMA}]"),
            Err(e) => {
                eprintln!("error: {out} failed schema validation: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_run_produces_a_valid_artifact() {
        let run = run_size(30, 2, Some(4), 8.0, 7);
        let report = ScaleReport {
            schema: SCALE_SCHEMA.to_string(),
            lambda: 8.0,
            seed: 7,
            runs: vec![run],
        };
        let text = serde_json::to_string_pretty(&report).unwrap();
        validate_scale_json(&text).expect("fresh artifact must validate");
        let r = &report.runs[0];
        assert!(r.wall_s > 0.0);
        assert!(r.packets > 0);
        assert_eq!(r.phase_wall.len(), Phase::ALL.len());
    }

    #[test]
    fn validator_rejects_broken_artifacts() {
        assert!(validate_scale_json("not json").is_err());
        assert!(validate_scale_json("{\"schema\":\"other/v0\"}").is_err());
        let no_runs =
            format!("{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\"runs\":[]}}");
        assert!(validate_scale_json(&no_runs).is_err());
        let bad_run = format!(
            "{{\"schema\":\"{SCALE_SCHEMA}\",\"lambda\":5.0,\"seed\":1,\
             \"runs\":[{{\"n\":10}}]}}"
        );
        let err = validate_scale_json(&bad_run).unwrap_err();
        assert!(err.contains("missing numeric field"), "{err}");
    }

    #[test]
    fn flag_parsing_finds_values() {
        let args: Vec<String> = ["--sizes", "100,200", "--validate", "--rounds", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--sizes").as_deref(), Some("100,200"));
        assert_eq!(flag_value(&args, "--rounds").as_deref(), Some("3"));
        assert_eq!(flag_value(&args, "--out"), None);
    }
}
