//! Lifespan under injected faults — the Fig. 3(c) comparison re-run on a
//! hostile deployment.
//!
//! The paper's experiments assume a benign network: nodes only die from
//! battery exhaustion and links only lose packets by distance. This bench
//! replays the Fig. 3 protocol set (QLEC, FCM, k-means) under a
//! deterministic [`FaultPlan`] — a mid-run interference window that
//! multiplies the loss rate of every third node's BS link, a handful of
//! hardware crashes, and a short base-station outage — and asks the
//! Fig. 3 questions again: who still delivers, who spends the most energy
//! on retries, and whose lifespan degrades most gracefully.
//!
//! Every protocol faces the *same* plan on the *same* seeds, so the
//! deltas are attributable to the clustering/routing policy alone. QLEC's
//! ACK-driven link estimator is the mechanism under test: it should route
//! around the degraded pairs within a round or two, while the geometric
//! baselines keep hammering them.
//!
//! Usage: `cargo run --release -p qlec-bench --bin faults [--quick]`

use qlec_bench::{print_table, run_cell, write_json, CellResult, ProtocolKind, RunSpec};
use qlec_fault::{FaultEvent, FaultPlan, LinkEnd};
use serde::Serialize;

/// The hostile-deployment schedule (rounds are 0-based).
fn plan(n: u32, rounds: u32) -> FaultPlan {
    let from = rounds / 4;
    let to = (3 * rounds) / 4;
    let mut events: Vec<FaultEvent> = Vec::new();
    // Interference window: every third node's BS uplink loses 7× more.
    for node in (0..n).step_by(3) {
        events.push(FaultEvent::LinkDegrade {
            from_round: from,
            to_round: to,
            a: LinkEnd::Node(node),
            b: LinkEnd::Bs,
            loss_multiplier: 7.0,
        });
    }
    // A few hardware failures spread over the run.
    for (i, round) in [rounds / 5, rounds / 2, (4 * rounds) / 5]
        .into_iter()
        .enumerate()
    {
        events.push(FaultEvent::NodeCrash {
            round,
            node: 7 * (i as u32 + 1),
        });
    }
    // A short BS outage in the middle of the interference window.
    events.push(FaultEvent::BsOutage {
        from_round: rounds / 2,
        to_round: rounds / 2,
    });
    FaultPlan::named("hostile-deployment", events)
}

#[derive(Serialize)]
struct FaultsOutput {
    description: &'static str,
    plan: FaultPlan,
    baseline: Vec<CellResult>,
    faulted: Vec<CellResult>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, rounds, seeds): (usize, u32, Vec<u64>) = if quick {
        (40, 8, vec![1, 2])
    } else {
        (100, 20, (0..5).map(|i| 0xC0FFEE + i).collect())
    };
    let lambda = 3.0;
    let plan = plan(n as u32, rounds);
    plan.validate().expect("plan must validate");

    let base_spec = RunSpec::builder(lambda)
        .nodes(n)
        .rounds(rounds)
        .seeds(seeds)
        .build();
    let fault_spec = {
        let mut s = base_spec.clone();
        s.faults = Some(plan.clone());
        s
    };

    let mut baseline = Vec::new();
    let mut faulted = Vec::new();
    for kind in ProtocolKind::FIG3 {
        baseline.push(run_cell(kind, &base_spec));
        faulted.push(run_cell(kind, &fault_spec));
    }

    let fmt_row = |b: &CellResult, f: &CellResult| -> Vec<String> {
        vec![
            b.protocol.clone(),
            format!("{:.4}", b.pdr_mean),
            format!("{:.4}", f.pdr_mean),
            format!("{:.1}", b.lifespan_mean_rounds),
            format!("{:.1}", f.lifespan_mean_rounds),
            format!("{:.0}", b.retries_mean),
            format!("{:.0}", f.retries_mean),
            format!("{:.2}", f.energy_mean_j),
        ]
    };
    let rows: Vec<Vec<String>> = baseline
        .iter()
        .zip(&faulted)
        .map(|(b, f)| fmt_row(b, f))
        .collect();
    print_table(
        &format!(
            "Lifespan under faults (plan '{}', λ={lambda}, {rounds} rounds)",
            plan.name
        ),
        &[
            "protocol",
            "pdr",
            "pdr/faults",
            "life",
            "life/faults",
            "retries",
            "retries/faults",
            "E/faults (J)",
        ],
        &rows,
    );

    write_json(
        "faults_results.json",
        &FaultsOutput {
            description: "Fig. 3 protocol set re-run under a deterministic fault plan \
                          (link interference + node crashes + BS outage); baseline vs \
                          faulted cells, identical seeds",
            plan,
            baseline,
            faulted,
        },
    );
}
