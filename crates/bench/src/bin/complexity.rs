//! Empirically verifies the running-time claims of §4.3:
//!
//! * **Lemma 2** — the cluster-head selection phase is `O(R·N)`: per-round
//!   selection cost grows linearly in `N`.
//! * **Lemma 3 / Theorem 3** — the Q-learning phase performs `O(k·X)`
//!   elementary updates: per `Send-Data` call, the update count is
//!   `(k+1) × sweeps`, so total updates grow linearly in `k` for a fixed
//!   workload, and `X` (updates to V-convergence) is finite and measured.
//!
//! Usage: `cargo run --release -p qlec-bench --bin complexity`

use qlec_bench::print_table;
use qlec_core::params::QlecParams;
use qlec_core::QlecProtocol;
use qlec_net::{NetworkBuilder, SimConfig, Simulator};
use qlec_radio::link::{AnyLink, IdealLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn run_once(n: usize, k: usize, lambda: f64, rounds: u32, seed: u64) -> (f64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = NetworkBuilder::new()
        .link(AnyLink::Ideal(IdealLink))
        .uniform_cube(&mut rng, n, 200.0, 50.0);
    let params = QlecParams {
        total_rounds: rounds,
        ..QlecParams::paper_with_k(k)
    };
    let mut protocol = QlecProtocol::new(params);
    // Light, fixed load: congestion would change the number of
    // fixed-point sweeps per packet and confound the k-scaling.
    let mut cfg = SimConfig::paper(lambda);
    cfg.rounds = rounds;
    let start = Instant::now();
    let report = Simulator::builder(net)
        .config(cfg)
        .build()
        .run(&mut protocol, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    (secs, protocol.q_updates(), report.totals.generated)
}

fn main() {
    // ---- O(kX): Q updates vs k at fixed N --------------------------------
    let mut rows = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    for &k in &[4usize, 8, 16, 32] {
        let (secs, updates, packets) = run_once(200, k, 25.0, 10, 0xC0);
        let per_packet = updates as f64 / packets as f64;
        let ratio = prev
            .map(|(pk, pu)| format!("{:.2}× (k {:.0}×)", per_packet / pu, k as f64 / pk as f64))
            .unwrap_or_else(|| "—".into());
        rows.push(vec![
            k.to_string(),
            updates.to_string(),
            packets.to_string(),
            format!("{per_packet:.1}"),
            ratio,
            format!("{secs:.2}s"),
        ]);
        prev = Some((k, per_packet));
    }
    print_table(
        "Lemma 3 / Theorem 3: Q updates scale with k (N = 200, 10 rounds)",
        &[
            "k",
            "total Q updates (X·k)",
            "packets",
            "updates/packet",
            "growth",
            "wall",
        ],
        &rows,
    );

    // ---- O(RN): selection phase vs N --------------------------------------
    // Measured through total wall time at λ high enough that routing work
    // is negligible and selection dominates per-round fixed costs.
    let mut rows = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    for &n in &[100usize, 200, 400, 800] {
        // Keep the per-head load constant by scaling k with N, so wall
        // time tracks the O(R·N) selection + routing volume rather than
        // a growing congestion level.
        let k = (n / 20).max(2);
        let (secs, _, packets) = run_once(n, k, 25.0, 10, 0xC1);
        let ratio = prev
            .map(|(pn, ps)| format!("{:.2}× (N {:.0}×)", secs / ps, n as f64 / pn as f64))
            .unwrap_or_else(|| "—".into());
        rows.push(vec![
            n.to_string(),
            packets.to_string(),
            format!("{secs:.3}s"),
            ratio,
        ]);
        prev = Some((n, secs));
    }
    print_table(
        "Lemma 2: per-run wall time vs N (k = N/20, 10 rounds; near-linear growth expected)",
        &["N", "packets", "wall time", "growth"],
        &rows,
    );

    println!("\nInterpretation: updates/packet ≈ (k+1)·sweeps, so the first table's");
    println!("updates-per-packet column growing ∝ k confirms O(kX); the second table's");
    println!("wall time growing ≈ linearly with N (packet volume ∝ N dominates) matches O(RN).");
}
