//! Diagnostic: per-category energy breakdown across protocols, retry
//! budgets, and congestion levels. Not a paper artifact — this is the
//! instrument used to attribute the Fig. 3(b) energy deviations analyzed
//! in EXPERIMENTS.md (member transmissions vs head receptions vs fusion
//! vs aggregate forwarding vs control traffic).
//!
//! Usage: `cargo run --release -p qlec-bench --bin energy_breakdown`

use qlec_bench::{ProtocolKind, RunSpec};
use qlec_net::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    for retries in [0u32, 1] {
        for lambda in [1.0, 3.0, 5.0, 10.0] {
            for kind in ProtocolKind::FIG3 {
                let mut spec = RunSpec::paper(lambda);
                spec.seeds = vec![1];
                spec.sim.member_retries = retries;
                let net = spec.network(1);
                let mut p = kind.build(&spec.qlec_params());
                let mut rng = StdRng::seed_from_u64(2);
                let rep = Simulator::builder(net)
                    .config(spec.sim)
                    .build()
                    .run(p.as_mut(), &mut rng);
                let t = &rep.totals;
                println!(
                    "retries={retries} λ={lambda:>3} {:<8} pdr={:.4} E={:7.2} qfull={:6} dl={:5} link={:5} agg={:5} min_resid_last={:.3}",
                    kind.to_string(), rep.pdr(), rep.total_energy(),
                    t.dropped_queue_full, t.dropped_deadline, t.dropped_link, t.dropped_aggregate,
                    rep.rounds.last().map(|r| r.min_residual).unwrap_or(0.0)
                );
            }
        }
    }
}
