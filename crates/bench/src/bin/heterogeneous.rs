//! Heterogeneous-network experiment — DEEC's home turf.
//!
//! The DEEC lineage (and therefore QLEC) is designed for networks where
//! initial energies differ: "nodes with more energy should be given more
//! probability to be chosen as cluster heads" (§3.1). This binary sweeps
//! the two-tier heterogeneity of the classic DEEC evaluation — a
//! fraction `m` of *advanced* nodes with `(1+a)×` energy — and measures
//! how much each protocol's lifespan benefits from exploiting the
//! advanced nodes. Energy-blind protocols (LEACH, k-means) should gain
//! little; energy-aware ones (DEEC, QLEC) should convert extra joules
//! into extra rounds.
//!
//! Usage: `cargo run --release -p qlec-bench --bin heterogeneous [--quick]`

use qlec_bench::{aggregate, print_table, write_json, CellResult, ProtocolKind};
use qlec_net::{NetworkBuilder, SimConfig, SimReport, Simulator};
use qlec_radio::link::{AnyLink, DistanceLossLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct HeterogeneousOutput {
    description: &'static str,
    cells: Vec<(f64, f64, CellResult)>,
}

fn run_cell_hetero(
    kind: ProtocolKind,
    fraction: f64,
    boost: f64,
    seeds: &[u64],
    horizon: u32,
) -> CellResult {
    let reports: Vec<SimReport> = seeds
        .par_iter()
        .map(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = NetworkBuilder::new()
                .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)))
                .heterogeneous_cube(&mut rng, 100, 200.0, 5.0, fraction, boost);
            let params = qlec_core::QlecParams {
                total_rounds: horizon,
                ..qlec_core::QlecParams::paper_with_k(5)
            };
            let mut protocol = kind.build(&params);
            let mut cfg = SimConfig::paper(5.0);
            cfg.rounds = horizon;
            // Death line relative to the *normal* tier: the network dies
            // when a normal node is about to.
            cfg.death_line = 3.5;
            cfg.stop_when_dead = true;
            let mut rng2 = StdRng::seed_from_u64(seed ^ 0x5EED);
            Simulator::builder(net)
                .config(cfg)
                .build()
                .run(protocol.as_mut(), &mut rng2)
        })
        .collect();
    aggregate(kind.to_string(), 5.0, &reports)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        (0..5).map(|i| 0x4E7 + i).collect()
    };
    let horizon = if quick { 80 } else { 300 };
    // (advanced fraction m, boost a) in the DEEC tradition.
    let tiers: &[(f64, f64)] = &[(0.0, 0.0), (0.2, 1.0), (0.2, 3.0)];
    let protocols = [
        ProtocolKind::Qlec,
        ProtocolKind::Deec,
        ProtocolKind::Leach,
        ProtocolKind::KMeans,
    ];

    let mut cells: Vec<(f64, f64, CellResult)> = Vec::new();
    for &(m, a) in tiers {
        for kind in protocols {
            cells.push((m, a, run_cell_hetero(kind, m, a, &seeds, horizon)));
        }
    }

    let rows: Vec<Vec<String>> = protocols
        .iter()
        .map(|kind| {
            let mut row = vec![kind.to_string()];
            for &(m, a) in tiers {
                let c = &cells
                    .iter()
                    .find(|(cm, ca, c)| *cm == m && *ca == a && c.protocol == kind.to_string())
                    .expect("cell exists")
                    .2;
                row.push(format!("{:.1}", c.lifespan_mean_rounds));
            }
            // Relative gain from the strongest heterogeneity.
            let base = cells
                .iter()
                .find(|(cm, ca, c)| *cm == 0.0 && *ca == 0.0 && c.protocol == kind.to_string())
                .unwrap()
                .2
                .lifespan_mean_rounds;
            let rich = cells
                .iter()
                .find(|(cm, ca, c)| *cm == 0.2 && *ca == 3.0 && c.protocol == kind.to_string())
                .unwrap()
                .2
                .lifespan_mean_rounds;
            row.push(if base > 0.0 {
                format!("{:+.0} %", 100.0 * (rich - base) / base)
            } else {
                "—".into()
            });
            row
        })
        .collect();

    print_table(
        "Lifespan (rounds to 3.5 J death line) vs two-tier heterogeneity (N = 100, λ = 5)",
        &[
            "protocol",
            "homogeneous",
            "m=0.2, a=1 (+20 % energy)",
            "m=0.2, a=3 (+60 % energy)",
            "gain at a=3",
        ],
        &rows,
    );
    println!(
        "\nReading guide: the total extra energy is identical for every protocol; only\n\
         energy-AWARE head selection (DEEC's Eq. 1, QLEC's Eq. 1 + Eq. 4) can park the\n\
         head burden on the advanced tier and convert the extra joules into lifespan."
    );

    write_json(
        "heterogeneous_results.json",
        &HeterogeneousOutput {
            description: "Two-tier heterogeneity sweep (DEEC-style advanced nodes)",
            cells,
        },
    );
}
