//! Regenerates the **Theorem 1 / Lemma 1** numbers: the optimal cluster
//! count `k_opt` in 3-D, cross-checked three ways:
//!
//! 1. the closed form of Theorem 1,
//! 2. a scan of the analytic per-round energy `E_r(k)` (Eq. 6 with
//!    Lemma 1 substituted),
//! 3. a Monte-Carlo `E_r(k)`: deploy real networks, cluster with k-means,
//!    measure the actual `d²_toCH` and `d_toBS`, and evaluate Eq. 6.
//!
//! Also validates Lemma 1's `E[d²_toCH]` against direct sampling, and
//! prints the §5.1 claims (`k_opt ≈ 5` at N = 100, `k_opt = 272` at
//! N = 2 896) next to what the formula actually yields — see the
//! reproduction note in `qlec_core::kopt`.

use qlec_bench::print_table;
use qlec_clustering::kmeans::{kmeans, KMeansConfig};
use qlec_core::kopt::{coverage_radius, expected_d2_to_ch, kopt_real, round_energy_of_k};
use qlec_geom::sample::{
    mc_mean_sq_dist_ball, uniform_points_in_aabb, MEAN_DIST_TO_CENTER_UNIT_CUBE,
};
use qlec_geom::{Aabb, Vec3};
use qlec_radio::RadioModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

fn main() {
    let radio = RadioModel::paper();
    let bits = 2_000u64;

    // ---- Lemma 1 validation ---------------------------------------------
    let mut rng = StdRng::seed_from_u64(0x10F7);
    let m = 200.0;
    let mut lemma_rows = Vec::new();
    for &k in &[1usize, 5, 11, 50, 272] {
        let dc = coverage_radius(m, k);
        let closed = expected_d2_to_ch(m, k as f64);
        let mc = mc_mean_sq_dist_ball(&mut rng, dc, 200_000);
        lemma_rows.push(vec![
            k.to_string(),
            format!("{dc:.2}"),
            format!("{closed:.1}"),
            format!("{mc:.1}"),
            format!("{:+.2} %", 100.0 * (mc - closed) / closed),
        ]);
    }
    print_table(
        "Lemma 1: E[d²_toCH] closed form vs Monte-Carlo (M = 200)",
        &[
            "k",
            "d_c (m)",
            "closed form (m²)",
            "MC ball sample (m²)",
            "error",
        ],
        &lemma_rows,
    );

    // ---- Theorem 1 closed form vs analytic-scan vs MC minimum ------------
    let n = 100usize;
    let d_center = MEAN_DIST_TO_CENTER_UNIT_CUBE * m;
    let scan_min = |d: f64| -> f64 {
        // Fine scan of E_r(k) for real k; return argmin.
        let mut best = (1.0, f64::INFINITY);
        let mut k = 0.5;
        while k <= 60.0 {
            let e = round_energy_of_k(bits, n, k, m, d, &radio);
            if e < best.1 {
                best = (k, e);
            }
            k += 0.05;
        }
        best.0
    };

    // Monte-Carlo E_r(k): actual deployments, k-means geometry.
    let mc_er = |k: usize, rng: &mut StdRng| -> f64 {
        let b = Aabb::cube(m);
        let pts = uniform_points_in_aabb(rng, &b, n);
        let res = kmeans(rng, &pts, k, &KMeansConfig::default());
        let d2: f64 = pts
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist_sq(res.centroids[res.assignment[i]]))
            .sum::<f64>()
            / n as f64;
        let d_bs: f64 = pts
            .iter()
            .map(|p| p.dist(Vec3::splat(m / 2.0)))
            .sum::<f64>()
            / n as f64;
        radio.round_energy_eq6(bits, n, 0, d_bs, d2)
            + bits as f64 * k as f64 * radio.eps_mp * d_bs.powi(4)
    };
    let mc_argmin: usize = {
        let trials = 40;
        let ks: Vec<usize> = (1..=30).collect();
        let means: Vec<(usize, f64)> = ks
            .par_iter()
            .map(|&k| {
                let mut local = StdRng::seed_from_u64(0xAB00 + k as u64);
                let mean = (0..trials).map(|_| mc_er(k, &mut local)).sum::<f64>() / trials as f64;
                (k, mean)
            })
            .collect();
        means.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0
    };

    let mut theorem_rows = Vec::new();
    for (label, d) in [
        ("BS at cube centre (mean node dist)", d_center),
        ("d_toBS = 133 m (reproduces the paper's ≈5)", 133.0),
        ("BS at cube corner (mean ≈ 0.78·M)", 0.7766 * m),
    ] {
        let k_closed = kopt_real(n, m, d, &radio);
        let k_scan = scan_min(d);
        theorem_rows.push(vec![
            label.into(),
            format!("{d:.1}"),
            format!("{k_closed:.2}"),
            format!("{k_scan:.2}"),
        ]);
    }
    print_table(
        "Theorem 1: k_opt (N = 100, M = 200) — closed form vs analytic E_r(k) scan",
        &[
            "d_toBS convention",
            "d_toBS (m)",
            "closed form",
            "E_r(k) scan argmin",
        ],
        &theorem_rows,
    );
    println!(
        "\nMonte-Carlo E_r(k) argmin over real deployments (k-means geometry, BS at centre): k = {mc_argmin}"
    );
    println!(
        "Paper §5.1 states k_opt ≈ 5; the closed form with a centre BS gives ≈ 11 — see the\nreproduction note in qlec_core::kopt for the full audit trail."
    );

    // ---- The §5.3 claim ---------------------------------------------------
    let n_big = 2_896usize;
    let k_paper_ratio = kopt_real(n_big, m, d_center, &radio);
    println!(
        "\n§5.3: paper reports k_opt = 272 at N = 2 896. Theorem 1 scales as N^(3/5):\n  k_opt(2 896)/k_opt(100) = {:.2} (= 28.96^0.6), so with the same geometry k_opt = {:.0}.",
        (n_big as f64 / n as f64).powf(0.6),
        k_paper_ratio
    );
    println!("  272/5 = 54.4 vs 28.96^0.6 = 7.53 — the paper's two numbers are mutually inconsistent\n  under Theorem 1 unless the dataset geometry differs; we use Theorem 1 as stated.");
}
