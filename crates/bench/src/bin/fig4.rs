//! Regenerates **Figure 4** — the §5.3 large-scale experiment: QLEC on a
//! 2 896-node power-plant network (synthetic Global Power Plant Database
//! substitute; see DESIGN.md), plotting the per-node energy-consumption
//! *rate* and checking the paper's claim that "nodes with high energy
//! consumption rate … are evenly distributed in the network, which means
//! QLEC tends to make energy equally dissipated among nodes".
//!
//! Evenness is quantified three ways (the paper only eyeballs a map):
//! a coarse ASCII heat map, the coefficient of variation of per-node
//! rates, and the spatial autocorrelation of the high-consumption set
//! (correlation between consumption rate and position / BS distance —
//! near zero means "evenly spread").
//!
//! Usage: `cargo run --release -p qlec-bench --bin fig4 [--quick]`

use qlec_bench::write_json;
use qlec_core::kopt;
use qlec_core::params::QlecParams;
use qlec_core::QlecProtocol;
use qlec_dataset::{generate_china, to_network, DeployConfig, GeneratorConfig};
use qlec_geom::stats::{pearson, Summary};
use qlec_net::{NetworkBuilder, SimConfig, Simulator};
use qlec_radio::link::{AnyLink, DistanceLossLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Output {
    description: &'static str,
    n_nodes: usize,
    k_used: usize,
    kopt_theorem1: usize,
    pdr: f64,
    consumption_rate_summary: Summary,
    coeff_of_variation: f64,
    corr_rate_vs_bs_distance: Option<f64>,
    corr_rate_vs_x: Option<f64>,
    corr_rate_vs_y: Option<f64>,
    high_consumer_quadrant_share: [f64; 4],
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // ---- Build the dataset deployment ----------------------------------
    let mut rng = StdRng::seed_from_u64(0xF164);
    let gen_cfg = GeneratorConfig {
        count: if quick {
            600
        } else {
            qlec_dataset::CHINA_PLANT_COUNT
        },
        ..Default::default()
    };
    let plants = generate_china(&mut rng, &gen_cfg);
    let deploy = DeployConfig::default();
    let net = to_network(
        &mut rng,
        &plants,
        &deploy,
        NetworkBuilder::new().link(AnyLink::DistanceLoss(DistanceLossLink::new(
            200.0, 4.0, 0.05,
        ))),
    );
    let n = net.len();
    println!(
        "deployment: {n} plant-nodes, bounds {:?}",
        net.bounds().extent()
    );

    // ---- Theorem 1 k_opt on this deployment ----------------------------
    let k_theorem = kopt::kopt(n, net.side_length(), net.mean_dist_to_bs(), &net.radio);
    // The paper reports k_opt = 272 for its 2 896-node network; ours
    // depends on the projected geometry. Use the paper's ratio when full
    // scale, print both.
    let k_used = if quick { k_theorem.min(60) } else { k_theorem };
    println!(
        "Theorem 1 k_opt = {k_theorem} (paper reports 272 for its deployment); using k = {k_used}"
    );

    // ---- Run QLEC --------------------------------------------------------
    let params = QlecParams {
        k_override: Some(k_used),
        ..QlecParams::paper()
    };
    let mut protocol = QlecProtocol::new(params);
    let mut cfg = SimConfig::paper(5.0);
    cfg.rounds = 20;
    let positions = net.positions();
    let bs = net.bs_pos();
    let bounds = net.bounds();
    let mut rng2 = StdRng::seed_from_u64(0xF165);
    let report = Simulator::builder(net)
        .config(cfg)
        .build()
        .run(&mut protocol, &mut rng2);
    println!(
        "run: PDR {:.4}, total energy {:.2} J, mean heads {:.1}",
        report.pdr(),
        report.total_energy(),
        report.mean_head_count()
    );

    // ---- Evenness analysis ----------------------------------------------
    let rates = &report.consumption_rates;
    let summary = Summary::of(rates).expect("rates are finite");
    let cv = summary.coeff_of_variation().unwrap_or(f64::INFINITY);
    let bs_dist: Vec<f64> = positions.iter().map(|p| p.dist(bs)).collect();
    let xs: Vec<f64> = positions.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = positions.iter().map(|p| p.y).collect();
    let corr_bs = pearson(rates, &bs_dist);
    let corr_x = pearson(rates, &xs);
    let corr_y = pearson(rates, &ys);

    // High-consumption nodes (top quartile) per geographic quadrant: an
    // even spread puts ≈ the same share of high consumers in each
    // quadrant as that quadrant's share of all nodes.
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q3 = sorted[(sorted.len() * 3) / 4];
    let c = bounds.center();
    let mut quad_all = [0usize; 4];
    let mut quad_high = [0usize; 4];
    for (p, &r) in positions.iter().zip(rates) {
        let q = ((p.x > c.x) as usize) | (((p.y > c.y) as usize) << 1);
        quad_all[q] += 1;
        if r >= q3 {
            quad_high[q] += 1;
        }
    }
    let share: [f64; 4] = std::array::from_fn(|i| {
        if quad_all[i] == 0 {
            0.0
        } else {
            quad_high[i] as f64 / quad_all[i] as f64
        }
    });

    println!("\nper-node energy-consumption rate (consumed / initial):");
    println!(
        "  mean {:.4}  sd {:.4}  median {:.4}  p95 {:.4}  max {:.4}",
        summary.mean, summary.std_dev, summary.median, summary.p95, summary.max
    );
    println!("  coefficient of variation: {cv:.3}");
    println!(
        "  corr(rate, dist-to-BS) = {:?}, corr(rate, x) = {:?}, corr(rate, y) = {:?}",
        corr_bs, corr_x, corr_y
    );
    println!("  top-quartile consumer share per geographic quadrant: {share:?}");

    // ---- ASCII heat map (the Fig. 4 visual, terminal edition) -----------
    println!("\nFig. 4 heat map (x–y plane, '.'=low … '#'=top-quartile consumption):");
    let (w, h) = (64usize, 24usize);
    let mut grid_sum = vec![0.0f64; w * h];
    let mut grid_cnt = vec![0u32; w * h];
    let ext = bounds.extent();
    for (p, &r) in positions.iter().zip(rates) {
        let gx = (((p.x - bounds.min().x) / ext.x.max(1e-9)) * (w as f64 - 1.0)) as usize;
        let gy = (((p.y - bounds.min().y) / ext.y.max(1e-9)) * (h as f64 - 1.0)) as usize;
        grid_sum[gy * w + gx] += r;
        grid_cnt[gy * w + gx] += 1;
    }
    let glyphs = [b'.', b':', b'+', b'*', b'#'];
    for gy in (0..h).rev() {
        let mut line = Vec::with_capacity(w);
        for gx in 0..w {
            let i = gy * w + gx;
            if grid_cnt[i] == 0 {
                line.push(b' ');
            } else {
                let mean_rate = grid_sum[i] / grid_cnt[i] as f64;
                let level = ((mean_rate / summary.p95.max(1e-12)) * 4.0).min(4.0) as usize;
                line.push(glyphs[level]);
            }
        }
        println!("{}", String::from_utf8(line).unwrap());
    }

    // ---- Verdict ----------------------------------------------------------
    let even = corr_bs.is_none_or(|c| c.abs() < 0.35)
        && corr_x.is_none_or(|c| c.abs() < 0.25)
        && corr_y.is_none_or(|c| c.abs() < 0.25);
    println!(
        "\nEvenness verdict: {} (|corr| thresholds 0.35/0.25; paper claims high-rate nodes are evenly distributed)",
        if even { "PASS" } else { "MIXED — see correlations above" }
    );

    write_json(
        "fig4_results.json",
        &Fig4Output {
            description:
                "QLEC reproduction of ICPP'19 Fig. 4 (consumption-rate evenness on the power-plant dataset)",
            n_nodes: n,
            k_used,
            kopt_theorem1: k_theorem,
            pdr: report.pdr(),
            consumption_rate_summary: summary,
            coeff_of_variation: cv,
            corr_rate_vs_bs_distance: corr_bs,
            corr_rate_vs_x: corr_x,
            corr_rate_vs_y: corr_y,
            high_consumer_quadrant_share: share,
        },
    );
}
