//! Regenerates **Table 2** (simulation parameters) from the code's actual
//! defaults, so any drift between the paper's settings and the
//! implementation is immediately visible.

use qlec_bench::print_table;
use qlec_core::params::QlecParams;
use qlec_net::SimConfig;
use qlec_radio::RadioModel;

fn main() {
    let p = QlecParams::paper();
    let r = RadioModel::paper();
    let s = SimConfig::paper(2.0);

    let rows = vec![
        vec![
            "discount rate γ".into(),
            format!("{}", p.gamma),
            "0.95".into(),
        ],
        vec![
            "free space constant ε_fs".into(),
            format!("{} pJ/bit/m²", r.eps_fs * 1e12),
            "10 pJ/bit/m²".into(),
        ],
        vec![
            "multi-path constant ε_mp".into(),
            format!("{} pJ/bit/m⁴", r.eps_mp * 1e12),
            "0.0013 pJ/bit/m⁴".into(),
        ],
        vec![
            "weights α1, α2, β1, β2".into(),
            format!("{}, {}, {}, {}", p.alpha1, p.alpha2, p.beta1, p.beta2),
            "0.05, 1.05, 0.05, 1.05".into(),
        ],
        vec![
            "compression ratio at cluster heads".into(),
            format!("{:.0} %", s.compression * 100.0),
            "50 %".into(),
        ],
    ];
    print_table(
        "Table 2: Simulation Parameters (code defaults vs paper)",
        &["System parameter", "This implementation", "Paper"],
        &rows,
    );

    let ctx = vec![
        vec!["N (nodes)".into(), "100".into()],
        vec![
            "deployment".into(),
            "200 × 200 × 200 cube, BS at centre".into(),
        ],
        vec!["initial energy".into(), "5 J per node".into()],
        vec!["rounds R".into(), format!("{}", p.total_rounds)],
        vec!["k_opt used in Fig. 3".into(), "5 (§5.1)".into()],
        vec![
            "electronics / aggregation energy".into(),
            format!(
                "{} nJ/bit / {} nJ/bit (Heinzelman [4])",
                r.e_elec * 1e9,
                r.e_da * 1e9
            ),
        ],
        vec![
            "d₀ crossover".into(),
            format!("{:.2} m = √(ε_fs/ε_mp)", r.d0()),
        ],
    ];
    print_table("§5.1 experiment context", &["Setting", "Value"], &ctx);

    // Hard assertions: the binary fails loudly if defaults drift.
    assert_eq!(p.gamma, 0.95);
    assert_eq!(
        (p.alpha1, p.alpha2, p.beta1, p.beta2),
        (0.05, 1.05, 0.05, 1.05)
    );
    assert_eq!(r.eps_fs, 10e-12);
    assert_eq!(r.eps_mp, 0.0013e-12);
    assert_eq!(s.compression, 0.5);
    assert_eq!(p.total_rounds, 20);
    println!("\nAll Table 2 defaults match the paper.");
}
