//! Experiment harness shared by the figure/table binaries.

use qlec_clustering::deec::DeecProtocol;
use qlec_clustering::leach::LeachProtocol;
use qlec_clustering::{FcmProtocol, KMeansProtocol};
use qlec_core::ablation::Ablation;
use qlec_core::params::QlecParams;
use qlec_fault::{FaultDriver, FaultPlan};
use qlec_geom::stats::Welford;
use qlec_net::{Network, NetworkBuilder, Protocol, SimConfig, SimReport, Simulator};
use qlec_obs::{MemorySink, ObserverSet, Phase};
use qlec_radio::link::{AnyLink, DistanceLossLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// The protocols the paper's figures compare (plus the extra baselines
/// this reproduction adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// QLEC (the paper's algorithm; Fig. 3 uses the §5.1 `k = 5`).
    Qlec,
    /// The FCM-based scheme of \[14\].
    Fcm,
    /// Classic k-means clustering.
    KMeans,
    /// Classic LEACH (extra baseline).
    Leach,
    /// Plain DEEC (extra baseline).
    Deec,
    /// A QLEC ablation variant.
    QlecAblation(Ablation),
}

impl ProtocolKind {
    /// The Fig. 3 comparison set, in the paper's order.
    pub const FIG3: [ProtocolKind; 3] =
        [ProtocolKind::Qlec, ProtocolKind::Fcm, ProtocolKind::KMeans];

    /// All five base protocols.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Qlec,
        ProtocolKind::Fcm,
        ProtocolKind::KMeans,
        ProtocolKind::Leach,
        ProtocolKind::Deec,
    ];

    /// Display label (prefer `to_string()` / `format!` directly).
    #[deprecated(since = "0.1.0", note = "use the `Display` impl (`to_string()`)")]
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Instantiate a fresh protocol for one run. The cluster count comes
    /// from `params.k_override` (the paper's §5.1 `k = 5` when unset) and
    /// the horizon from `params.total_rounds`; the remaining fields only
    /// affect the QLEC variants.
    pub fn build(&self, params: &QlecParams) -> Box<dyn Protocol + Send> {
        self.build_observed(params, &ObserverSet::new())
    }

    /// Like [`ProtocolKind::build`], but QLEC variants also emit their
    /// protocol-layer events (Broadcast/QRouting spans, Q-updates) into
    /// `obs`. Baselines have no protocol-layer phases to report.
    pub fn build_observed(
        &self,
        params: &QlecParams,
        obs: &ObserverSet,
    ) -> Box<dyn Protocol + Send> {
        let k = params.k_override.unwrap_or(5);
        match self {
            ProtocolKind::Qlec => Box::new(
                qlec_core::QlecProtocol::builder()
                    .params(*params)
                    .k(k)
                    .observer(obs.clone())
                    .build(),
            ),
            ProtocolKind::Fcm => Box::new(FcmProtocol::new(k)),
            ProtocolKind::KMeans => Box::new(KMeansProtocol::new(k)),
            ProtocolKind::Leach => Box::new(LeachProtocol::new(k)),
            ProtocolKind::Deec => Box::new(DeecProtocol::new(k, params.total_rounds)),
            ProtocolKind::QlecAblation(a) => Box::new(
                a.builder(QlecParams {
                    k_override: Some(k),
                    ..*params
                })
                .observer(obs.clone())
                .build(),
            ),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::Qlec => "qlec",
            ProtocolKind::Fcm => "fcm",
            ProtocolKind::KMeans => "k-means",
            ProtocolKind::Leach => "leach",
            ProtocolKind::Deec => "deec",
            ProtocolKind::QlecAblation(a) => a.label(),
        };
        f.write_str(s)
    }
}

impl FromStr for ProtocolKind {
    type Err = String;

    /// Parse a display label back into a kind (`"kmeans"` is accepted as
    /// an alias for `"k-means"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "qlec" => Ok(ProtocolKind::Qlec),
            "fcm" => Ok(ProtocolKind::Fcm),
            "k-means" | "kmeans" => Ok(ProtocolKind::KMeans),
            "leach" => Ok(ProtocolKind::Leach),
            "deec" => Ok(ProtocolKind::Deec),
            other => Ablation::ALL_VARIANTS
                .iter()
                .find(|a| a.label() == other)
                .map(|&a| ProtocolKind::QlecAblation(a))
                .ok_or_else(|| format!("unknown protocol '{other}'")),
        }
    }
}

/// One experiment cell: a protocol on a deployment/traffic configuration,
/// averaged over seeds.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Node count `N` (paper: 100).
    pub n: usize,
    /// Cube side `M` (paper: 200).
    pub m: f64,
    /// Initial energy per node, J (paper: 5).
    pub initial_energy: f64,
    /// Cluster count `k` (paper §5.1: ≈ 5).
    pub k: usize,
    /// Simulator configuration (λ, rounds, queues, death line, …).
    pub sim: SimConfig,
    /// Deployment + protocol seeds; each entry is one independent run.
    pub seeds: Vec<u64>,
    /// Radio link model.
    pub link: AnyLink,
    /// Optional fault schedule, applied identically to every seed (and
    /// every protocol — the comparison stays fair).
    pub faults: Option<FaultPlan>,
}

impl RunSpec {
    /// The §5.1 configuration at congestion level λ.
    pub fn paper(lambda: f64) -> Self {
        RunSpec {
            n: 100,
            m: 200.0,
            initial_energy: 5.0,
            k: 5,
            sim: SimConfig::paper(lambda),
            seeds: (0..5).map(|i| 0xC0FFEE + i).collect(),
            link: AnyLink::DistanceLoss(DistanceLossLink::for_cube(200.0)),
            faults: None,
        }
    }

    /// Start a fluent [`ScenarioBuilder`] from the §5.1 configuration.
    pub fn builder(lambda: f64) -> ScenarioBuilder {
        ScenarioBuilder::paper(lambda)
    }

    /// The QLEC parameter set this spec implies (`k` and the horizon are
    /// taken from the spec; everything else is Table 2).
    pub fn qlec_params(&self) -> QlecParams {
        QlecParams {
            total_rounds: self.sim.rounds,
            ..QlecParams::paper_with_k(self.k)
        }
    }

    /// Build the deployment for one seed.
    pub fn network(&self, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new().link(self.link).uniform_cube(
            &mut rng,
            self.n,
            self.m,
            self.initial_energy,
        )
    }
}

/// Fluent construction of a [`RunSpec`] — mirrors
/// [`qlec_core::QlecBuilder`] on the experiment side, so a whole scenario
/// (deployment, traffic, seeds, faults) reads as one chain:
///
/// ```
/// use qlec_bench::RunSpec;
/// let spec = RunSpec::builder(5.0).nodes(60).rounds(10).seeds(vec![1, 2]).build();
/// assert_eq!(spec.n, 60);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: RunSpec,
}

impl ScenarioBuilder {
    /// Start from [`RunSpec::paper`] at congestion level λ.
    pub fn paper(lambda: f64) -> Self {
        ScenarioBuilder {
            spec: RunSpec::paper(lambda),
        }
    }

    /// Node count `N`.
    pub fn nodes(mut self, n: usize) -> Self {
        self.spec.n = n;
        self
    }

    /// Cube side `M` (metres). Also rescales the default link model's
    /// reference range when the spec still carries it.
    pub fn side(mut self, m: f64) -> Self {
        self.spec.m = m;
        self
    }

    /// Initial battery energy per node (J).
    pub fn initial_energy(mut self, joules: f64) -> Self {
        self.spec.initial_energy = joules;
        self
    }

    /// Cluster count `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.spec.k = k;
        self
    }

    /// Simulated rounds (the horizon `R`).
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.spec.sim.rounds = rounds;
        self
    }

    /// Replace the whole simulator configuration.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.spec.sim = sim;
        self
    }

    /// Replace the seed list (one independent run per seed).
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.spec.seeds = seeds;
        self
    }

    /// Radio link model.
    pub fn link(mut self, link: AnyLink) -> Self {
        self.spec.link = link;
        self
    }

    /// Attach a fault schedule (validated here; applied to every seed).
    ///
    /// # Panics
    ///
    /// If the plan fails [`FaultPlan::validate`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        self.spec.faults = Some(plan);
        self
    }

    /// Finish, yielding the configured [`RunSpec`].
    pub fn build(self) -> RunSpec {
        self.spec
    }
}

/// Mean wall time one simulation phase cost per run (from the
/// [`qlec_obs`] phase spans, averaged over seeds).
#[derive(Debug, Clone, Serialize)]
pub struct PhaseWall {
    /// Phase name (`election`, `broadcast`, `qrouting`, …).
    pub phase: String,
    /// Mean total wall nanoseconds per run.
    pub mean_wall_ns: f64,
}

/// Seed-aggregated metrics for one experiment cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    pub protocol: String,
    pub lambda: f64,
    pub runs: usize,
    pub pdr_mean: f64,
    pub pdr_std: f64,
    pub energy_mean_j: f64,
    pub energy_std_j: f64,
    /// `None` when no seed delivered a single packet (e.g. a
    /// full-blackout fault plan) — serialized as JSON `null`, never a
    /// fake `0.0`.
    pub latency_mean_slots: Option<f64>,
    pub lifespan_mean_rounds: f64,
    pub head_count_mean: f64,
    /// Mean retransmission attempts per run (member + aggregate hops) —
    /// the fault benches report it per protocol.
    pub retries_mean: f64,
    /// Wall-time cost of each simulation phase (empty if run unobserved).
    pub phase_wall: Vec<PhaseWall>,
}

/// Run one protocol over every seed of a spec (in parallel) and
/// aggregate. Each run carries a [`MemorySink`] so the JSON artifacts
/// record where the wall time went, phase by phase.
pub fn run_cell(kind: ProtocolKind, spec: &RunSpec) -> CellResult {
    let results: Vec<(SimReport, Vec<u64>)> = spec
        .seeds
        .par_iter()
        .map(|&seed| {
            let net = spec.network(seed);
            let sink = Arc::new(Mutex::new(MemorySink::new()));
            let mut obs = ObserverSet::new();
            obs.attach(sink.clone());
            let mut protocol = kind.build_observed(&spec.qlec_params(), &obs);
            // Offset the protocol RNG from the deployment RNG.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
            let mut sim = Simulator::builder(net).config(spec.sim).observers(obs);
            if let Some(plan) = &spec.faults {
                let driver = FaultDriver::new(plan.clone()).expect("invalid fault plan");
                sim = sim.faults(driver);
            }
            let report = sim.build().run(protocol.as_mut(), &mut rng);
            let sink = sink.lock().expect("metrics sink poisoned");
            let walls = Phase::ALL.iter().map(|&p| sink.phase_wall_ns(p)).collect();
            (report, walls)
        })
        .collect();
    let reports: Vec<SimReport> = results.iter().map(|(r, _)| r.clone()).collect();
    let mut cell = aggregate(kind.to_string(), spec.sim.mean_interarrival, &reports);
    let runs = results.len().max(1) as f64;
    cell.phase_wall = Phase::ALL
        .iter()
        .enumerate()
        .map(|(i, p)| PhaseWall {
            phase: p.name().to_string(),
            mean_wall_ns: results.iter().map(|(_, w)| w[i] as f64).sum::<f64>() / runs,
        })
        .collect();
    cell
}

/// Aggregate a set of per-seed reports into one cell.
pub fn aggregate(protocol: String, lambda: f64, reports: &[SimReport]) -> CellResult {
    let mut pdr = Welford::new();
    let mut energy = Welford::new();
    let mut latency = Welford::new();
    let mut lifespan = Welford::new();
    let mut heads = Welford::new();
    let mut retries = Welford::new();
    for r in reports {
        pdr.push(r.pdr());
        energy.push(r.total_energy());
        if let Some(l) = r.mean_latency() {
            latency.push(l);
        }
        lifespan.push(r.lifespan_rounds() as f64);
        heads.push(r.mean_head_count());
        retries.push(r.totals.retried as f64);
    }
    CellResult {
        protocol,
        lambda,
        runs: reports.len(),
        pdr_mean: pdr.mean().unwrap_or(0.0),
        pdr_std: pdr.std_dev().unwrap_or(0.0),
        energy_mean_j: energy.mean().unwrap_or(0.0),
        energy_std_j: energy.std_dev().unwrap_or(0.0),
        latency_mean_slots: latency.mean(),
        lifespan_mean_rounds: lifespan.mean().unwrap_or(0.0),
        head_count_mean: heads.mean().unwrap_or(0.0),
        retries_mean: retries.mean().unwrap_or(0.0),
        phase_wall: Vec::new(),
    }
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Write a JSON artifact next to the human-readable output.
pub fn write_json<T: Serialize>(path: &str, value: &T) {
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("\n[json written to {path}]");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(lambda: f64) -> RunSpec {
        let mut spec = RunSpec::paper(lambda);
        spec.n = 30;
        spec.sim.rounds = 3;
        spec.seeds = vec![1, 2];
        spec
    }

    #[test]
    fn run_cell_produces_sane_aggregates() {
        let spec = tiny_spec(5.0);
        for kind in [ProtocolKind::Qlec, ProtocolKind::KMeans, ProtocolKind::Fcm] {
            let cell = run_cell(kind, &spec);
            assert_eq!(cell.runs, 2);
            assert!(
                (0.0..=1.0).contains(&cell.pdr_mean),
                "{kind:?} pdr {}",
                cell.pdr_mean
            );
            assert!(cell.energy_mean_j > 0.0, "{kind:?}");
            assert!(cell.head_count_mean > 0.0, "{kind:?}");
            assert_eq!(cell.protocol, kind.to_string());
        }
    }

    #[test]
    fn run_cell_records_phase_wall_times() {
        let cell = run_cell(ProtocolKind::Qlec, &tiny_spec(5.0));
        assert_eq!(cell.phase_wall.len(), Phase::ALL.len());
        for pw in &cell.phase_wall {
            assert!(pw.mean_wall_ns >= 0.0, "{}: {}", pw.phase, pw.mean_wall_ns);
        }
        // The simulator-side phases always run; their spans must be > 0.
        for phase in ["election", "transmission"] {
            let pw = cell.phase_wall.iter().find(|p| p.phase == phase).unwrap();
            assert!(pw.mean_wall_ns > 0.0, "phase {phase} should cost wall time");
        }
    }

    #[test]
    fn all_protocol_kinds_build() {
        let params = QlecParams {
            total_rounds: 10,
            ..QlecParams::paper_with_k(3)
        };
        for kind in ProtocolKind::ALL {
            let p = kind.build(&params);
            assert!(!p.name().is_empty());
        }
        for ab in Ablation::ALL_VARIANTS {
            let p = ProtocolKind::QlecAblation(ab).build(&params);
            assert_eq!(p.name(), ab.label());
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let mut kinds: Vec<ProtocolKind> = ProtocolKind::ALL.to_vec();
        kinds.extend(Ablation::ALL_VARIANTS.map(ProtocolKind::QlecAblation));
        for kind in kinds {
            // Label-level round trip: `QlecAblation(Ablation::None)` and
            // `Qlec` intentionally share the label "qlec" (same protocol),
            // so compare displays, not enum variants.
            let parsed: ProtocolKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed.to_string(), kind.to_string());
        }
        assert_eq!("kmeans".parse::<ProtocolKind>(), Ok(ProtocolKind::KMeans));
        assert!("warp-drive".parse::<ProtocolKind>().is_err());
        #[allow(deprecated)]
        let legacy = ProtocolKind::Qlec.label();
        assert_eq!(legacy, "qlec");
    }

    #[test]
    fn scenario_builder_composes_a_spec() {
        let plan = FaultPlan::named(
            "one-crash",
            vec![qlec_fault::FaultEvent::NodeCrash { round: 1, node: 0 }],
        );
        let spec = RunSpec::builder(4.0)
            .nodes(25)
            .side(150.0)
            .initial_energy(2.0)
            .k(3)
            .rounds(4)
            .seeds(vec![9])
            .faults(plan.clone())
            .build();
        assert_eq!(spec.n, 25);
        assert_eq!(spec.m, 150.0);
        assert_eq!(spec.initial_energy, 2.0);
        assert_eq!(spec.k, 3);
        assert_eq!(spec.sim.rounds, 4);
        assert_eq!(spec.seeds, vec![9]);
        assert_eq!(spec.faults, Some(plan));
        assert_eq!(spec.qlec_params().k_override, Some(3));
        assert_eq!(spec.qlec_params().total_rounds, 4);
    }

    #[test]
    fn faulted_cell_counts_retries() {
        // Degrade every node→BS pair hard: direct-to-BS-like traffic has
        // to retry. QLEC routes via heads, so degrade node pairs too.
        let mut events: Vec<qlec_fault::FaultEvent> = (0..30u32)
            .map(|n| qlec_fault::FaultEvent::LinkDegrade {
                from_round: 0,
                to_round: 2,
                a: qlec_fault::LinkEnd::Node(n),
                b: qlec_fault::LinkEnd::Bs,
                loss_multiplier: 30.0,
            })
            .collect();
        events.push(qlec_fault::FaultEvent::NodeCrash { round: 1, node: 3 });
        let spec = RunSpec::builder(5.0)
            .nodes(30)
            .rounds(3)
            .seeds(vec![1, 2])
            .faults(FaultPlan::named("degrade-bs", events))
            .build();
        let clean = {
            let mut s = spec.clone();
            s.faults = None;
            run_cell(ProtocolKind::KMeans, &s)
        };
        let faulted = run_cell(ProtocolKind::KMeans, &spec);
        assert!(
            faulted.retries_mean > clean.retries_mean,
            "degraded BS links must force more retries: {} vs {}",
            faulted.retries_mean,
            clean.retries_mean
        );
        assert!(faulted.pdr_mean < clean.pdr_mean);
    }

    #[test]
    fn deployments_are_seed_deterministic() {
        let spec = tiny_spec(5.0);
        let a = spec.network(7);
        let b = spec.network(7);
        let c = spec.network(8);
        assert_eq!(a.positions(), b.positions());
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn table_printer_does_not_panic_on_ragged_rows() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }
}
