//! Shared experiment harness for the per-figure/table binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's §5
//! (see DESIGN.md §3 for the index). The harness here factors out what
//! they share: building seeded paper-shaped deployments, running a
//! protocol across seeds in parallel (rayon), aggregating the Fig. 3
//! metrics, and emitting both a human-readable table and a JSON record.

pub mod harness;

pub use harness::*;
