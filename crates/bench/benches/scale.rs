//! Criterion bench: one full QLEC round at increasing deployment sizes,
//! with `Send-Data` candidate pruning on — the per-round cost curve the
//! `scale` binary tracks end-to-end. Kept to one round per iteration so
//! the 10k point stays runnable interactively.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qlec_bench::{ProtocolKind, RunSpec};
use qlec_core::params::{CandidatePolicy, QlecParams};
use qlec_net::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        group.bench_function(BenchmarkId::new("one_round", n), |b| {
            b.iter(|| {
                let spec = RunSpec::builder(5.0)
                    .nodes(n)
                    .k((n / 20).max(2))
                    .rounds(1)
                    .build();
                let net = spec.network(1);
                let params = QlecParams {
                    candidates: CandidatePolicy::Fixed(8),
                    ..spec.qlec_params()
                };
                let mut protocol = ProtocolKind::Qlec.build(&params);
                let mut rng = StdRng::seed_from_u64(2);
                let report = Simulator::builder(net)
                    .config(spec.sim)
                    .build()
                    .run(protocol.as_mut(), &mut rng);
                black_box(report.totals.generated)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
