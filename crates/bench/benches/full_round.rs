//! Criterion bench: one full simulated round (both phases, packet-level)
//! for each Fig. 3 protocol — the end-to-end cost a user of the library
//! pays per round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qlec_bench::{ProtocolKind, RunSpec};
use qlec_net::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_round");
    group.sample_size(20);
    for kind in ProtocolKind::FIG3 {
        group.bench_function(BenchmarkId::new("paper_n100", kind.to_string()), |b| {
            b.iter(|| {
                let mut spec = RunSpec::paper(5.0);
                spec.sim.rounds = 1;
                let net = spec.network(1);
                let mut protocol = kind.build(&spec.qlec_params());
                let mut rng = StdRng::seed_from_u64(2);
                let report = Simulator::builder(net)
                    .config(spec.sim)
                    .build()
                    .run(protocol.as_mut(), &mut rng);
                black_box(report.totals.generated)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
