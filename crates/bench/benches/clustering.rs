//! Criterion benches for the baseline clusterers (k-means, FCM) at the
//! paper's two scales: N = 100 (§5.1) and N = 2 896 (§5.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qlec_clustering::fcm::{fcm, FcmConfig};
use qlec_clustering::kmeans::{kmeans, KMeansConfig};
use qlec_geom::sample::uniform_points_in_aabb;
use qlec_geom::Aabb;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_clusterers(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for &(n, k) in &[(100usize, 5usize), (1000, 50), (2896, 272)] {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = uniform_points_in_aabb(&mut rng, &Aabb::cube(200.0), n);
        group.bench_with_input(
            BenchmarkId::new("kmeans", format!("n{n}_k{k}")),
            &pts,
            |b, pts| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| {
                    let res = kmeans(&mut rng, black_box(pts), k, &KMeansConfig::default());
                    black_box(res.inertia)
                })
            },
        );
        // FCM is O(n·c) per iteration with a dense membership matrix;
        // cap the large case to keep bench time sane.
        if n <= 1000 {
            group.bench_with_input(
                BenchmarkId::new("fcm", format!("n{n}_k{k}")),
                &pts,
                |b, pts| {
                    let mut rng = StdRng::seed_from_u64(3);
                    b.iter(|| {
                        let res = fcm(&mut rng, black_box(pts), k, &FcmConfig::default());
                        black_box(res.objective)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clusterers);
criterion_main!(benches);
