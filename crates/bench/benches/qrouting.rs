//! Criterion bench for the Q-learning `Send-Data` decision (Algorithm 4)
//! — the Lemma 3 `O(k)` per-packet kernel — across cluster counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qlec_core::params::QlecParams;
use qlec_core::qrouting::QRouter;
use qlec_net::{NetworkBuilder, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_send_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("qrouting_send_data");
    for &k in &[5usize, 16, 64, 272] {
        let mut rng = StdRng::seed_from_u64(5);
        let n = (k * 12).max(100);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        let heads: Vec<NodeId> = (0..k as u32).map(NodeId).collect();
        group.bench_function(BenchmarkId::new("k", k), |b| {
            let mut router = QRouter::new(&net, QlecParams::paper());
            let mut src = k as u32;
            b.iter(|| {
                let t = router.send_data(&net, NodeId(src), black_box(&heads));
                src = if (src + 1) as usize >= n {
                    k as u32
                } else {
                    src + 1
                };
                black_box(t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_send_data);
criterion_main!(benches);
