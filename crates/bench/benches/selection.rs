//! Criterion bench for the improved-DEEC cluster-head selection
//! (Algorithms 2+3) — the Lemma 2 `O(N)` per-round phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qlec_core::deec_improved::{select_heads, SelectionFeatures};
use qlec_core::params::QlecParams;
use qlec_geom::UniformGrid;
use qlec_net::NetworkBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_selection");
    for &(n, k) in &[(100usize, 5usize), (1000, 23), (2896, 50)] {
        let mut rng = StdRng::seed_from_u64(7);
        let net = NetworkBuilder::new().uniform_cube(&mut rng, n, 200.0, 5.0);
        let grid = UniformGrid::build(net.positions(), 8);
        let params = QlecParams::paper();
        group.bench_function(BenchmarkId::new("round", format!("n{n}_k{k}")), |b| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut round = 0u32;
            b.iter(|| {
                let mut net = net.clone();
                let out = select_heads(
                    &mut net,
                    &grid,
                    round % 20,
                    k,
                    &params,
                    SelectionFeatures::default(),
                    &mut rng,
                );
                round += 1;
                black_box(out.heads.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
