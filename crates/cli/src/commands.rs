//! Subcommand implementations. Each takes [`ParsedArgs`] and returns the
//! text to print (testable without spawning the binary).

use crate::args::ParsedArgs;
use crate::spec::{SimSpec, SPEC_FIELDS};
use qlec_clustering::deec::DeecProtocol;
use qlec_clustering::heed::HeedProtocol;
use qlec_clustering::leach::LeachProtocol;
use qlec_clustering::{FcmProtocol, KMeansProtocol};
use qlec_core::params::{CandidatePolicy, HeadIndexMode, QRowsMode, QlecParams};
use qlec_core::{kopt, QlecProtocol};
use qlec_dataset::{generate_china, records, GeneratorConfig};
use qlec_geom::sample::MEAN_DIST_TO_CENTER_UNIT_CUBE;
use qlec_net::trace::TraceSink;
use qlec_net::{FaultDriver, FaultPlan, NetworkBuilder, Protocol, SimConfig, SimReport, Simulator};
use qlec_obs::{
    AsyncJsonLinesSink, Backpressure, EventsMode, JsonLinesSink, MemorySink, ObserverSet,
    PhaseProfiler, DEFAULT_QUEUE_CAPACITY,
};
use qlec_radio::link::{AnyLink, DistanceLossLink};
use qlec_radio::RadioModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Top-level usage text.
pub const USAGE: &str = "\
qlec-sim — QLEC (ICPP 2019) reproduction CLI

USAGE:
  qlec-sim run      [--spec FILE.json]
                    [--protocol qlec|fcm|kmeans|leach|deec|heed] [--n 100]
                    [--m 200] [--energy 5] [--k 5] [--lambda 5] [--rounds 20]
                    [--seed 42] [--death-line 0] [--threads 1]
                    [--candidates auto|legacy-auto|full|C]
                    [--head-index incremental|rebuild] [--q-rows sparse|dense]
                    [--json]
                    [--trace FILE] [--svg FILE] [--chart FILE]
                    [--events FILE|-] [--events-mode full|sample:R|aggregate]
                    [--sink sync|async|async:drop] [--profile FILE]
                    [--metrics FILE] [--faults FILE]
  qlec-sim compare  [--n 100] [--m 200] [--k 5] [--lambda 5] [--rounds 20]
                    [--seeds 3]
  qlec-sim dataset  [--count 2896] [--seed 42] [--out FILE]
  qlec-sim kopt     [--n 100] [--m 200] [--d-to-bs <auto>]
  qlec-sim help

NOTES:
  --spec loads the whole run description (protocol, deployment, traffic,
  engine knobs) from one typed JSON file — the same shape `SimSpec`
  serializes, every field optional with the flag defaults, unknown
  fields rejected. It replaces the per-run flags: combining --spec with
  any of them is an error. Artifact flags (--events, --trace, --json,
  ...) still apply, so one spec file reproduces one experiment under
  any output set.
  --faults loads a JSON fault plan (see crates/fault/README.md and
  examples/faults.json) and replays it during the run.
  --events - streams the event log to stdout with wall-clock timings
  suppressed, so identical seeds and plans give byte-identical streams.
  --events-mode sample:R keeps roughly the fraction R of the per-packet
  events (counter-based, still deterministic); aggregate replaces them
  with one RoundSummary digest per round.
  --sink async moves event serialization and file I/O off the hot
  simulation thread onto a dedicated writer behind a bounded queue.
  The default block backpressure keeps the stream byte-identical to
  --sink sync; async:drop sheds events when the queue fills (counted
  in the profile's sink.dropped, never valid for determinism diffs).
  --profile FILE writes a qlec-profile/v1 JSON report (per-phase
  per-thread busy/wall, merge conflict/retarget/clean-commit/residue
  counters, p50/p90/p99 round latency, thread utilization) and appends
  the rendered table — including the derived merge.residue_fraction —
  to the text output. Profiling never changes the event stream.
  --threads T fans the round engine's hot phases over T workers
  (auto = every core; 0 is rejected). Pure throughput knob: any T
  produces byte-identical events and reports.
  --candidates sets QLEC's Send-Data pruning: auto derives the
  Theorem-1 budget k if k <= 8 else min(k, ceil(8 + sqrt(16 ln k)))
  (default), legacy-auto is the old flat min(k, 8), full is the
  paper-exact full scan, an integer C pins the budget.
  --head-index picks how QLEC maintains its spatial indexes:
  incremental (default) applies per-round deltas with a churn-triggered
  rebuild fallback, rebuild reconstructs them every round. Both modes
  produce byte-identical events and reports.
  --q-rows picks the decision-Q row-store layout: sparse (default)
  holds only each node's candidate-budget targets and scales to any N,
  dense allocates N x (N+1) values and is refused above its entry cap.
  The store is diagnostic-only: both layouts produce byte-identical
  events and reports.
";

/// Dispatch a parsed command line.
pub fn dispatch(args: &ParsedArgs) -> Result<String, String> {
    match args.command.as_str() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "dataset" => cmd_dataset(args),
        "kopt" => cmd_kopt(args),
        "" | "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_protocol(
    name: &str,
    n: usize,
    k: usize,
    rounds: u32,
    candidates: CandidatePolicy,
    head_index: HeadIndexMode,
    q_rows: QRowsMode,
    obs: &ObserverSet,
) -> Result<Box<dyn Protocol>, String> {
    // Refuse an infeasible dense row store up front — the protocol would
    // otherwise panic mid-run on its first round.
    if name == "qlec" && q_rows == QRowsMode::Dense {
        let feasible = n
            .checked_add(1)
            .and_then(|cols| n.checked_mul(cols))
            .is_some_and(|entries| entries <= qlec_core::qrouting::MAX_DENSE_Q_ENTRIES);
        if !feasible {
            return Err(format!(
                "--q-rows dense needs {n}·({n}+1) Q-entries at n = {n}, above the \
                 {}-entry cap; use --q-rows sparse",
                qlec_core::qrouting::MAX_DENSE_Q_ENTRIES
            ));
        }
    }
    Ok(match name {
        "qlec" => Box::new(
            QlecProtocol::builder()
                .params(QlecParams {
                    total_rounds: rounds,
                    candidates,
                    head_index,
                    q_rows,
                    ..QlecParams::paper_with_k(k)
                })
                .observer(obs.clone())
                .build(),
        ),
        "fcm" => Box::new(FcmProtocol::new(k)),
        "kmeans" | "k-means" => Box::new(KMeansProtocol::new(k)),
        "leach" => Box::new(LeachProtocol::new(k)),
        "deec" => Box::new(DeecProtocol::new(k, rounds)),
        "heed" => Box::new(HeedProtocol::with_target_k(200.0, k)),
        other => return Err(format!("unknown protocol {other:?}")),
    })
}

/// Resolve the run description: `--spec FILE.json` loads the whole
/// [`SimSpec`]; otherwise the individual flags assemble one. Mixing the
/// two is rejected per offending flag, so a spec file stays the single
/// source of truth for the experiment it names.
fn load_spec(args: &ParsedArgs) -> Result<SimSpec, String> {
    let Some(path) = args.get("spec") else {
        return SimSpec::from_args(args);
    };
    if path.is_empty() {
        return Err("--spec needs a file path".into());
    }
    for field in SPEC_FIELDS {
        let flag = field.replace('_', "-");
        if args.has(&flag) {
            return Err(format!(
                "--spec conflicts with --{flag}: put the value in the spec file"
            ));
        }
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    SimSpec::from_json(&text).map_err(|e| format!("{path}: not a run spec: {e}"))
}

/// Run the spec'd simulation with no observers (the `compare` path).
fn execute(spec: &SimSpec, protocol: &mut dyn Protocol) -> SimReport {
    execute_observed(spec, protocol, ObserverSet::new(), None)
}

/// Run the spec'd simulation: deployment from the seed, paper-shaped
/// config with the spec's overrides, faults bound if a plan was loaded.
fn execute_observed(
    spec: &SimSpec,
    protocol: &mut dyn Protocol,
    obs: ObserverSet,
    faults: Option<FaultPlan>,
) -> SimReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let net = NetworkBuilder::new()
        .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(spec.m)))
        .uniform_cube(&mut rng, spec.n, spec.m, spec.energy);
    let mut cfg = SimConfig::paper(spec.lambda);
    cfg.rounds = spec.rounds;
    cfg.death_line = spec.death_line;
    cfg.stop_when_dead = spec.death_line > 0.0;
    cfg.threads = spec.threads;
    let mut sim = Simulator::builder(net).config(cfg).observers(obs);
    if let Some(plan) = faults {
        sim = sim.faults(FaultDriver::new(plan).expect("plan validated on load"));
    }
    sim.build().run(protocol, &mut rng)
}

/// Load and validate the `--faults` plan, if requested.
fn load_faults(args: &ParsedArgs) -> Result<Option<FaultPlan>, String> {
    match args.get("faults") {
        None => Ok(None),
        Some("") => Err("--faults needs a file path".into()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault plan {path}: {e}"))?;
            let plan: FaultPlan = serde_json::from_str(&text)
                .map_err(|e| format!("{path}: not a fault plan: {e}"))?;
            plan.validate()
                .map_err(|e| format!("{path}: invalid fault plan: {e}"))?;
            Ok(Some(plan))
        }
    }
}

/// How `--events` output reaches its writer: inline on the simulation
/// thread, or through the off-hot-thread pipeline.
#[derive(Debug, Clone, Copy)]
enum SinkKind {
    Sync,
    Async(Backpressure),
}

fn parse_sink_kind(text: &str) -> Result<SinkKind, String> {
    match text {
        "sync" => Ok(SinkKind::Sync),
        "async" | "async:block" => Ok(SinkKind::Async(Backpressure::Block)),
        "async:drop" => Ok(SinkKind::Async(Backpressure::Drop)),
        other => Err(format!(
            "--sink: unknown pipeline {other:?} (expected sync, async, or async:drop)"
        )),
    }
}

/// Attach the events sink either directly or behind the async pipeline;
/// returns a handle to the pipeline so its counters survive the run.
fn attach_events_sink<W: std::io::Write + Send + 'static>(
    obs: &mut ObserverSet,
    sink: JsonLinesSink<W>,
    kind: SinkKind,
) -> Option<Arc<Mutex<AsyncJsonLinesSink>>> {
    match kind {
        SinkKind::Sync => {
            obs.attach(Arc::new(Mutex::new(sink)));
            None
        }
        SinkKind::Async(policy) => {
            let pipeline = Arc::new(Mutex::new(AsyncJsonLinesSink::with_capacity(
                sink,
                DEFAULT_QUEUE_CAPACITY,
                policy,
            )));
            obs.attach(pipeline.clone());
            Some(pipeline)
        }
    }
}

fn cmd_run(args: &ParsedArgs) -> Result<String, String> {
    args.ensure_known(&[
        "protocol",
        "n",
        "m",
        "energy",
        "k",
        "lambda",
        "rounds",
        "seed",
        "death-line",
        "threads",
        "candidates",
        "head-index",
        "q-rows",
        "json",
        "trace",
        "svg",
        "chart",
        "events",
        "events-mode",
        "sink",
        "profile",
        "metrics",
        "faults",
        "spec",
    ])?;
    let setup = load_spec(args)?;
    setup.validate()?;
    let faults = load_faults(args)?;
    let name = setup.protocol.clone();

    // Flags that need a file path must have one before the run starts.
    let file_arg = |key: &str| -> Result<Option<&str>, String> {
        match args.get(key) {
            Some("") => Err(format!("--{key} needs a file path")),
            other => Ok(other),
        }
    };

    // Assemble the observer set: every requested artifact is one sink on
    // the same event stream.
    let mut obs = ObserverSet::new();
    // The profiler collects out-of-band, so it attaches before the
    // protocol captures its clone of the observer set.
    let profile_path = file_arg("profile")?.map(str::to_string);
    let profiler = profile_path
        .as_ref()
        .map(|_| Arc::new(PhaseProfiler::new()));
    if let Some(p) = &profiler {
        obs = obs.with_profiler(p.clone());
    }
    let needs_trace = args.has("trace") || args.has("chart");
    let trace_sink = if needs_trace {
        file_arg("trace")?;
        let sink = Arc::new(Mutex::new(TraceSink::new(&name)));
        obs.attach(sink.clone());
        Some(sink)
    } else {
        None
    };
    let events_mode = match args.get("events-mode") {
        None => EventsMode::Full,
        Some(text) => EventsMode::parse(text).map_err(|e| format!("--events-mode: {e}"))?,
    };
    if args.has("events-mode") && !args.has("events") {
        return Err("--events-mode needs --events".into());
    }
    let sink_kind = match args.get("sink") {
        None => SinkKind::Sync,
        Some(text) => parse_sink_kind(text)?,
    };
    if args.has("sink") && !args.has("events") {
        return Err("--sink needs --events".into());
    }
    let mut events_pipeline = None;
    if let Some(path) = file_arg("events")? {
        if path == "-" {
            // Stdout stream: suppress the wall-clock-bearing events so the
            // same seed (and fault plan) yields a byte-identical stream.
            let sink = JsonLinesSink::new(std::io::stdout())
                .map_err(|e| format!("cannot write events to stdout: {e}"))?
                .deterministic()
                .with_mode(events_mode);
            events_pipeline = attach_events_sink(&mut obs, sink, sink_kind);
        } else {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let sink = JsonLinesSink::new(std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {path}: {e}"))?
                .with_mode(events_mode);
            events_pipeline = attach_events_sink(&mut obs, sink, sink_kind);
        }
    }
    let metrics_sink = match file_arg("metrics")? {
        Some(_) => {
            let sink = Arc::new(Mutex::new(MemorySink::new()));
            obs.attach(sink.clone());
            Some(sink)
        }
        None => None,
    };

    let mut protocol = build_protocol(
        &name,
        setup.n,
        setup.k,
        setup.rounds,
        setup.candidates,
        setup.head_index,
        setup.q_rows,
        &obs,
    )?;
    let report = execute_observed(&setup, protocol.as_mut(), obs.clone(), faults);
    obs.flush()
        .map_err(|e| format!("observer flush failed: {e}"))?;

    // Everything is on disk now: snapshot the pipeline counters and
    // write the profile report.
    let sink_stats = events_pipeline
        .as_ref()
        .map(|p| p.lock().expect("events pipeline poisoned").stats());
    let profile_report = profiler.as_ref().map(|p| p.report());
    if let (Some(path), Some(profile)) = (&profile_path, &profile_report) {
        let mut value = serde_json::to_value(profile).map_err(|e| e.to_string())?;
        if let (Some(stats), serde_json::Value::Object(fields)) = (&sink_stats, &mut value) {
            // The async pipeline's counters belong in the profile: they
            // are observability about the run, not about the network.
            fields.push((
                "sink".to_string(),
                serde_json::to_value(stats).map_err(|e| e.to_string())?,
            ));
        }
        let json = serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let write_artifact = |key: &str, content: &str| -> Result<(), String> {
        match args.get(key) {
            None => Ok(()),
            Some("") => Err(format!("--{key} needs a file path")),
            Some(path) => {
                std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
            }
        }
    };
    if let Some(path) = args.get("metrics") {
        let sink = metrics_sink.as_ref().expect("attached above");
        let summary = sink.lock().expect("metrics sink poisoned").summary();
        std::fs::write(path, summary).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(sink) = &trace_sink {
        let t = sink.lock().expect("trace sink poisoned").trace().clone();
        if args.has("trace") {
            write_artifact("trace", &t.to_json().map_err(|e| e.to_string())?)?;
        }
        if args.has("chart") {
            let style = qlec_viz::trace_view::ChartStyle {
                death_line: (setup.death_line > 0.0).then_some(setup.death_line),
                ..Default::default()
            };
            write_artifact("chart", &qlec_viz::render_energy_chart(&t, &style))?;
        }
    }
    if args.has("svg") {
        // Re-derive the deployment (same seed) for node positions.
        let mut rng = StdRng::seed_from_u64(setup.seed);
        let net = NetworkBuilder::new()
            .link(AnyLink::DistanceLoss(DistanceLossLink::for_cube(setup.m)))
            .uniform_cube(&mut rng, setup.n, setup.m, setup.energy);
        let style = qlec_viz::network_view::MapStyle {
            title: format!(
                "{} — consumption rate after {} rounds",
                report.protocol,
                report.rounds.len()
            ),
            ..Default::default()
        };
        write_artifact(
            "svg",
            &qlec_viz::render_consumption_map(&net, &report.consumption_rates, &style),
        )?;
    }

    if args.has("json") {
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
    } else {
        let mut out = String::new();
        let b = report.energy_breakdown();
        let _ = writeln!(out, "protocol        : {}", report.protocol);
        let _ = writeln!(out, "rounds          : {}", report.rounds.len());
        let _ = writeln!(
            out,
            "packets         : {} generated",
            report.totals.generated
        );
        let _ = writeln!(out, "delivery rate   : {:.4}", report.pdr());
        let _ = writeln!(out, "total energy    : {:.3} J", report.total_energy());
        let _ = writeln!(
            out,
            "  member tx {:.3} | head rx {:.3} | fusion {:.3} | aggregates {:.3} | control {:.3}",
            b.member_tx, b.head_rx, b.aggregation, b.aggregate_tx, b.other
        );
        // A run that delivered nothing (e.g. a full-blackout fault plan)
        // has no latency to report — say so instead of printing a fake 0.
        match report.mean_latency() {
            Some(latency) => {
                let _ = writeln!(out, "mean latency    : {latency:.2} slots");
            }
            None => {
                let _ = writeln!(out, "mean latency    : n/a (nothing delivered)");
            }
        }
        let _ = writeln!(out, "mean heads/round: {:.1}", report.mean_head_count());
        if setup.death_line > 0.0 {
            let _ = writeln!(out, "lifespan        : {} rounds", report.lifespan_rounds());
        }
        if let Some(profile) = &profile_report {
            let _ = writeln!(out);
            out.push_str(&profile.render());
        }
        Ok(out)
    }
}

fn cmd_compare(args: &ParsedArgs) -> Result<String, String> {
    args.ensure_known(&["n", "m", "energy", "k", "lambda", "rounds", "seeds"])?;
    let setup = SimSpec::from_args(args)?;
    setup.validate()?;
    let seeds = args.get_parsed("seeds", 3u64)?;
    if seeds == 0 {
        return Err("--seeds must be positive".into());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8}  {:>8}  {:>11}  {:>13}  {:>17}",
        "protocol", "PDR", "energy (J)", "latency (sl)", "min residual (J)"
    );
    for name in ["qlec", "fcm", "kmeans", "leach", "deec", "heed"] {
        let mut pdr = 0.0;
        let mut energy = 0.0;
        // Latency averages only over seeds that delivered anything; a
        // protocol with zero deliveries across every seed shows n/a.
        let mut latency = 0.0;
        let mut latency_seeds = 0usize;
        let mut min_res = 0.0;
        for s in 0..seeds {
            let mut setup_s = SimSpec {
                seed: setup.seed + s,
                ..setup.clone()
            };
            setup_s.death_line = 0.0;
            let mut protocol = build_protocol(
                name,
                setup.n,
                setup.k,
                setup.rounds,
                CandidatePolicy::Auto,
                HeadIndexMode::default(),
                QRowsMode::default(),
                &ObserverSet::new(),
            )?;
            let report = execute(&setup_s, protocol.as_mut());
            pdr += report.pdr();
            energy += report.total_energy();
            if let Some(l) = report.mean_latency() {
                latency += l;
                latency_seeds += 1;
            }
            min_res += report.rounds.last().map(|r| r.min_residual).unwrap_or(0.0);
        }
        let n = seeds as f64;
        let latency_cell = if latency_seeds > 0 {
            format!("{:.2}", latency / latency_seeds as f64)
        } else {
            "n/a".to_string()
        };
        let _ = writeln!(
            out,
            "{:<8}  {:>8.4}  {:>11.3}  {:>13}  {:>17.3}",
            name,
            pdr / n,
            energy / n,
            latency_cell,
            min_res / n
        );
    }
    Ok(out)
}

fn cmd_dataset(args: &ParsedArgs) -> Result<String, String> {
    args.ensure_known(&["count", "seed", "out"])?;
    let count = args.get_parsed("count", qlec_dataset::CHINA_PLANT_COUNT)?;
    if count == 0 {
        return Err("--count must be positive".into());
    }
    let seed = args.get_parsed("seed", 42u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let plants = generate_china(
        &mut rng,
        &GeneratorConfig {
            count,
            ..Default::default()
        },
    );
    let csv = records::to_csv(&plants);
    match args.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("wrote {count} plants to {path}\n"))
        }
        _ => Ok(csv),
    }
}

fn cmd_kopt(args: &ParsedArgs) -> Result<String, String> {
    args.ensure_known(&["n", "m", "d-to-bs"])?;
    let n = args.get_parsed("n", 100usize)?;
    let m = args.get_parsed("m", 200.0f64)?;
    if n == 0 || m <= 0.0 || m.is_nan() {
        return Err("--n and --m must be positive".into());
    }
    let d_default = MEAN_DIST_TO_CENTER_UNIT_CUBE * m;
    let d = args.get_parsed("d-to-bs", d_default)?;
    if d <= 0.0 || d.is_nan() {
        return Err("--d-to-bs must be positive".into());
    }
    let radio = RadioModel::paper();
    let real = kopt::kopt_real(n, m, d, &radio);
    let rounded = kopt::kopt(n, m, d, &radio);
    let dc = kopt::coverage_radius(m, rounded);
    Ok(format!(
        "Theorem 1: N = {n}, M = {m} m, d_toBS = {d:.1} m\n\
         k_opt = {real:.2} (use k = {rounded}); coverage radius d_c = {dc:.1} m\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &[&str]) -> Result<String, String> {
        dispatch(&ParsedArgs::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&[]).is_err() || !run(&[]).unwrap().is_empty());
        assert!(run(&["bogus"]).is_err());
    }

    #[test]
    fn run_small_simulation_text() {
        let out = run(&[
            "run",
            "--protocol",
            "qlec",
            "--n",
            "20",
            "--rounds",
            "2",
            "--lambda",
            "8",
        ])
        .unwrap();
        assert!(out.contains("protocol        : qlec"), "{out}");
        assert!(out.contains("delivery rate"));
    }

    #[test]
    fn run_json_output_parses() {
        let out = run(&[
            "run",
            "--protocol",
            "kmeans",
            "--n",
            "15",
            "--rounds",
            "2",
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["protocol"], "k-means");
    }

    #[test]
    fn run_rejects_bad_arguments() {
        assert!(run(&["run", "--protocol", "nope"]).is_err());
        assert!(run(&["run", "--n", "0"]).is_err());
        assert!(run(&["run", "--k", "50", "--n", "10"]).is_err());
        assert!(run(&["run", "--frobnicate", "1"]).is_err());
        assert!(run(&["run", "--lambda", "-3"]).is_err());
    }

    #[test]
    fn degenerate_inputs_fail_with_structured_errors() {
        // Every rejected spelling must name the offending flag so the
        // shell error is actionable, and none may panic.
        let err = run(&["run", "--n", "20", "--rounds", "1", "--candidates", "0"]).unwrap_err();
        assert!(err.contains("--candidates"), "{err}");
        let err = run(&["run", "--n", "20", "--rounds", "1", "--threads", "0"]).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = run(&["run", "--n", "20", "--rounds", "1", "--k", "0"]).unwrap_err();
        assert!(err.contains("--k"), "{err}");
        let err = run(&["run", "--n", "20", "--rounds", "0"]).unwrap_err();
        assert!(err.contains("--rounds"), "{err}");
        // The same guards hold on the compare path.
        let err = run(&["compare", "--n", "20", "--rounds", "1", "--k", "0"]).unwrap_err();
        assert!(err.contains("--k"), "{err}");
    }

    #[test]
    fn head_index_flag_is_validated_and_inert() {
        let err = run(&["run", "--n", "20", "--rounds", "1", "--head-index", "magic"]).unwrap_err();
        assert!(err.contains("--head-index"), "{err}");
        let base = run(&[
            "run", "--n", "20", "--rounds", "2", "--lambda", "8", "--json",
        ])
        .unwrap();
        for mode in ["incremental", "rebuild"] {
            let out = run(&[
                "run",
                "--n",
                "20",
                "--rounds",
                "2",
                "--lambda",
                "8",
                "--head-index",
                mode,
                "--json",
            ])
            .unwrap();
            assert_eq!(base, out, "--head-index {mode} must not change the report");
        }
    }

    #[test]
    fn q_rows_flag_is_validated_and_inert() {
        let err = run(&["run", "--n", "20", "--rounds", "1", "--q-rows", "huge"]).unwrap_err();
        assert!(err.contains("--q-rows"), "{err}");
        let base = run(&[
            "run", "--n", "20", "--rounds", "2", "--lambda", "8", "--json",
        ])
        .unwrap();
        for mode in ["sparse", "dense"] {
            let out = run(&[
                "run", "--n", "20", "--rounds", "2", "--lambda", "8", "--q-rows", mode, "--json",
            ])
            .unwrap();
            assert_eq!(base, out, "--q-rows {mode} must not change the report");
        }
    }

    #[test]
    fn dense_q_rows_refused_at_scale_before_the_run() {
        // 100k nodes would need ~10^10 dense entries; the refusal must
        // arrive as a flag error, not a mid-run panic.
        let err = run(&["run", "--n", "100000", "--rounds", "1", "--q-rows", "dense"]).unwrap_err();
        assert!(err.contains("--q-rows sparse"), "{err}");
    }

    #[test]
    fn candidates_flag_is_validated_and_inert_when_large() {
        assert!(run(&["run", "--n", "20", "--rounds", "1", "--candidates", "0"]).is_err());
        assert!(run(&["run", "--n", "20", "--rounds", "1", "--candidates", "maybe"]).is_err());
        let base = run(&[
            "run", "--n", "20", "--rounds", "2", "--lambda", "8", "--json",
        ])
        .unwrap();
        // Default (auto), an over-large fixed budget, and the explicit
        // full scan all resolve to the same scan at k = 5.
        for spelling in ["auto", "legacy-auto", "full", "50"] {
            let pruned = run(&[
                "run",
                "--n",
                "20",
                "--rounds",
                "2",
                "--lambda",
                "8",
                "--candidates",
                spelling,
                "--json",
            ])
            .unwrap();
            assert_eq!(base, pruned, "--candidates {spelling} must be inert at k=5");
        }
    }

    #[test]
    fn threads_flag_does_not_change_results() {
        // The report's `threads` field *records the resolved worker
        // count*, so it legitimately differs between runs; everything
        // else must be identical at any setting.
        let timeless = |json: &str| -> String {
            json.lines()
                .filter(|l| !l.contains("\"threads\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let resolved = |json: &str| -> u64 {
            let v: serde_json::Value = serde_json::from_str(json).unwrap();
            v["threads"].as_u64().unwrap()
        };
        let base = run(&[
            "run", "--n", "20", "--rounds", "2", "--lambda", "8", "--json",
        ])
        .unwrap();
        assert_eq!(resolved(&base), 1, "default is one worker");
        for t in ["4", "auto"] {
            let parallel = run(&[
                "run",
                "--n",
                "20",
                "--rounds",
                "2",
                "--lambda",
                "8",
                "--threads",
                t,
                "--json",
            ])
            .unwrap();
            assert_eq!(
                timeless(&base),
                timeless(&parallel),
                "--threads {t} must not change the results"
            );
            // `auto` must report what it resolved to, never 0.
            let r = resolved(&parallel);
            match t {
                "4" => assert_eq!(r, 4),
                _ => assert!(r >= 1, "auto resolved to {r}"),
            }
        }
        assert!(run(&["run", "--n", "10", "--rounds", "1", "--threads", "x"]).is_err());
    }

    #[test]
    fn compare_lists_all_protocols() {
        let out = run(&[
            "compare", "--n", "20", "--rounds", "2", "--seeds", "1", "--lambda", "8",
        ])
        .unwrap();
        for name in ["qlec", "fcm", "kmeans", "leach", "deec", "heed"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn dataset_to_stdout_and_roundtrip() {
        let out = run(&["dataset", "--count", "25", "--seed", "7"]).unwrap();
        let plants = records::from_csv(&out).unwrap();
        assert_eq!(plants.len(), 25);
    }

    #[test]
    fn kopt_defaults_match_theorem() {
        let out = run(&["kopt"]).unwrap();
        assert!(out.contains("k_opt = 11.15"), "{out}");
        let out = run(&["kopt", "--d-to-bs", "133"]).unwrap();
        assert!(out.contains("use k = 5"), "{out}");
    }

    #[test]
    fn spec_file_reproduces_the_flag_run() {
        let path = std::env::temp_dir().join("qlec_test_spec_equiv.json");
        let flags = [
            "run", "--n", "20", "--k", "4", "--lambda", "8", "--rounds", "2", "--seed", "7",
        ];
        let spec = SimSpec::from_args(&ParsedArgs::parse(flags.iter().copied()).unwrap()).unwrap();
        std::fs::write(&path, spec.to_json()).unwrap();
        let mut by_flags: Vec<&str> = flags.to_vec();
        by_flags.push("--json");
        let by_spec = ["run", "--spec", path.to_str().unwrap(), "--json"];
        assert_eq!(
            run(&by_flags).unwrap(),
            run(&by_spec).unwrap(),
            "--spec must reproduce the flag run byte-for-byte"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn spec_conflicts_with_run_flags() {
        let path = std::env::temp_dir().join("qlec_test_spec_conflict.json");
        std::fs::write(&path, SimSpec::default().to_json()).unwrap();
        let path_s = path.to_str().unwrap();
        for (flag, value) in [("--n", "20"), ("--protocol", "fcm"), ("--death-line", "1")] {
            let err = run(&["run", "--spec", path_s, flag, value]).unwrap_err();
            assert!(err.contains("--spec conflicts"), "({flag}) {err}");
            assert!(err.contains(flag), "names the offending flag: {err}");
        }
        // Artifact and fault flags still compose with --spec.
        assert!(run(&["run", "--spec", path_s, "--json"]).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn spec_errors_are_structured() {
        let err = run(&["run", "--spec"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
        let err = run(&["run", "--spec", "/no/such/spec.json"]).unwrap_err();
        assert!(err.contains("cannot read spec"), "{err}");
        let bad = std::env::temp_dir().join("qlec_test_spec_bad.json");
        std::fs::write(&bad, r#"{"lamda": 3.0}"#).unwrap();
        let err = run(&["run", "--spec", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("not a run spec"), "{err}");
        assert!(err.contains("unknown spec field"), "{err}");
        // Spec-borne values hit the same cross-field validation as flags.
        std::fs::write(&bad, r#"{"k": 50, "n": 10}"#).unwrap();
        let err = run(&["run", "--spec", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("--k"), "{err}");
        let _ = std::fs::remove_file(bad);
    }

    #[test]
    fn trace_requires_path() {
        let err = run(&["run", "--n", "10", "--rounds", "1", "--trace"]).unwrap_err();
        assert!(err.contains("file path"));
    }
}

#[cfg(test)]
mod artifact_tests {
    use super::*;

    fn run(line: &[&str]) -> Result<String, String> {
        dispatch(&ParsedArgs::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn svg_and_chart_artifacts_are_written() {
        let dir = std::env::temp_dir();
        let svg_path = dir.join("qlec_test_map.svg");
        let chart_path = dir.join("qlec_test_chart.svg");
        let svg_s = svg_path.to_str().unwrap();
        let chart_s = chart_path.to_str().unwrap();
        let out = run(&[
            "run", "--n", "15", "--rounds", "2", "--lambda", "8", "--svg", svg_s, "--chart",
            chart_s,
        ])
        .unwrap();
        assert!(out.contains("delivery rate"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("consumption rate"));
        let chart = std::fs::read_to_string(&chart_path).unwrap();
        assert!(chart.contains("<polyline"));
        let _ = std::fs::remove_file(svg_path);
        let _ = std::fs::remove_file(chart_path);
    }

    #[test]
    fn svg_requires_path() {
        let err = run(&["run", "--n", "10", "--rounds", "1", "--svg"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
    }

    #[test]
    fn events_artifact_is_valid_json_lines() {
        let path = std::env::temp_dir().join("qlec_test_events.jsonl");
        let path_s = path.to_str().unwrap();
        run(&[
            "run", "--n", "15", "--rounds", "3", "--lambda", "8", "--events", path_s,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = qlec_obs::read_events(&text).expect("stream parses against schema");
        let rounds_ended = events
            .iter()
            .filter(|e| matches!(e, qlec_obs::Event::RoundEnded { .. }))
            .count();
        assert_eq!(rounds_ended, 3, "one RoundEnded per simulated round");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn events_mode_flag_shapes_the_stream() {
        let dir = std::env::temp_dir();
        let agg_path = dir.join("qlec_test_events_agg.jsonl");
        run(&[
            "run",
            "--n",
            "15",
            "--rounds",
            "3",
            "--lambda",
            "8",
            "--events",
            agg_path.to_str().unwrap(),
            "--events-mode",
            "aggregate",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&agg_path).unwrap();
        let events = qlec_obs::read_events(&text).expect("stream parses");
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, qlec_obs::Event::PacketOutcome { .. })),
            "aggregate mode suppresses per-packet events"
        );
        let summaries = events
            .iter()
            .filter(|e| matches!(e, qlec_obs::Event::RoundSummary { .. }))
            .count();
        assert_eq!(summaries, 3, "one RoundSummary per round");
        let _ = std::fs::remove_file(agg_path);

        // Bad mode spellings and --events-mode without --events fail.
        let err = run(&["run", "--n", "10", "--rounds", "1", "--events-mode", "half"]).unwrap_err();
        assert!(err.contains("events-mode"), "{err}");
        let err = run(&[
            "run",
            "--n",
            "10",
            "--rounds",
            "1",
            "--events-mode",
            "aggregate",
        ])
        .unwrap_err();
        assert!(err.contains("--events"), "{err}");
    }

    #[test]
    fn metrics_artifact_matches_report() {
        let dir = std::env::temp_dir();
        let metrics_path = dir.join("qlec_test_metrics.txt");
        let metrics_s = metrics_path.to_str().unwrap();
        let out = run(&[
            "run",
            "--n",
            "15",
            "--rounds",
            "3",
            "--lambda",
            "8",
            "--json",
            "--metrics",
            metrics_s,
        ])
        .unwrap();
        let report: serde_json::Value = serde_json::from_str(&out).unwrap();
        let generated = report["totals"]["generated"].as_u64().unwrap();
        let summary = std::fs::read_to_string(&metrics_path).unwrap();
        let counter = |name: &str| -> Option<String> {
            summary.lines().find_map(|l| {
                let mut parts = l.split_whitespace();
                (parts.next() == Some(name)).then(|| parts.next().unwrap_or("").to_string())
            })
        };
        assert_eq!(
            counter("packets.generated").as_deref(),
            Some(generated.to_string().as_str()),
            "summary should report the same generated count:\n{summary}"
        );
        assert_eq!(counter("rounds.ended").as_deref(), Some("3"), "{summary}");
        let _ = std::fs::remove_file(metrics_path);
    }

    #[test]
    fn faulted_run_emits_fault_events() {
        let dir = std::env::temp_dir();
        let plan_path = dir.join("qlec_test_plan.json");
        let events_path = dir.join("qlec_test_fault_events.jsonl");
        let plan = qlec_net::FaultPlan::named(
            "cli-test",
            vec![
                qlec_net::FaultEvent::NodeCrash { round: 1, node: 2 },
                qlec_net::FaultEvent::BsOutage {
                    from_round: 2,
                    to_round: 2,
                },
            ],
        );
        std::fs::write(&plan_path, serde_json::to_string(&plan).unwrap()).unwrap();
        run(&[
            "run",
            "--n",
            "15",
            "--rounds",
            "3",
            "--lambda",
            "8",
            "--faults",
            plan_path.to_str().unwrap(),
            "--events",
            events_path.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&events_path).unwrap();
        let events = qlec_obs::read_events(&text).expect("stream parses");
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                qlec_obs::Event::FaultInjected { kind, .. } => Some(kind.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["node-crash", "bs-outage"], "{text}");
        let _ = std::fs::remove_file(plan_path);
        let _ = std::fs::remove_file(events_path);
    }

    #[test]
    fn faults_rejects_garbage_and_missing_paths() {
        let err = run(&["run", "--n", "10", "--rounds", "1", "--faults"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
        let err = run(&[
            "run",
            "--n",
            "10",
            "--rounds",
            "1",
            "--faults",
            "/no/such/plan.json",
        ])
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        let bad = std::env::temp_dir().join("qlec_test_bad_plan.json");
        std::fs::write(&bad, "{\"not\": \"a plan\"}").unwrap();
        let err = run(&[
            "run",
            "--n",
            "10",
            "--rounds",
            "1",
            "--faults",
            bad.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("not a fault plan"), "{err}");
        let _ = std::fs::remove_file(bad);
    }

    #[test]
    fn repo_example_plan_loads() {
        // The worked example shipped in examples/ must stay loadable.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/faults.json");
        let text = std::fs::read_to_string(path).expect("examples/faults.json exists");
        let plan: qlec_net::FaultPlan = serde_json::from_str(&text).expect("parses");
        plan.validate().expect("validates");
        assert_eq!(plan.events.len(), 5, "one event of each kind");
    }

    #[test]
    fn events_and_metrics_require_paths() {
        let err = run(&["run", "--n", "10", "--rounds", "1", "--events"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
        let err = run(&["run", "--n", "10", "--rounds", "1", "--metrics"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
        let err = run(&["run", "--n", "10", "--rounds", "1", "--profile"]).unwrap_err();
        assert!(err.contains("file path"), "{err}");
    }

    #[test]
    fn sink_flag_is_validated() {
        let path = std::env::temp_dir().join("qlec_test_sink_validate.jsonl");
        let err = run(&[
            "run",
            "--n",
            "10",
            "--rounds",
            "1",
            "--events",
            path.to_str().unwrap(),
            "--sink",
            "turbo",
        ])
        .unwrap_err();
        assert!(err.contains("--sink"), "{err}");
        let err = run(&["run", "--n", "10", "--rounds", "1", "--sink", "async"]).unwrap_err();
        assert!(err.contains("--events"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn async_sink_stream_matches_sync_stream() {
        // File streams carry real wall-clock PhaseTimed events, so two
        // runs are compared modulo timings here; *byte* identity of the
        // deterministic `--events -` stream is asserted where the same
        // sink objects can be driven in-process
        // (tests/parallel_equivalence.rs) and against the real binary in
        // CI's sink-equivalence job.
        let dir = std::env::temp_dir();
        let sync_path = dir.join("qlec_test_sink_sync.jsonl");
        let async_path = dir.join("qlec_test_sink_async.jsonl");
        let drop_path = dir.join("qlec_test_sink_drop.jsonl");
        let base = [
            "run",
            "--n",
            "15",
            "--rounds",
            "3",
            "--lambda",
            "8",
            "--threads",
            "2",
        ];
        let with = |path: &std::path::Path, sink: &str| {
            let path_s = path.to_str().unwrap();
            let mut line: Vec<&str> = base.to_vec();
            line.extend_from_slice(&["--events", path_s, "--sink", sink]);
            run(&line).unwrap();
            let text = std::fs::read_to_string(path).unwrap();
            qlec_obs::read_events(&text).expect("stream parses")
        };
        let timeless = |events: Vec<qlec_obs::Event>| -> Vec<qlec_obs::Event> {
            events
                .into_iter()
                .filter(|e| !matches!(e, qlec_obs::Event::PhaseTimed { .. }))
                .collect()
        };
        let sync_events = with(&sync_path, "sync");
        let async_events = with(&async_path, "async");
        assert_eq!(sync_events.len(), async_events.len());
        assert_eq!(
            timeless(sync_events),
            timeless(async_events),
            "block-mode pipeline must not change the stream"
        );
        // Drop mode with the default (large) queue sheds nothing at this
        // size, but only a parse check is part of its contract.
        let drop_events = with(&drop_path, "async:drop");
        assert!(!drop_events.is_empty());
        for p in [sync_path, async_path, drop_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn profile_artifact_reports_phases_and_quantiles() {
        let dir = std::env::temp_dir();
        let profile_path = dir.join("qlec_test_profile.json");
        let out = run(&[
            "run",
            "--n",
            "20",
            "--rounds",
            "3",
            "--lambda",
            "8",
            "--threads",
            "2",
            "--profile",
            profile_path.to_str().unwrap(),
        ])
        .unwrap();
        // The text report carries the rendered profile.
        assert!(out.contains("phase profile"), "{out}");
        assert!(out.contains("round latency"), "{out}");
        assert!(out.contains("thread utilization"), "{out}");
        let text = std::fs::read_to_string(&profile_path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["schema"].as_str(), Some(qlec_obs::PROFILE_SCHEMA));
        assert_eq!(v["threads"].as_u64(), Some(2));
        assert_eq!(v["round_latency"]["rounds"].as_u64(), Some(3));
        assert!(v["round_latency"]["p50_ns"].as_f64().unwrap() > 0.0);
        assert!(v["round_latency"]["p99_ns"].as_f64().unwrap() > 0.0);
        let phases = v["phases"].as_array().unwrap();
        let paths: Vec<&str> = phases.iter().map(|p| p["path"].as_str().unwrap()).collect();
        for expect in ["election", "transmission/plan", "transmission/merge"] {
            assert!(paths.contains(&expect), "missing {expect} in {paths:?}");
        }
        assert!(
            v["counters"]
                .as_array()
                .unwrap()
                .iter()
                .any(|c| c["name"].as_str() == Some("merge.retargets")),
            "{text}"
        );
        // threads=2 runs the sharded merge, so the reservation pre-pass
        // counters must be present alongside the conflict counters.
        for name in ["merge.clean_commits", "merge.residue"] {
            assert!(
                v["counters"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .any(|c| c["name"].as_str() == Some(name)),
                "missing {name} in {text}"
            );
        }
        assert_eq!(v["utilization"].as_array().unwrap().len(), 2);
        let _ = std::fs::remove_file(profile_path);
    }

    #[test]
    fn profile_with_async_sink_embeds_pipeline_stats() {
        let dir = std::env::temp_dir();
        let profile_path = dir.join("qlec_test_profile_sink.json");
        let events_path = dir.join("qlec_test_profile_sink_events.jsonl");
        let out = run(&[
            "run",
            "--n",
            "15",
            "--rounds",
            "2",
            "--lambda",
            "8",
            "--json",
            "--events",
            events_path.to_str().unwrap(),
            "--sink",
            "async",
            "--profile",
            profile_path.to_str().unwrap(),
        ])
        .unwrap();
        // --json output stays the pure SimReport even when profiling.
        let report: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(report["protocol"].as_str(), Some("qlec"));
        let text = std::fs::read_to_string(&profile_path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let enqueued = v["sink"]["enqueued"].as_u64().unwrap();
        assert!(enqueued > 0, "{text}");
        assert_eq!(v["sink"]["processed"].as_u64(), Some(enqueued));
        assert_eq!(v["sink"]["dropped"].as_u64(), Some(0));
        let _ = std::fs::remove_file(profile_path);
        let _ = std::fs::remove_file(events_path);
    }

    #[test]
    fn sink_flush_errors_surface_with_nonzero_exit() {
        // /dev/full accepts opens and fails writes with ENOSPC, which is
        // exactly the latched-error path: the failure must surface from
        // the end-of-run flush as a CLI error (exit code 1 in main).
        if !std::path::Path::new("/dev/full").exists() {
            return; // platform without /dev/full
        }
        for sink in ["sync", "async"] {
            let err = run(&[
                "run",
                "--n",
                "15",
                "--rounds",
                "2",
                "--lambda",
                "8",
                "--events",
                "/dev/full",
                "--sink",
                sink,
            ])
            .unwrap_err();
            assert!(err.contains("observer flush failed"), "({sink}) {err}");
        }
    }
}
